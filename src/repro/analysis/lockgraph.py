"""Interprocedural lock-order analysis over ``src/repro/`` itself.

The repo's concurrency discipline spans four lock families — the
writer-preferring :class:`~repro.service.executor.ReadWriteLock` in the
service tier, one ``ReadWriteLock`` per shard, the
:class:`~repro.shard.wal.ShardWAL`'s reentrant record lock, and the
per-root commit lock of :func:`repro.db.persistence.root_lock` — plus a
handful of short-critical-section mutexes (metrics, event ring, LSN
allocation).  A deadlock needs two of them acquired in opposite orders
on two threads; no dynamic test reliably provokes that, so this pass
proves the *absence of the shape*: it extracts every static
lock-acquisition site, propagates "locks held here" across call edges,
builds the may-hold-while-acquiring graph, and reports its cycles.

Rules (reported through the shared :class:`~repro.analysis.findings`
machinery, suppressible with ``# repro-lint: disable=CCnnn`` pragmas on
the acquisition/IO line):

``CC001`` lock-order cycle (ERROR)
    A cycle in the may-hold-while-acquiring graph, including self-loops
    on non-reentrant locks (acquiring a second instance of the same
    lock class while one is held).  Acquiring the members of a lock
    family in a fixed global order is safe — annotate the site with a
    pragma saying so.
``CC002`` lock held across durable I/O (WARNING)
    An ``fsync`` / ``rename`` / ``replace`` call lexically inside a
    lock-held region.  Durable I/O is milliseconds; holding an
    in-memory lock across it stalls every peer.  The per-root commit
    lock (``db.root_lock``) is exempt — serializing commit renames is
    its entire purpose.

Heuristics (documented, deliberately conservative):

* Lock identity is *classified*, not points-to-analyzed: ``with
  x.read_locked()`` / ``write_locked()`` receivers named ``_rwlock`` /
  ``_service`` map to the service lock, receivers whose final attribute
  is ``lock`` (the sharded catalog's per-shard locks) map to
  ``shard.rwlock``; plain ``with self._lock:`` mutexes are qualified by
  their enclosing class (``ShardWAL._lock``).  Two distinct locks
  merged into one class can only *add* edges — the analysis
  over-approximates, never misses a modeled cycle.
* Calls are resolved by attribute-type tracking (``self._wal =
  ShardWAL(...)`` makes ``self._wal.append()`` resolve to
  ``ShardWAL.append``), by class for ``self.method()``, and by unique
  global name otherwise; collection-method names (``append``, ``get``,
  ...) are never name-resolved.
* ``stack.enter_context(lock...)`` acquisitions are held until function
  end; one inside a loop acquires its class repeatedly and therefore
  forms a self-loop edge.
* ``threading.Condition`` attributes (``_cond``) are skipped — waiting
  releases them, so hold-while-acquiring edges through them are
  meaningless.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.ast_lint import LintRule, _as_posix, _suppressions
from repro.analysis.findings import AnalysisReport, Finding, Severity

#: Rules this pass owns (same shape as the AST linter's registry).
CC_RULES: Dict[str, LintRule] = {
    rule.code: rule
    for rule in (
        LintRule(
            code="CC001",
            summary="lock-order cycle (potential deadlock)",
            path_scope="",
            fix_hint=(
                "acquire the involved locks in one global order "
                "everywhere; if a site acquires a lock family in a "
                "fixed order by construction, say so on the line and "
                "add # repro-lint: disable=CC001"
            ),
        ),
        LintRule(
            code="CC002",
            summary="lock held across fsync/rename I/O",
            path_scope="",
            fix_hint=(
                "move the durable I/O outside the critical section, or "
                "justify the pairing (e.g. WAL append-before-apply "
                "requires serialized fsyncs) with "
                "# repro-lint: disable=CC002"
            ),
        ),
    )
}

#: Durable-I/O method names CC002 watches for.
_IO_NAMES: Set[str] = {"fsync", "rename", "replace"}

#: The commit lock exists to serialize durable commits; exempt from CC002.
_COMMIT_LOCKS: Set[str] = {"db.root_lock"}

#: Receiver tails of ``*.read_locked()/write_locked()`` that denote the
#: service tier's one RW lock (the migrator reaches it via its service
#: handle; the executor owns it as ``_rwlock``).
_SERVICE_RW_TAILS: Set[str] = {"_rwlock", "rwlock", "_service", "service"}

#: Condition-variable attribute names to skip (waiting releases them).
_CONDITION_TAILS: Set[str] = {"_cond", "cond"}

#: Method names never resolved by name alone (collection / stdlib noise).
_COMMON_METHODS: Set[str] = {
    "append", "appendleft", "add", "extend", "insert", "remove", "discard",
    "pop", "popleft", "clear", "update", "get", "setdefault", "items",
    "keys", "values", "copy", "sort", "index", "count", "join", "split",
    "strip", "replace", "encode", "decode", "format", "read", "write",
    "readline", "close", "flush", "open", "seek", "truncate", "exists",
    "is_file", "is_dir", "mkdir", "rmdir", "unlink", "acquire", "release",
    "wait", "notify", "notify_all", "set", "is_set", "submit", "result",
    "cancel", "done", "shutdown", "start", "run", "stop", "put", "emit",
    "describe", "to_dict", "snapshot", "record", "observe", "increment",
    "parse", "serialize", "reset", "entries",
}


# ----------------------------------------------------------------------
# Graph data model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockSite:
    """One place the graph learned an edge (or an acquisition)."""

    path: str
    line: int
    function: str
    holding: str
    acquiring: str
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "holding": self.holding,
            "acquiring": self.acquiring,
            "note": self.note,
        }


@dataclass
class LockGraph:
    """The may-hold-while-acquiring graph over lock classes."""

    #: Lock class -> kind ("rwlock" / "mutex" / "rlock" / "commit").
    nodes: Dict[str, str] = field(default_factory=dict)
    #: (holding, acquiring) -> evidence sites.
    edges: Dict[Tuple[str, str], List[LockSite]] = field(default_factory=dict)
    files_examined: int = 0

    def add_edge(self, site: LockSite) -> None:
        self.edges.setdefault((site.holding, site.acquiring), []).append(site)

    def cycles(self) -> List[Tuple[str, ...]]:
        """Every elementary cycle's node set, as sorted tuples.

        Strongly connected components with more than one node are
        reported whole (any cycle through them is reachable from any
        member); self-loops on reentrant locks are excluded by the
        caller, which knows lock kinds.
        """
        components = _tarjan_scc(
            sorted(self.nodes), sorted(self.edges)
        )
        cycles: List[Tuple[str, ...]] = []
        for component in components:
            if len(component) > 1:
                cycles.append(tuple(sorted(component)))
        for (src, dst) in sorted(self.edges):
            if src == dst:
                cycles.append((src,))
        return cycles

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_examined": self.files_examined,
            "nodes": dict(sorted(self.nodes.items())),
            "edges": [
                {
                    "holding": src,
                    "acquiring": dst,
                    "sites": [
                        site.to_dict()
                        for site in sorted(
                            sites, key=lambda s: (s.path, s.line)
                        )
                    ],
                }
                for (src, dst), sites in sorted(self.edges.items())
            ],
        }


def _tarjan_scc(
    nodes: Sequence[str], edges: Sequence[Tuple[str, str]]
) -> List[List[str]]:
    """Strongly connected components (iterative Tarjan; deterministic)."""
    adjacency: Dict[str, List[str]] = {node: [] for node in nodes}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, [])
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = adjacency.get(node, [])
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)
    return components


# ----------------------------------------------------------------------
# Per-function facts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Acquisition:
    lock: str
    line: int
    held: Tuple[str, ...]
    mode: str  # "read" / "write" / "exclusive"
    in_loop: bool


@dataclass(frozen=True)
class _CallSite:
    kind: str  # "self" / "attr" / "name"
    owner: str  # receiver tail for "attr", "" otherwise
    name: str
    line: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class _IOSite:
    name: str
    line: int
    held: Tuple[str, ...]


@dataclass
class _FunctionInfo:
    qualname: str
    module: str
    path: str
    class_name: str
    acquisitions: List[_Acquisition] = field(default_factory=list)
    calls: List[_CallSite] = field(default_factory=list)
    io_calls: List[_IOSite] = field(default_factory=list)


@dataclass
class _ScanContext:
    module: str
    path: str
    class_name: str = ""


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _qualify(dotted: str, ctx: _ScanContext) -> str:
    """Class- or module-qualified lock id for a mutex expression."""
    if dotted.startswith("self."):
        owner = ctx.class_name or ctx.module
        return f"{owner}.{dotted[len('self.'):]}"
    if "." not in dotted:
        return f"{ctx.module}.{dotted}"
    return dotted


def _classify_lock(
    expr: ast.AST, ctx: _ScanContext
) -> Optional[Tuple[str, str]]:
    """``(lock_id, mode)`` when ``expr`` acquires a lock, else ``None``."""
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "read_locked",
            "write_locked",
        ):
            mode = "read" if func.attr == "read_locked" else "write"
            receiver = _dotted(func.value) or "<expr>"
            tail = receiver.split(".")[-1]
            if tail in _SERVICE_RW_TAILS:
                return ("service.rwlock", mode)
            if tail == "lock":
                return ("shard.rwlock", mode)
            return (f"{_qualify(receiver, ctx)}.rw", mode)
        if isinstance(func, ast.Name) and func.id == "root_lock":
            return ("db.root_lock", "exclusive")
        return None
    dotted = _dotted(expr)
    if dotted is None:
        return None
    tail = dotted.split(".")[-1]
    if tail in _CONDITION_TAILS:
        return None
    lowered = tail.lower()
    if "lock" in lowered or "guard" in lowered or "mutex" in lowered:
        return (_qualify(dotted, ctx), "exclusive")
    return None


class _ModuleScanner:
    """Extracts function facts, class methods, and attribute types."""

    def __init__(self, tree: ast.Module, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.functions: Dict[str, _FunctionInfo] = {}
        #: class name -> {method name -> qualname}
        self.class_methods: Dict[str, Dict[str, str]] = {}
        #: attribute name -> class names it was seen holding
        self.attr_types: Dict[str, Set[str]] = {}
        #: qualified lock ids constructed via ``threading.RLock()``
        self.reentrant: Set[str] = set()
        self._scan_module(tree)

    # -- structure ------------------------------------------------------
    def _scan_module(self, tree: ast.Module) -> None:
        ctx = _ScanContext(module=self.module, path=self.path)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._scan_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node, ctx)

    def _scan_class(self, node: ast.ClassDef) -> None:
        ctx = _ScanContext(
            module=self.module, path=self.path, class_name=node.name
        )
        methods = self.class_methods.setdefault(node.name, {})
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = self._scan_function(child, ctx)
                methods[child.name] = qualname
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                type_name = _annotation_name(child.annotation)
                if type_name is not None:
                    self.attr_types.setdefault(child.target.id, set()).add(
                        type_name
                    )

    def _scan_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        ctx: _ScanContext,
    ) -> str:
        prefix = f"{ctx.class_name}." if ctx.class_name else ""
        qualname = f"{self.module}:{prefix}{node.name}"
        info = _FunctionInfo(
            qualname=qualname,
            module=self.module,
            path=self.path,
            class_name=ctx.class_name,
        )
        # Parameter annotations type the attributes they are stored into.
        param_types: Dict[str, str] = {}
        for arg in [*node.args.args, *node.args.kwonlyargs]:
            type_name = _annotation_name(arg.annotation)
            if type_name is not None:
                param_types[arg.arg] = type_name
        self.functions.setdefault(qualname, info)
        held: List[str] = []
        for statement in node.body:
            self._scan_node(statement, info, ctx, held, param_types, 0)
        # Nested defs become their own functions so their intra-function
        # acquisitions are still analyzed (e.g. the sharded catalog's
        # out-of-band invalidation listener).
        for statement in node.body:
            for child in ast.walk(statement):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._scan_function(child, ctx)
        return qualname

    # -- statement/expression walk --------------------------------------
    def _scan_node(
        self,
        node: ast.AST,
        info: _FunctionInfo,
        ctx: _ScanContext,
        held: List[str],
        param_types: Dict[str, str],
        loop_depth: int,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # scanned separately with an empty held set
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                self._scan_node(
                    item.context_expr, info, ctx, held, param_types,
                    loop_depth,
                )
                lock = _classify_lock(item.context_expr, ctx)
                if lock is not None:
                    lock_id, mode = lock
                    info.acquisitions.append(
                        _Acquisition(
                            lock=lock_id,
                            line=item.context_expr.lineno,
                            held=tuple([*held, *acquired]),
                            mode=mode,
                            in_loop=False,
                        )
                    )
                    acquired.append(lock_id)
            inner = [*held, *acquired]
            for statement in node.body:
                self._scan_node(
                    statement, info, ctx, inner, param_types, loop_depth
                )
            # enter_context acquisitions made inside the with-body
            # outlive it (the ExitStack releases them, not the with):
            # propagate anything the body pinned back to the caller.
            for lock_id in inner[len(held) + len(acquired):]:
                held.append(lock_id)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in ast.iter_child_nodes(node):
                self._scan_node(
                    child, info, ctx, held, param_types, loop_depth + 1
                )
            return
        if isinstance(node, ast.Call):
            self._record_call(node, info, ctx, held, param_types, loop_depth)
            for child in ast.iter_child_nodes(node):
                self._scan_node(
                    child, info, ctx, held, param_types, loop_depth
                )
            return
        if isinstance(node, ast.Assign):
            self._record_assignment(node, param_types, ctx)
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, info, ctx, held, param_types, loop_depth)

    def _record_assignment(
        self,
        node: ast.Assign,
        param_types: Dict[str, str],
        ctx: _ScanContext,
    ) -> None:
        """Learn attribute types from ``self.x = Cls(...)`` / ``= param``."""
        type_name: Optional[str] = None
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            type_name = value.func.id
            if value.func.id == "RLock" or (
                _dotted(value.func) == "threading.RLock"
            ):
                type_name = None
        elif isinstance(value, ast.Call) and isinstance(
            value.func, ast.Attribute
        ):
            dotted = _dotted(value.func)
            if dotted == "threading.RLock":
                type_name = None
        elif isinstance(value, ast.Name):
            type_name = param_types.get(value.id)
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
            ):
                attr = target.attr
                dotted_value = _dotted(value) if not isinstance(
                    value, ast.Call
                ) else (_dotted(value.func) if isinstance(
                    value, ast.Call
                ) else None)
                if dotted_value == "threading.RLock":
                    # self._lock = threading.RLock(): this class's lock
                    # (and only this class's) is reentrant.
                    self.reentrant.add(_qualify(f"self.{attr}", ctx))
                elif type_name is not None and type_name[:1].isupper():
                    self.attr_types.setdefault(attr, set()).add(type_name)

    def _record_call(
        self,
        node: ast.Call,
        info: _FunctionInfo,
        ctx: _ScanContext,
        held: List[str],
        param_types: Dict[str, str],
        loop_depth: int,
    ) -> None:
        func = node.func
        held_now = tuple(held)
        if isinstance(func, ast.Attribute):
            if func.attr == "enter_context" and node.args:
                lock = _classify_lock(node.args[0], ctx)
                if lock is not None:
                    lock_id, mode = lock
                    info.acquisitions.append(
                        _Acquisition(
                            lock=lock_id,
                            line=node.lineno,
                            held=held_now,
                            mode=mode,
                            in_loop=loop_depth > 0,
                        )
                    )
                    held.append(lock_id)  # pinned until function end
                return
            if func.attr in _IO_NAMES and held_now:
                info.io_calls.append(
                    _IOSite(name=func.attr, line=node.lineno, held=held_now)
                )
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                info.calls.append(
                    _CallSite("self", "", func.attr, node.lineno, held_now)
                )
            else:
                tail = None
                if isinstance(value, ast.Attribute):
                    tail = value.attr
                elif isinstance(value, ast.Name):
                    tail = value.id
                if tail is not None:
                    info.calls.append(
                        _CallSite(
                            "attr", tail, func.attr, node.lineno, held_now
                        )
                    )
        elif isinstance(func, ast.Name):
            info.calls.append(
                _CallSite("name", "", func.id, node.lineno, held_now)
            )


def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """Class name out of ``X``, ``"X"``, or ``Optional[X]`` annotations."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name = annotation.value.strip().strip('"').strip("'")
        return name.split("[")[-1].rstrip("]") if "[" in name else name
    if isinstance(annotation, ast.Subscript):
        return _annotation_name(annotation.slice)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


# ----------------------------------------------------------------------
# Whole-tree analysis
# ----------------------------------------------------------------------
class _Program:
    """Cross-module call resolution and transitive acquire sets."""

    def __init__(self) -> None:
        self.functions: Dict[str, _FunctionInfo] = {}
        self.class_methods: Dict[str, Dict[str, str]] = {}
        self.attr_types: Dict[str, Set[str]] = {}
        self.method_classes: Dict[str, List[str]] = {}
        self.global_functions: Dict[str, List[str]] = {}
        self.module_functions: Dict[Tuple[str, str], str] = {}
        self.reentrant_ids: Set[str] = set()
        self._acquire_sets: Dict[str, Set[str]] = {}

    def absorb(self, scanner: _ModuleScanner) -> None:
        self.functions.update(scanner.functions)
        self.reentrant_ids.update(scanner.reentrant)
        for class_name, methods in scanner.class_methods.items():
            table = self.class_methods.setdefault(class_name, {})
            table.update(methods)
            for method in methods:
                self.method_classes.setdefault(method, []).append(class_name)
        for attr, classes in scanner.attr_types.items():
            self.attr_types.setdefault(attr, set()).update(classes)
        for qualname, info in scanner.functions.items():
            name = qualname.split(":", 1)[1]
            if "." not in name:  # module-level function
                self.module_functions[(info.module, name)] = qualname
                self.global_functions.setdefault(name, []).append(qualname)

    # -- resolution ------------------------------------------------------
    def resolve(self, caller: _FunctionInfo, call: _CallSite) -> List[str]:
        if call.kind == "self":
            table = self.class_methods.get(caller.class_name, {})
            target = table.get(call.name)
            return [target] if target is not None else []
        if call.kind == "name":
            target = self.module_functions.get((caller.module, call.name))
            if target is not None:
                return [target]
            candidates = self.global_functions.get(call.name, [])
            return sorted(candidates) if len(candidates) == 1 else []
        # attribute call: prefer the receiver attribute's tracked types
        typed = self.attr_types.get(call.owner)
        if typed:
            resolved = []
            for class_name in sorted(typed):
                target = self.class_methods.get(class_name, {}).get(call.name)
                if target is not None:
                    resolved.append(target)
            if resolved:
                return resolved
        if call.name in _COMMON_METHODS:
            return []
        owners = self.method_classes.get(call.name, [])
        if len(set(owners)) == 1:
            target = self.class_methods[owners[0]].get(call.name)
            return [target] if target is not None else []
        return []

    def acquire_set(self, qualname: str) -> Set[str]:
        """Locks ``qualname`` may acquire, transitively (cycle-safe)."""
        cached = self._acquire_sets.get(qualname)
        if cached is not None:
            return cached
        self._acquire_sets[qualname] = set()  # cycle guard
        info = self.functions.get(qualname)
        if info is None:
            return set()
        acquired: Set[str] = {a.lock for a in info.acquisitions}
        for call in info.calls:
            for callee in self.resolve(info, call):
                acquired |= self.acquire_set(callee)
        self._acquire_sets[qualname] = acquired
        return acquired


def _python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def build_lock_graph(
    paths: Sequence[Path],
    *,
    _collect_io: Optional[List[Tuple[str, _IOSite]]] = None,
    _suppressed: Optional[Dict[str, Dict[int, Set[str]]]] = None,
) -> LockGraph:
    """Build the may-hold-while-acquiring graph for every file under
    ``paths``.  CC001-suppressed acquisition sites contribute no edges
    (the pragma asserts the multi-acquisition order is fixed)."""
    program = _Program()
    graph = LockGraph()
    files = _python_files([Path(p) for p in paths])
    reentrant_ids: Set[str] = set()
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue  # the AST linter reports unreadable files as AL000
        posix = _as_posix(str(file))
        if _suppressed is not None:
            _suppressed[posix] = _suppressions(source)
        scanner = _ModuleScanner(tree, module=file.stem, path=posix)
        program.absorb(scanner)
    graph.files_examined = len(files)

    # Lock kinds: class-qualified ids constructed via threading.RLock()
    # are reentrant; everything else exclusive is a plain mutex.
    for info in program.functions.values():
        for acquisition in info.acquisitions:
            lock_id = acquisition.lock
            if lock_id not in graph.nodes:
                if lock_id in _COMMIT_LOCKS:
                    kind = "commit"
                elif acquisition.mode in ("read", "write"):
                    kind = "rwlock"
                elif lock_id in program.reentrant_ids:
                    kind = "rlock"
                else:
                    kind = "mutex"
                graph.nodes[lock_id] = kind
            if graph.nodes[lock_id] == "rlock":
                reentrant_ids.add(lock_id)

    suppressed = _suppressed if _suppressed is not None else {}

    def edge_allowed(path: str, line: int) -> bool:
        codes = suppressed.get(path, {}).get(line, set())
        return "CC001" not in codes and "ALL" not in codes

    for qualname in sorted(program.functions):
        info = program.functions[qualname]
        for acquisition in info.acquisitions:
            holders = set(acquisition.held)
            if acquisition.in_loop:
                holders.add(acquisition.lock)  # re-acquired every pass
            for holding in sorted(holders):
                if holding == acquisition.lock and (
                    acquisition.lock in reentrant_ids
                ):
                    continue
                if not edge_allowed(info.path, acquisition.line):
                    continue
                graph.add_edge(
                    LockSite(
                        path=info.path,
                        line=acquisition.line,
                        function=qualname,
                        holding=holding,
                        acquiring=acquisition.lock,
                        note=f"{acquisition.mode} acquisition",
                    )
                )
        for call in info.calls:
            if not call.held:
                continue
            for callee in program.resolve(info, call):
                for acquired in sorted(program.acquire_set(callee)):
                    for holding in call.held:
                        if holding == acquired and acquired in reentrant_ids:
                            continue
                        if not edge_allowed(info.path, call.line):
                            continue
                        graph.add_edge(
                            LockSite(
                                path=info.path,
                                line=call.line,
                                function=qualname,
                                holding=holding,
                                acquiring=acquired,
                                note=f"via call to {callee}",
                            )
                        )
        if _collect_io is not None:
            for io_site in info.io_calls:
                _collect_io.append((info.path, io_site))
    return graph


def check_lock_order(
    paths: Optional[Sequence[Path]] = None,
    *,
    rules: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Run the lock-order pass; returns a ``lockgraph`` report.

    ``paths`` defaults to the installed ``repro`` package.  ``rules``
    restricts to a subset of ``CC001`` / ``CC002`` (the AST linter's
    ``--rule`` flag is shared); pragma suppressions are honoured.
    """
    if paths is None:
        import repro

        paths = [Path(repro.__file__).parent]
    wanted = (
        {code.upper() for code in rules} if rules is not None else set(CC_RULES)
    )
    report = AnalysisReport(pass_name="lockgraph")
    io_sites: List[Tuple[str, _IOSite]] = []
    suppressed: Dict[str, Dict[int, Set[str]]] = {}
    graph = build_lock_graph(
        paths, _collect_io=io_sites, _suppressed=suppressed
    )
    report.subjects_examined = graph.files_examined

    if "CC001" in wanted:
        for cycle in graph.cycles():
            members = set(cycle)
            evidence: List[LockSite] = []
            for (src, dst), sites in sorted(graph.edges.items()):
                if src in members and dst in members and (
                    len(cycle) > 1 or src == dst
                ):
                    evidence.extend(sites)
            if not evidence:
                continue
            evidence.sort(key=lambda s: (s.path, s.line))
            first = evidence[0]
            if len(cycle) == 1:
                message = (
                    f"lock {cycle[0]} may be re-acquired while already "
                    f"held (self-cycle on a non-reentrant lock)"
                )
            else:
                message = (
                    "lock-order cycle between "
                    + " and ".join(cycle)
                    + " (opposite acquisition orders exist)"
                )
            report.add(
                Finding(
                    code="CC001",
                    severity=Severity.ERROR,
                    location=f"{first.path}:{first.line}",
                    message=message,
                    fix_hint=CC_RULES["CC001"].fix_hint,
                    details={
                        "cycle": list(cycle),
                        "sites": [site.to_dict() for site in evidence],
                    },
                )
            )

    if "CC002" in wanted:
        for path, io_site in sorted(
            io_sites, key=lambda pair: (pair[0], pair[1].line)
        ):
            relevant = [
                lock for lock in io_site.held if lock not in _COMMIT_LOCKS
            ]
            if not relevant:
                continue
            codes = suppressed.get(path, {}).get(io_site.line, set())
            if "CC002" in codes or "ALL" in codes:
                continue
            report.add(
                Finding(
                    code="CC002",
                    severity=Severity.WARNING,
                    location=f"{path}:{io_site.line}",
                    message=(
                        f"{io_site.name}() performed while holding "
                        + ", ".join(sorted(relevant))
                    ),
                    fix_hint=CC_RULES["CC002"].fix_hint,
                    details={"held": sorted(relevant), "io": io_site.name},
                )
            )
    return report
