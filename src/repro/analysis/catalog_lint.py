"""Static verifier for an edit-sequence catalog (``repro analyze-db``).

All checks run *offline*: they read records, sequences, and (for the
prune-power diagnostics) the bounds engine's interval walks — no raster
is ever instantiated.  Checks and finding codes:

``DB001`` dangling-reference (ERROR)
    An edited image's base or Merge target names an id the catalog does
    not hold.  A BOUNDS walk for the image would raise at query time.
``DB002`` merge-cycle (ERROR)
    The reference graph (base edges + Merge-target edges) contains a
    cycle, so a BOUNDS walk can never terminate (the engine's runtime
    cycle guard would error; this finds it statically).
``DB003`` size-underflow (ERROR)
    A dimension-only abstract walk of the sequence reaches a state where
    a Merge is applied to an empty Defined Region, or produces a
    zero-pixel image — the rules are inapplicable, so the image is
    unqueryable.
``DB004`` bwm-misclassification (ERROR)
    BWM component placement contradicts the Figure 1 classification:
    a Main-cluster member with a non-widening operation (soundness
    hazard — the cluster shortcut could return a wrong result), an
    all-widening binary-based image filed Unclassified (performance
    bug only, still reported), a missing edited image, or a cluster
    under the wrong base.
``DB005`` cache-dependency-mismatch (ERROR)
    The bounds engine's recorded reverse-dependency edges disagree with
    the catalog's sequences: an edge from an image that the dependent's
    sequence does not reference means invalidation may drop too little
    (stale results survive mutations).
``DB006`` vacuous-bounds (INFO)
    Every bin interval of an edited image spans the full ``[0, 1]``
    range — BOUNDS can never prune the image for any query, so it is
    pure overhead over linear scanning (a prune-power diagnostic, not a
    defect).
``DB007`` cross-shard-reference (ERROR)
    Sharded catalogs only (:func:`check_shard_routing`): a binary image
    parked off its hash shard, a placement entry disagreeing with the
    shard that actually holds the record, or an edited image whose base
    or Merge target resolves to a different shard (or to none) — the
    dangling-after-routing case, where every shard-local DB001 check
    passes but a scatter-gathered BOUNDS walk would still fail.

The checks deliberately re-derive everything from the catalog rather
than trusting derived structures, which is how seeded-defect fixtures
(tests/analysis/test_catalog_lint.py) can plant each defect class and
assert it is caught.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.core.classify import first_non_widening
from repro.editing.executor import merge_canvas_geometry
from repro.editing.operations import Define, Merge, Mutate
from repro.editing.sequence import EditSequence
from repro.errors import RuleError
from repro.images.geometry import Rect, transform_rect_bbox

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.db.database import MultimediaDatabase
    from repro.shard.sharded import ShardedCatalog


def analyze_database(
    database: "MultimediaDatabase",
    *,
    with_prune_power: bool = True,
    vacuous_bin_fraction: float = 1.0,
) -> AnalysisReport:
    """Run every static catalog check; returns the combined report.

    ``with_prune_power`` controls the DB006 diagnostics (they walk every
    edited image's bounds, the only non-constant-time check);
    ``vacuous_bin_fraction`` is the fraction of bins that must be
    maximally wide before an image is reported vacuous (1.0 = all bins).
    """
    report = AnalysisReport(pass_name="catalog")
    catalog = database.catalog
    binary_ids = set(catalog.binary_ids())
    edited_ids = set(catalog.edited_ids())
    known = binary_ids | edited_ids
    sequences: Dict[str, EditSequence] = {
        image_id: catalog.sequence_of(image_id) for image_id in edited_ids
    }

    dangling = _check_dangling(sequences, known, report)
    cyclic = _check_cycles(sequences, report)
    _check_sizes(database, sequences, dangling | cyclic, report)
    _check_bwm_placement(database, sequences, binary_ids, report)
    _check_dependency_graph(database, sequences, known, report)
    if with_prune_power:
        _check_prune_power(
            database, edited_ids - dangling - cyclic, vacuous_bin_fraction, report
        )
    report.subjects_examined = len(known)
    return report


# ----------------------------------------------------------------------
# DB001 — dangling references
# ----------------------------------------------------------------------
def _check_dangling(
    sequences: Dict[str, EditSequence],
    known: Set[str],
    report: AnalysisReport,
) -> Set[str]:
    """Report unknown base/target references; returns the affected ids."""
    affected: Set[str] = set()
    for image_id, sequence in sorted(sequences.items()):
        for referenced in sequence.referenced_ids():
            if referenced not in known:
                kind = "base" if referenced == sequence.base_id else "Merge target"
                affected.add(image_id)
                report.add(
                    Finding(
                        code="DB001",
                        severity=Severity.ERROR,
                        location=image_id,
                        message=(
                            f"{kind} reference {referenced!r} is not in the "
                            f"catalog; BOUNDS walks for this image will fail"
                        ),
                        fix_hint=(
                            "restore the referenced image or delete this "
                            "edited image (repro repair reconciles derived "
                            "structures but cannot invent lost records)"
                        ),
                        details={"referenced": referenced},
                    )
                )
    return affected


# ----------------------------------------------------------------------
# DB002 — Merge/base reference cycles
# ----------------------------------------------------------------------
def _check_cycles(
    sequences: Dict[str, EditSequence], report: AnalysisReport
) -> Set[str]:
    """Detect cycles in the reference graph; returns ids on a cycle."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {image_id: WHITE for image_id in sequences}
    on_cycle: Set[str] = set()

    def visit(image_id: str, path: List[str]) -> None:
        color[image_id] = GRAY
        path.append(image_id)
        for referenced in sequences[image_id].referenced_ids():
            if referenced not in sequences:
                continue  # binary or dangling: cannot extend a cycle
            state = color[referenced]
            if state == GRAY:
                cycle = path[path.index(referenced):] + [referenced]
                if not on_cycle.issuperset(cycle):
                    on_cycle.update(cycle)
                    report.add(
                        Finding(
                            code="DB002",
                            severity=Severity.ERROR,
                            location=referenced,
                            message=(
                                "reference cycle "
                                + " -> ".join(cycle)
                                + "; BOUNDS recursion cannot terminate"
                            ),
                            fix_hint=(
                                "break the cycle by deleting or re-basing "
                                "one image in it"
                            ),
                            details={"cycle": cycle},
                        )
                    )
            elif state == WHITE:
                visit(referenced, path)
        path.pop()
        color[image_id] = BLACK

    for image_id in sorted(sequences):
        if color[image_id] == WHITE:
            visit(image_id, [])
    return on_cycle


# ----------------------------------------------------------------------
# DB003 — size underflow / zero-size reachability
# ----------------------------------------------------------------------
def _dimensions_of(
    database: "MultimediaDatabase",
    image_id: str,
    sequences: Dict[str, EditSequence],
    memo: Dict[str, Optional[Tuple[int, int]]],
    stack: Set[str],
) -> Optional[Tuple[int, int]]:
    """Exact ``(height, width)`` of a stored image via geometry alone.

    Returns ``None`` when the dimensions are unknowable (dangling
    reference, cycle, or a sequence whose own walk underflows) — callers
    skip rather than double-report.
    """
    if image_id in memo:
        return memo[image_id]
    if image_id in stack:
        return None
    sequence = sequences.get(image_id)
    if sequence is None:
        try:
            record = database.catalog.binary_record(image_id)
        except Exception:
            memo[image_id] = None
            return None
        dims = (record.image.height, record.image.width)
        memo[image_id] = dims
        return dims
    stack.add(image_id)
    walk = _walk_dimensions(database, sequence, sequences, memo, stack)
    stack.discard(image_id)
    dims = walk[-1][1] if walk and walk[-1][0] is None else None
    memo[image_id] = dims
    return dims


def _walk_dimensions(
    database: "MultimediaDatabase",
    sequence: EditSequence,
    sequences: Dict[str, EditSequence],
    memo: Dict[str, Optional[Tuple[int, int]]],
    stack: Set[str],
) -> List[Tuple[Optional[str], Optional[Tuple[int, int]], Optional[int]]]:
    """Replay only the geometry of a sequence.

    Returns a list whose last element is ``(problem, dims, op_index)``:
    ``problem`` is ``None`` on success (with final ``dims``) or a
    description of the defect found at operation ``op_index``.
    """
    base_dims = _dimensions_of(database, sequence.base_id, sequences, memo, stack)
    if base_dims is None:
        return []
    height, width = base_dims
    dr = Rect(0, 0, height, width)
    for index, op in enumerate(sequence.operations):
        if isinstance(op, Define):
            dr = op.rect.clip(height, width)
        elif isinstance(op, Mutate):
            if dr.is_empty:
                continue
            image_bounds = Rect(0, 0, height, width)
            if op.is_whole_image_scale(dr, image_bounds) and op.matrix.is_integer_scale():
                sx = int(round(op.matrix.m11))
                sy = int(round(op.matrix.m22))
                height, width = height * sx, width * sy
                dr = Rect(0, 0, height, width)
            else:
                try:
                    dr = transform_rect_bbox(dr, op.matrix).clip(height, width)
                except RuleError:
                    return [(f"untransformable DR at op {index}", None, index)]
        elif isinstance(op, Merge):
            if dr.is_empty:
                return [
                    (
                        f"Merge at op {index} applies to an empty Defined "
                        f"Region (size underflow)",
                        None,
                        index,
                    )
                ]
            if op.is_crop:
                height, width = dr.height, dr.width
            else:
                target_dims = _dimensions_of(
                    database, op.target_id, sequences, memo, stack
                )
                if target_dims is None:
                    return []
                height, width, _, _ = merge_canvas_geometry(
                    dr.height, dr.width, target_dims[0], target_dims[1], op.x, op.y
                )
            dr = Rect(0, 0, height, width)
        # Combine / Modify never change the geometry.
        if height <= 0 or width <= 0:
            return [
                (
                    f"zero-size image after op {index} "
                    f"({height}x{width})",
                    None,
                    index,
                )
            ]
    return [(None, (height, width), None)]


def _check_sizes(
    database: "MultimediaDatabase",
    sequences: Dict[str, EditSequence],
    skip: Set[str],
    report: AnalysisReport,
) -> None:
    memo: Dict[str, Optional[Tuple[int, int]]] = {}
    for image_id in sorted(sequences):
        if image_id in skip:
            continue
        walk = _walk_dimensions(
            database, sequences[image_id], sequences, memo, {image_id}
        )
        if not walk:
            continue  # unknowable via dangling/cycle: reported elsewhere
        problem, _, op_index = walk[-1]
        if problem is not None:
            report.add(
                Finding(
                    code="DB003",
                    severity=Severity.ERROR,
                    location=image_id,
                    message=problem,
                    fix_hint=(
                        "fix the Define region or drop the operation; the "
                        "Table 1 Merge rule requires a non-empty DR and a "
                        "positive result size"
                    ),
                    details={"op_index": op_index},
                )
            )


# ----------------------------------------------------------------------
# DB004 — BWM placement vs. Figure 1 classification
# ----------------------------------------------------------------------
def _check_bwm_placement(
    database: "MultimediaDatabase",
    sequences: Dict[str, EditSequence],
    binary_ids: Set[str],
    report: AnalysisReport,
) -> None:
    structure = database.bwm_structure
    placements: Dict[str, Tuple[str, str]] = {}  # id -> (component, cluster)
    for base_id, cluster in structure.clusters():
        for edited_id in cluster:
            placements[edited_id] = ("main", base_id)
    for edited_id in structure.unclassified:
        placements[edited_id] = ("unclassified", "")

    for image_id in sorted(sequences):
        sequence = sequences[image_id]
        stop = first_non_widening(sequence)
        widening = stop == -1
        should_be_main = widening and sequence.base_id in binary_ids
        placement = placements.pop(image_id, None)
        if placement is None:
            report.add(
                _bwm_finding(
                    image_id,
                    "edited image is missing from the BWM structure entirely",
                    "re-run repro repair to reconcile the BWM structure",
                )
            )
        elif placement[0] == "main" and not should_be_main:
            if widening:
                why = (
                    f"filed under Main but its base {sequence.base_id!r} is "
                    f"not a binary image"
                )
            else:
                why = (
                    f"filed under Main but operation {stop} "
                    f"({type(sequence.operations[stop]).__name__}) is not "
                    f"bound-widening — the Figure 2 cluster shortcut could "
                    f"return a wrong result set"
                )
            report.add(
                _bwm_finding(
                    image_id, why, "move the image to the Unclassified component"
                )
            )
        elif placement[0] == "main" and placement[1] != sequence.base_id:
            report.add(
                _bwm_finding(
                    image_id,
                    f"filed under cluster {placement[1]!r} but its sequence "
                    f"references base {sequence.base_id!r}",
                    "re-file the image under its own base's cluster",
                )
            )
        elif placement[0] == "unclassified" and should_be_main:
            report.add(
                _bwm_finding(
                    image_id,
                    "all rules are bound-widening and the base is binary, "
                    "yet the image sits in Unclassified (it always pays the "
                    "full BOUNDS walk)",
                    "re-file under the base's Main cluster",
                )
            )
    for orphan_id, placement in sorted(placements.items()):
        report.add(
            _bwm_finding(
                orphan_id,
                f"BWM {placement[0]} component lists an id the catalog does "
                f"not hold as an edited image",
                "remove the stale entry (repro repair does this)",
            )
        )


def _bwm_finding(image_id: str, message: str, hint: str) -> Finding:
    return Finding(
        code="DB004",
        severity=Severity.ERROR,
        location=image_id,
        message=message,
        fix_hint=hint,
    )


# ----------------------------------------------------------------------
# DB005 — cache dependency graph vs. catalog
# ----------------------------------------------------------------------
def _check_dependency_graph(
    database: "MultimediaDatabase",
    sequences: Dict[str, EditSequence],
    known: Set[str],
    report: AnalysisReport,
) -> None:
    for referenced, dependent in database.engine.dependency_edges():
        sequence = sequences.get(dependent)
        if sequence is None:
            report.add(
                _dependency_finding(
                    dependent,
                    f"the engine records {dependent!r} as depending on "
                    f"{referenced!r}, but the catalog holds no such edited "
                    f"image",
                    {"referenced": referenced},
                )
            )
        elif referenced not in sequence.referenced_ids():
            report.add(
                _dependency_finding(
                    dependent,
                    f"the engine records a dependency on {referenced!r} that "
                    f"the stored sequence does not reference — targeted "
                    f"invalidation may keep stale entries alive",
                    {"referenced": referenced},
                )
            )
        elif referenced not in known:
            report.add(
                _dependency_finding(
                    dependent,
                    f"the engine records a dependency on unknown image "
                    f"{referenced!r}",
                    {"referenced": referenced},
                )
            )


def _dependency_finding(location: str, message: str, details: Dict) -> Finding:
    return Finding(
        code="DB005",
        severity=Severity.ERROR,
        location=location,
        message=message,
        fix_hint=(
            "flush the memo cache (engine.invalidate_cache()) so the "
            "dependency graph is re-learned from the live catalog"
        ),
        details=details,
    )


# ----------------------------------------------------------------------
# DB006 — vacuous bounds (prune power)
# ----------------------------------------------------------------------
def _check_prune_power(
    database: "MultimediaDatabase",
    edited_ids: Set[str],
    vacuous_bin_fraction: float,
    report: AnalysisReport,
) -> None:
    engine = database.engine
    for image_id in sorted(edited_ids):
        try:
            lo, hi = engine.fraction_bounds_all_bins(image_id)
        except RuleError:
            continue  # walk-breaking defects carry their own findings
        vacuous = int(((lo <= 0.0) & (hi >= 1.0)).sum())
        if vacuous >= vacuous_bin_fraction * lo.shape[0]:
            report.add(
                Finding(
                    code="DB006",
                    severity=Severity.INFO,
                    location=image_id,
                    message=(
                        f"bounds are vacuous on {vacuous}/{lo.shape[0]} bins "
                        f"([0, 1] everywhere): BOUNDS can never prune this "
                        f"image for any query"
                    ),
                    fix_hint=(
                        "expect no pruning benefit; consider re-authoring "
                        "the sequence with tighter Defined Regions"
                    ),
                    details={"vacuous_bins": vacuous, "bins": int(lo.shape[0])},
                )
            )


# ----------------------------------------------------------------------
# DB007 — shard routing (sharded catalogs only)
# ----------------------------------------------------------------------
def check_shard_routing(sharded: "ShardedCatalog") -> AnalysisReport:
    """Verify a sharded catalog's routing invariants (``DB007``).

    Three layers, each re-derived from the shard databases rather than
    trusted from the router's in-memory placement map:

    1. every binary image sits on its hash shard;
    2. the placement map and the shards' actual holdings agree both
       ways (no phantom placements, no unrouted records);
    3. no edited image's reference (base or Merge target) resolves to a
       different shard than the image itself, or to no shard at all —
       the *dangling-after-routing* defect: per-shard DB001 checks all
       pass, yet a scatter-gathered BOUNDS walk would still fail.
    """
    from repro.shard.sharded import hash_shard

    report = AnalysisReport(pass_name="shard")
    placement = sharded.placement()
    shard_count = sharded.shard_count

    holdings: Dict[str, int] = {}
    for index in range(shard_count):
        catalog = sharded.shard_database(index).catalog
        for image_id in catalog.binary_ids():
            holdings[image_id] = index
            expected = hash_shard(image_id, shard_count)
            if expected != index:
                report.add(
                    Finding(
                        code="DB007",
                        severity=Severity.ERROR,
                        location=image_id,
                        message=(
                            f"binary image stored on shard {index} but its "
                            f"id hashes to shard {expected}; WAL replay in "
                            f"a fresh process would route it elsewhere"
                        ),
                        fix_hint=(
                            "reinsert the image through "
                            "ShardedCatalog.insert_image so the stable "
                            "hash places it"
                        ),
                        details={"shard": index, "expected_shard": expected},
                    )
                )
        for image_id in catalog.edited_ids():
            holdings[image_id] = index

    for image_id, index in sorted(placement.items()):
        if holdings.get(image_id) != index:
            actual = holdings.get(image_id)
            report.add(
                Finding(
                    code="DB007",
                    severity=Severity.ERROR,
                    location=image_id,
                    message=(
                        f"placement map says shard {index} but the record "
                        + (
                            f"actually lives on shard {actual}"
                            if actual is not None
                            else "is not held by any shard"
                        )
                    ),
                    fix_hint=(
                        "the router's placement map has drifted from the "
                        "shard databases (an out-of-band mutation?); "
                        "reopen the catalog to rebuild placement from disk"
                    ),
                    details={"placed_shard": index, "actual_shard": actual},
                )
            )
    for image_id, index in sorted(holdings.items()):
        if image_id not in placement:
            report.add(
                Finding(
                    code="DB007",
                    severity=Severity.ERROR,
                    location=image_id,
                    message=(
                        f"shard {index} holds this record but the router's "
                        f"placement map does not know it; routed reads "
                        f"(instantiate, delete) would raise UnknownObjectError"
                    ),
                    fix_hint=(
                        "mutate only through the ShardedCatalog wrapper; "
                        "reopen the catalog to rebuild placement from disk"
                    ),
                    details={"shard": index},
                )
            )

    for index in range(shard_count):
        catalog = sharded.shard_database(index).catalog
        for image_id in sorted(catalog.edited_ids()):
            sequence = catalog.sequence_of(image_id)
            for referenced in sequence.referenced_ids():
                resolved = holdings.get(referenced)
                if resolved == index:
                    continue
                kind = (
                    "base" if referenced == sequence.base_id else "Merge target"
                )
                report.add(
                    Finding(
                        code="DB007",
                        severity=Severity.ERROR,
                        location=image_id,
                        message=(
                            f"{kind} reference {referenced!r} "
                            + (
                                f"resolves to shard {resolved}, not this "
                                f"image's shard {index}"
                                if resolved is not None
                                else "resolves to no shard at all"
                            )
                            + " — dangling after routing; a scatter-"
                            "gathered BOUNDS walk would fail"
                        ),
                        fix_hint=(
                            "dependency chains must stay shard-local: "
                            "re-author the sequence against same-shard "
                            "images (the wrapper's insert_edited enforces "
                            "this; the defect means a shard database was "
                            "mutated directly)"
                        ),
                        details={
                            "referenced": referenced,
                            "shard": index,
                            "referenced_shard": resolved,
                        },
                    )
                )
    report.subjects_examined = len(holdings)
    return report
