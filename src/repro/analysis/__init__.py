"""Static analysis over the rule system, the catalog, and the codebase.

Three coordinated passes, all runnable offline (no raster is ever
instantiated):

* :mod:`repro.analysis.prover` — an interval abstract interpreter that
  *proves* the §4 bound-widening claims: every rule
  :func:`repro.core.classify.is_bound_widening` marks as widening must be
  monotone on the percentage interval over a systematic grid plus a
  randomized corpus of abstract states, and the scalar
  (:mod:`repro.core.rules`) and vectorized (:mod:`repro.core.rules_vec`)
  kernels must agree byte-identically on every state.
* :mod:`repro.analysis.catalog_lint` — static checks over an
  :class:`~repro.editing.sequence.EditSequence` catalog: dangling
  references, Merge cycles, size underflow, BWM placement consistency,
  cache-dependency-graph agreement, and vacuous-bounds diagnostics
  (``repro analyze-db``).
* :mod:`repro.analysis.ast_lint` — a stdlib-``ast`` linter enforcing the
  repo's concurrency and numeric discipline on ``src/repro/`` itself
  (``repro lint``).

Every pass reports :class:`~repro.analysis.findings.Finding` objects
(severity, stable code, location, fix hint) collected into an
:class:`~repro.analysis.findings.AnalysisReport`, mirroring the
``describe()`` / ``to_dict()`` conventions of :mod:`repro.obs`.
"""

from repro.analysis.ast_lint import LINT_RULES, lint_paths, lint_source
from repro.analysis.catalog_lint import analyze_database, check_shard_routing
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.prover import ProverReport, RuleVerdict, prove_rules

__all__ = [
    "AnalysisReport",
    "Finding",
    "LINT_RULES",
    "ProverReport",
    "RuleVerdict",
    "Severity",
    "analyze_database",
    "check_shard_routing",
    "lint_paths",
    "lint_source",
    "prove_rules",
]
