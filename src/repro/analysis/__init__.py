"""Static analysis over the rule system, the catalog, and the codebase.

Five coordinated passes, all runnable offline (no raster is ever
instantiated):

* :mod:`repro.analysis.prover` — an interval abstract interpreter that
  *proves* the §4 bound-widening claims: every rule
  :func:`repro.core.classify.is_bound_widening` marks as widening must be
  monotone on the percentage interval over a systematic grid plus a
  randomized corpus of abstract states, and the scalar
  (:mod:`repro.core.rules`) and vectorized (:mod:`repro.core.rules_vec`)
  kernels must agree byte-identically on every state.
* :mod:`repro.analysis.catalog_lint` — static checks over an
  :class:`~repro.editing.sequence.EditSequence` catalog: dangling
  references, Merge cycles, size underflow, BWM placement consistency,
  cache-dependency-graph agreement, and vacuous-bounds diagnostics
  (``repro analyze-db``).
* :mod:`repro.analysis.ast_lint` — a stdlib-``ast`` linter enforcing the
  repo's concurrency and numeric discipline on ``src/repro/`` itself
  (``repro lint``).
* :mod:`repro.analysis.lockgraph` — an interprocedural lock-order
  analysis: every lock-acquisition site in ``src/repro/``, the
  may-hold-while-acquiring graph across call edges, cycles reported as
  potential deadlocks (``CC001``) and locks held across ``fsync`` /
  ``rename`` as latency hazards (``CC002``); merged into ``repro
  lint``'s report.
* :mod:`repro.analysis.protocol` — a bounded explicit-state model
  checker for the WAL, compactor, and migration crash protocols:
  every interleaving and crash point up to a depth bound, checking
  that no acknowledged mutation is lost, replay is idempotent, no
  torn state is reader-visible, and rollback restores the origin
  exactly (``repro check-protocols``; refutations are ``CC003``
  findings carrying a minimal schedule trace).

A sixth, dynamic companion lives in :mod:`repro.testing.racecheck`
(``repro race-check``): an Eraser-style lockset race detector over
instrumented scenarios, reporting ``CC004`` findings through the same
machinery.

Every pass reports :class:`~repro.analysis.findings.Finding` objects
(severity, stable code, location, fix hint) collected into an
:class:`~repro.analysis.findings.AnalysisReport`, mirroring the
``describe()`` / ``to_dict()`` conventions of :mod:`repro.obs`.
"""

from repro.analysis.ast_lint import LINT_RULES, lint_paths, lint_source
from repro.analysis.catalog_lint import analyze_database, check_shard_routing
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.lockgraph import (
    CC_RULES,
    LockGraph,
    LockSite,
    build_lock_graph,
    check_lock_order,
)
from repro.analysis.protocol import (
    MODELS,
    ExplorationResult,
    ProtocolModel,
    Violation,
    check_protocols,
    explore,
)
from repro.analysis.prover import ProverReport, RuleVerdict, prove_rules

__all__ = [
    "AnalysisReport",
    "CC_RULES",
    "ExplorationResult",
    "Finding",
    "LINT_RULES",
    "LockGraph",
    "LockSite",
    "MODELS",
    "ProtocolModel",
    "ProverReport",
    "RuleVerdict",
    "Severity",
    "Violation",
    "analyze_database",
    "build_lock_graph",
    "check_lock_order",
    "check_protocols",
    "check_shard_routing",
    "explore",
    "lint_paths",
    "lint_source",
    "prove_rules",
]
