"""Structured findings shared by every static-analysis pass.

A :class:`Finding` is one defect or diagnostic: a stable code (``RS*``
for the rule-soundness prover, ``DB*`` for the catalog verifier, ``AL*``
for the AST linter), a severity, a location (file/line for lint, image
or rule identifier for the semantic passes), a human message, and a fix
hint.  :class:`AnalysisReport` collects findings and renders them with
the same ``describe()`` / ``to_dict()`` conventions the observability
layer (:mod:`repro.obs`) established, so CLI consumers and CI gates
treat every pass uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


def _location_key(location: str) -> Tuple[str, int]:
    """``(path, line)`` sort key for a ``path:line`` location string.

    Locations without a trailing ``:<digits>`` (image ids, rule-case
    names) sort by the whole string with line 0, so semantic-pass
    findings stay deterministic too.
    """
    path, sep, tail = location.rpartition(":")
    if sep and tail.isdigit():
        return (path, int(tail))
    return (location, 0)


class Severity(enum.Enum):
    """How bad one finding is.

    ``ERROR`` findings gate CI (``repro lint`` / ``repro analyze-db``
    exit non-zero); ``WARNING`` findings indicate likely problems that
    do not break soundness; ``INFO`` findings are diagnostics (e.g. the
    vacuous-bounds prune-power report).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One defect or diagnostic reported by an analysis pass."""

    #: Stable machine-readable code (``RS001``, ``DB003``, ``AL002``...).
    code: str
    severity: Severity
    #: Where: ``path:line`` for lint findings, an image id or rule-case
    #: name for the semantic passes.
    location: str
    #: What is wrong, in one sentence.
    message: str
    #: How to fix it (or why it may be acceptable), in one sentence.
    fix_hint: str = ""
    #: Pass-specific structured payload (e.g. the prover's minimal
    #: counterexample state); values must be JSON-serializable.
    details: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """``severity code location: message (hint: ...)``."""
        text = f"{self.severity.value} {self.code} {self.location}: {self.message}"
        if self.fix_hint:
            text += f" (hint: {self.fix_hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "details": dict(self.details),
        }


@dataclass
class AnalysisReport:
    """Findings from one analysis pass plus derived aggregates."""

    #: Which pass produced the report (``prover`` / ``catalog`` / ``lint``).
    pass_name: str
    findings: List[Finding] = field(default_factory=list)
    #: How many subjects the pass examined (states, images, or files) —
    #: context for "zero findings" being meaningful rather than vacuous.
    subjects_examined: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when no finding is an ``ERROR``."""
        return not any(f.severity is Severity.ERROR for f in self.findings)

    @property
    def clean(self) -> bool:
        """True when there are no findings at all."""
        return not self.findings

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    def codes(self) -> List[str]:
        """Distinct finding codes, sorted."""
        return sorted({f.code for f in self.findings})

    def counts(self) -> Dict[str, int]:
        """``{code: count}`` over all findings, key-sorted."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def sorted_findings(self) -> List[Finding]:
        """Findings in deterministic ``(code, path, line)`` order.

        The ordering is stable across runs and Python hash seeds so CI
        diffs of ``--json`` reports and golden-file tests never churn:
        code first (groups one rule's findings together), then the
        location split into its path and *numeric* line (``file:9``
        sorts before ``file:10``), then message as the tiebreak.
        """
        return sorted(
            self.findings,
            key=lambda f: (f.code, *_location_key(f.location), f.message),
        )

    # ------------------------------------------------------------------
    def describe(self, limit: Optional[int] = None) -> str:
        """Human-readable report: summary line plus one line per finding."""
        errors = len(self.by_severity(Severity.ERROR))
        warnings = len(self.by_severity(Severity.WARNING))
        infos = len(self.by_severity(Severity.INFO))
        lines = [
            f"{self.pass_name}: {self.subjects_examined} subjects examined, "
            f"{errors} errors, {warnings} warnings, {infos} notes"
        ]
        shown = self.sorted_findings()
        if limit is not None and len(shown) > limit:
            shown = shown[:limit]
            lines.append(f"  (showing first {limit} of {len(self.findings)})")
        for finding in shown:
            lines.append("  " + finding.describe())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pass": self.pass_name,
            "ok": self.ok,
            "subjects_examined": self.subjects_examined,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }
