"""Crash-protocol model checking for the WAL / compactor / migrator.

PR 8's kill-point sweeps *sample* crash points along one schedule; this
pass checks every schedule.  Each durability protocol in the repo is
modeled as a small explicit state machine — a handful of processes,
each a fixed sequence of atomic actions over a shared dictionary state
— and explored exhaustively over all interleavings, with a crash branch
taken at every reachable state (stateless model checking in the DPOR
tradition, scaled to protocols small enough to enumerate).

Three models ship:

``wal``
    The :class:`~repro.shard.wal.ShardWAL` discipline: a writer runs
    append → fsync → apply → ack per mutation under the shard lock
    while a checkpointer runs write-segments → reset-WAL under the same
    lock.  A crash wipes volatile state, optionally drops the torn
    unsynced tail, and replays the log over the segments.
``compactor``
    The background compactor's materialize → version-check → commit /
    rollback handshake against a concurrent writer.  Purely in-memory
    (durability is the WAL model's job), so crash branching is off.
``migration``
    The journaled migrator: journal-begin → write-batch → journal-batch
    → swap-manifest (under the swap lock) → journal-swap →
    journal-complete → cleanup, against a concurrent reader.  Recovery
    replays the journal: roll forward after ``complete``, otherwise
    roll back to the origin manifest.

Checked invariants (the four from the issue):

* **acked-durable** — no acknowledged mutation is lost by any
  crash+recovery.
* **replay-idempotent** — replaying recovered state changes nothing.
* **no-torn-read** — no reachable state shows a reader partially
  applied effects (a mutation applied before it is durably logged; a
  manifest pointing at segments that do not exist).
* **rollback-exact** — an aborted compaction leaves the catalog
  untouched; a rolled-back migration restores the origin exactly.

Violations are reported as ``CC003`` findings whose details carry the
*minimal* counterexample schedule (breadth-first search finds the
shortest trace first, mirroring the rule prover's shrunk
counterexamples).  Exploration uses sleep-set pruning (DPOR-lite):
independent actions — different processes touching disjoint state —
are not re-ordered, which prunes redundant interleavings while still
visiting every reachable state (sleep sets cut duplicate *paths*, not
states; the visited cache re-expands a state seen with a smaller sleep
set).

Seeded-defect variants of each model (``DEFECTS``) reorder or corrupt
one protocol step — apply-before-log, ack-before-fsync, a skipped
version re-check, a rollback that leaks scratch state, cleanup before
journal-complete — and exist so the test suite can prove the checker
actually refutes broken protocols.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.findings import AnalysisReport, Finding, Severity

State = Dict[str, Any]
_Key = Tuple[Tuple[str, Any], ...]

#: Default exploration depth.  Every shipped model's longest schedule is
#: well under this, so the default run is exhaustive (``truncated`` is
#: False); the bound exists to keep defect variants and future models
#: from diverging.
DEFAULT_BOUND = 64


def _freeze(state: State) -> _Key:
    return tuple(sorted(state.items()))


# ----------------------------------------------------------------------
# Model vocabulary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Action:
    """One atomic protocol step.

    ``reads`` must cover every key the guard or effect looks at and
    ``writes`` every key the effect may change — independence (and so
    the soundness of sleep-set pruning) is judged from these sets.
    """

    name: str
    process: str
    effect: Callable[[State], State]
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    guard: Optional[Callable[[State], bool]] = None

    def enabled(self, state: State) -> bool:
        return self.guard is None or self.guard(state)


@dataclass(frozen=True)
class Invariant:
    """A safety predicate; returns an error string on violation."""

    name: str
    check: Callable[[State], Optional[str]]
    #: "step" invariants run at every reachable state; "crash"
    #: invariants run on every recovered state.
    when: str = "step"


@dataclass
class ProtocolModel:
    """A protocol as processes of atomic actions plus crash semantics."""

    name: str
    description: str
    initial: State
    #: process name -> its fixed action sequence.
    processes: Dict[str, Sequence[Action]]
    invariants: Sequence[Invariant]
    #: Keys that survive a crash (disk contents and "ghost" observer
    #: state such as the set of acknowledged mutations).
    durable_keys: FrozenSet[str] = frozenset()
    #: durable-projection -> possible recovered states (several when a
    #: torn tail may or may not survive).  ``None`` disables crash
    #: branching (in-memory protocols).
    recover: Optional[Callable[[State], List[Tuple[str, State]]]] = None

    def step_invariants(self) -> List[Invariant]:
        return [inv for inv in self.invariants if inv.when == "step"]

    def crash_invariants(self) -> List[Invariant]:
        return [inv for inv in self.invariants if inv.when == "crash"]


@dataclass(frozen=True)
class Violation:
    """One refuted invariant with its minimal schedule."""

    model: str
    invariant: str
    message: str
    #: Action names in order; a crash branch ends with ``crash(<label>)``.
    trace: Tuple[str, ...]
    state: _Key

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "invariant": self.invariant,
            "message": self.message,
            "trace": list(self.trace),
            "state": {key: _jsonable(value) for key, value in self.state},
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return value


@dataclass
class ExplorationResult:
    """What one exhaustive exploration saw."""

    model: str
    states_explored: int = 0
    transitions: int = 0
    crash_branches: int = 0
    pruned: int = 0
    truncated: bool = False
    violations: List[Violation] = field(default_factory=list)

    @property
    def exhaustive(self) -> bool:
        return not self.truncated

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "states_explored": self.states_explored,
            "transitions": self.transitions,
            "crash_branches": self.crash_branches,
            "pruned": self.pruned,
            "exhaustive": self.exhaustive,
            "violations": [v.to_dict() for v in self.violations],
        }


# ----------------------------------------------------------------------
# Explorer
# ----------------------------------------------------------------------
def _independent(a: Action, b: Action) -> bool:
    """Commuting actions: different processes, disjoint footprints."""
    if a.process == b.process:
        return False
    if a.writes & (b.reads | b.writes):
        return False
    if b.writes & (a.reads | a.writes):
        return False
    return True


def explore(
    model: ProtocolModel,
    *,
    max_depth: int = DEFAULT_BOUND,
    crash: bool = True,
) -> ExplorationResult:
    """Breadth-first exhaustive exploration with sleep-set pruning.

    BFS guarantees the first trace refuting an invariant is a shortest
    one.  The visited cache keys on (state, program counters) and
    stores the sleep sets each node was expanded with; a node is
    re-expanded when reached with a sleep set that is not a superset of
    a previous one, which keeps sleep-set pruning sound under state
    caching.
    """
    result = ExplorationResult(model=model.name)
    process_names = sorted(model.processes)
    step_invs = model.step_invariants()
    crash_invs = model.crash_invariants()
    seen_violations: Set[str] = set()
    crash_verdicts: Dict[_Key, None] = {}

    def record(
        invariant: Invariant, error: str, trace: Tuple[str, ...], key: _Key
    ) -> None:
        if invariant.name in seen_violations:
            return
        seen_violations.add(invariant.name)
        result.violations.append(
            Violation(
                model=model.name,
                invariant=invariant.name,
                message=error,
                trace=trace,
                state=key,
            )
        )

    def check_state(state: State, trace: Tuple[str, ...]) -> None:
        key = _freeze(state)
        for invariant in step_invs:
            error = invariant.check(state)
            if error is not None:
                record(invariant, error, trace, key)

    def branch_crash(state: State, trace: Tuple[str, ...]) -> None:
        if not crash or model.recover is None:
            return
        durable = {
            key: value
            for key, value in state.items()
            if key in model.durable_keys
        }
        durable_key = _freeze(durable)
        if durable_key in crash_verdicts:
            # Identical durable image: recovery is a function of it, so
            # the verdict cannot differ from the first (shortest) trace.
            return
        crash_verdicts[durable_key] = None
        for label, recovered in model.recover(dict(durable)):
            result.crash_branches += 1
            crash_trace = (*trace, f"crash({label})")
            recovered_key = _freeze(recovered)
            for invariant in crash_invs:
                error = invariant.check(recovered)
                if error is not None:
                    record(invariant, error, crash_trace, recovered_key)

    initial_pcs = tuple(0 for _ in process_names)
    initial_state = dict(model.initial)
    check_state(initial_state, ())
    branch_crash(initial_state, ())

    # queue entries: (state, pcs, trace, sleep-set of action ids)
    queue: deque[
        Tuple[State, Tuple[int, ...], Tuple[str, ...], FrozenSet[str]]
    ] = deque([(initial_state, initial_pcs, (), frozenset())])
    visited: Dict[Tuple[_Key, Tuple[int, ...]], List[FrozenSet[str]]] = {
        (_freeze(initial_state), initial_pcs): [frozenset()]
    }
    result.states_explored = 1

    while queue:
        state, pcs, trace, sleep = queue.popleft()
        if len(trace) >= max_depth:
            result.truncated = True
            continue
        enabled: List[Tuple[int, Action]] = []
        for position, process in enumerate(process_names):
            actions = model.processes[process]
            pc = pcs[position]
            if pc < len(actions) and actions[pc].enabled(state):
                enabled.append((position, actions[pc]))
        explored_here: List[Action] = []
        for position, action in enabled:
            if action.name in sleep:
                result.pruned += 1
                continue
            successor = action.effect(dict(state))
            next_pcs = tuple(
                pc + 1 if index == position else pc
                for index, pc in enumerate(pcs)
            )
            next_trace = (*trace, action.name)
            result.transitions += 1
            # The successor's sleep set keeps previously-slept and
            # previously-explored siblings that commute with this step.
            next_sleep = frozenset(
                name
                for name in (
                    *sleep,
                    *(prior.name for prior in explored_here),
                )
                if _commutes_by_name(model, name, action)
            )
            explored_here.append(action)
            node_key = (_freeze(successor), next_pcs)
            known = visited.get(node_key)
            if known is not None and any(
                previous <= next_sleep for previous in known
            ):
                continue  # already expanded at least this freely
            if known is None:
                visited[node_key] = [next_sleep]
                result.states_explored += 1
                check_state(successor, next_trace)
                branch_crash(successor, next_trace)
            else:
                known.append(next_sleep)
            queue.append((successor, next_pcs, next_trace, next_sleep))
    return result


def _commutes_by_name(
    model: ProtocolModel, name: str, action: Action
) -> bool:
    other = _action_by_name(model, name)
    return other is not None and _independent(other, action)


def _action_by_name(model: ProtocolModel, name: str) -> Optional[Action]:
    for actions in model.processes.values():
        for action in actions:
            if action.name == name:
                return action
    return None


# ----------------------------------------------------------------------
# Model: WAL append -> fsync -> apply -> ack, with checkpointing
# ----------------------------------------------------------------------
def build_wal_model(defect: Optional[str] = None) -> ProtocolModel:
    """The shard WAL discipline.

    Defects: ``apply_before_log`` applies the mutation before its
    record is appended (torn visibility); ``ack_before_fsync``
    acknowledges before the record is durable (lost ack on crash);
    ``blind_replay`` recovers without the idempotency dedup.
    """
    if defect not in (None, "apply_before_log", "ack_before_fsync",
                      "blind_replay"):
        raise ValueError(f"unknown wal defect {defect!r}")

    def acquire(state: State) -> State:
        state["lock"] = 1
        return state

    def release(state: State) -> State:
        state["lock"] = 0
        return state

    def lock_free(state: State) -> bool:
        return state["lock"] == 0

    def writer_steps(mutation: str) -> List[Action]:
        def append(state: State) -> State:
            state["wal.pending"] = (*state["wal.pending"], mutation)
            return state

        def fsync(state: State) -> State:
            state["wal.synced"] = (
                *state["wal.synced"],
                *state["wal.pending"],
            )
            state["wal.pending"] = ()
            return state

        def apply(state: State) -> State:
            state["mem"] = (*state["mem"], mutation)
            return state

        def ack(state: State) -> State:
            state["acked"] = state["acked"] | {mutation}
            return state

        base = {"process": "writer"}
        steps = [
            Action(
                name=f"w.acquire[{mutation}]",
                effect=acquire,
                guard=lock_free,
                reads=frozenset({"lock"}),
                writes=frozenset({"lock"}),
                **base,
            ),
            Action(
                name=f"w.append[{mutation}]",
                effect=append,
                reads=frozenset({"wal.pending"}),
                writes=frozenset({"wal.pending"}),
                **base,
            ),
            Action(
                name=f"w.fsync[{mutation}]",
                effect=fsync,
                reads=frozenset({"wal.pending", "wal.synced"}),
                writes=frozenset({"wal.pending", "wal.synced"}),
                **base,
            ),
            Action(
                name=f"w.apply[{mutation}]",
                effect=apply,
                reads=frozenset({"mem"}),
                writes=frozenset({"mem"}),
                **base,
            ),
            Action(
                name=f"w.ack[{mutation}]",
                effect=ack,
                reads=frozenset({"acked"}),
                writes=frozenset({"acked"}),
                **base,
            ),
            Action(
                name=f"w.release[{mutation}]",
                effect=release,
                reads=frozenset({"lock"}),
                writes=frozenset({"lock"}),
                **base,
            ),
        ]
        order = [0, 1, 2, 3, 4, 5]
        if defect == "apply_before_log":
            order = [0, 3, 1, 2, 4, 5]  # apply precedes append/fsync
        elif defect == "ack_before_fsync":
            order = [0, 1, 4, 2, 3, 5]  # ack precedes fsync
        return [steps[index] for index in order]

    def write_segments(state: State) -> State:
        state["seg"] = tuple(state["mem"])
        return state

    def reset_wal(state: State) -> State:
        state["wal.synced"] = ()
        state["wal.pending"] = ()
        return state

    checkpointer = [
        Action(
            name="c.acquire",
            process="checkpoint",
            effect=acquire,
            guard=lock_free,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
        Action(
            name="c.write_segments",
            process="checkpoint",
            effect=write_segments,
            reads=frozenset({"mem", "seg"}),
            writes=frozenset({"seg"}),
        ),
        Action(
            name="c.reset_wal",
            process="checkpoint",
            effect=reset_wal,
            reads=frozenset({"wal.synced", "wal.pending"}),
            writes=frozenset({"wal.synced", "wal.pending"}),
        ),
        Action(
            name="c.release",
            process="checkpoint",
            effect=release,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
    ]

    def replay(segments: Tuple[str, ...], log: Tuple[str, ...]) -> Tuple[str, ...]:
        recovered = list(segments)
        for mutation in log:
            if defect == "blind_replay" or mutation not in recovered:
                recovered.append(mutation)
        return tuple(recovered)

    def recover(durable: State) -> List[Tuple[str, State]]:
        branches: List[Tuple[str, Tuple[str, ...]]] = []
        synced = durable["wal.synced"]
        pending = durable["wal.pending"]
        if pending:
            # The unsynced tail either made it to disk intact or is
            # dropped as torn by entries(); both worlds are explored.
            branches.append(("tail-kept", (*synced, *pending)))
            branches.append(("tail-torn", synced))
        else:
            branches.append(("clean", synced))
        recovered_states: List[Tuple[str, State]] = []
        for label, log in branches:
            recovered_states.append(
                (
                    label,
                    {
                        "lock": 0,
                        "seg": durable["seg"],
                        "wal.synced": log,
                        "wal.pending": (),
                        "mem": replay(durable["seg"], log),
                        "acked": durable["acked"],
                    },
                )
            )
        return recovered_states

    def no_torn_read(state: State) -> Optional[str]:
        visible = set(state["mem"])
        logged = set(state["wal.synced"]) | set(state["seg"])
        unlogged = visible - logged
        if unlogged:
            return (
                "reader-visible mutations not yet durably logged: "
                + ", ".join(sorted(unlogged))
            )
        return None

    def acked_durable(state: State) -> Optional[str]:
        lost = set(state["acked"]) - set(state["mem"])
        if lost:
            return (
                "acknowledged mutations lost by recovery: "
                + ", ".join(sorted(lost))
            )
        return None

    def replay_idempotent(state: State) -> Optional[str]:
        once = state["mem"]
        twice = replay(once, state["wal.synced"])
        if twice != once:
            return (
                f"replaying recovered state changed it: {list(once)} -> "
                f"{list(twice)}"
            )
        return None

    return ProtocolModel(
        name="wal",
        description=(
            "ShardWAL append->fsync->apply->ack vs. checkpoint "
            "write-segments->reset-WAL"
        ),
        initial={
            "lock": 0,
            "wal.synced": (),
            "wal.pending": (),
            "seg": (),
            "mem": (),
            "acked": frozenset(),
        },
        processes={
            "writer": [*writer_steps("m1"), *writer_steps("m2")],
            "checkpoint": checkpointer,
        },
        durable_keys=frozenset(
            {"wal.synced", "wal.pending", "seg", "acked"}
        ),
        recover=recover,
        invariants=[
            Invariant("no-torn-read", no_torn_read, when="step"),
            Invariant("acked-durable", acked_durable, when="crash"),
            Invariant("replay-idempotent", replay_idempotent, when="crash"),
        ],
    )


# ----------------------------------------------------------------------
# Model: compactor materialize -> version-check -> commit / rollback
# ----------------------------------------------------------------------
def build_compactor_model(defect: Optional[str] = None) -> ProtocolModel:
    """The version-checked compaction commit.

    Defects: ``skip_version_check`` commits a stale materialization
    unconditionally; ``dirty_rollback`` lets an aborted materialization
    leak its scratch state into the catalog.
    """
    if defect not in (None, "skip_version_check", "dirty_rollback"):
        raise ValueError(f"unknown compactor defect {defect!r}")

    def lock_free(state: State) -> bool:
        return state["lock"] == 0

    def acquire(state: State) -> State:
        state["lock"] = 1
        return state

    def release(state: State) -> State:
        state["lock"] = 0
        return state

    def writer_steps(mutation: str) -> List[Action]:
        def mutate(state: State) -> State:
            state["data"] = (*state["data"], mutation)
            state["version"] = state["version"] + 1
            state["applied"] = state["applied"] | {mutation}
            return state

        return [
            Action(
                name=f"w.acquire[{mutation}]",
                process="writer",
                effect=acquire,
                guard=lock_free,
                reads=frozenset({"lock"}),
                writes=frozenset({"lock"}),
            ),
            Action(
                name=f"w.mutate[{mutation}]",
                process="writer",
                effect=mutate,
                reads=frozenset({"data", "version", "applied"}),
                writes=frozenset({"data", "version", "applied"}),
            ),
            Action(
                name=f"w.release[{mutation}]",
                process="writer",
                effect=release,
                reads=frozenset({"lock"}),
                writes=frozenset({"lock"}),
            ),
        ]

    def snapshot(state: State) -> State:
        # Real code computes the scratch engine under the shard read
        # lock: writers are excluded, so one atomic step is faithful.
        state["scratch"] = tuple(sorted(set(state["data"])))
        state["scratch_version"] = state["version"]
        return state

    def commit_or_abort(state: State) -> State:
        stale = state["version"] != state["scratch_version"]
        if stale and defect != "skip_version_check":
            # Rollback: discard scratch, leave the catalog untouched.
            if defect == "dirty_rollback":
                state["data"] = state["scratch"]
            state["aborted"] = True
        else:
            state["data"] = state["scratch"]
            state["committed"] = True
        state["scratch"] = ()
        return state

    compactor = [
        Action(
            name="k.snapshot",
            process="compactor",
            effect=snapshot,
            guard=lock_free,
            reads=frozenset({"lock", "data", "version"}),
            writes=frozenset({"scratch", "scratch_version"}),
        ),
        Action(
            name="k.acquire",
            process="compactor",
            effect=acquire,
            guard=lock_free,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
        Action(
            name="k.commit_or_abort",
            process="compactor",
            effect=commit_or_abort,
            reads=frozenset(
                {"version", "scratch_version", "scratch", "data"}
            ),
            writes=frozenset(
                {"data", "scratch", "committed", "aborted"}
            ),
        ),
        Action(
            name="k.release",
            process="compactor",
            effect=release,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
    ]

    def rollback_exact(state: State) -> Optional[str]:
        present = set(state["data"])
        expected = set(state["applied"])
        if state["aborted"] and present != expected:
            return (
                "aborted compaction changed the catalog: expected "
                f"{sorted(expected)}, found {sorted(present)}"
            )
        return None

    def no_lost_mutation(state: State) -> Optional[str]:
        if not state["committed"]:
            return None
        lost = set(state["applied"]) - set(state["data"])
        if lost:
            return (
                "committed compaction dropped mutations: "
                + ", ".join(sorted(lost))
            )
        return None

    return ProtocolModel(
        name="compactor",
        description=(
            "compactor snapshot->version-check->commit/rollback vs. a "
            "concurrent writer (in-memory; durability is the wal "
            "model's concern)"
        ),
        initial={
            "lock": 0,
            "data": ("m0",),
            "version": 0,
            "applied": frozenset({"m0"}),
            "scratch": (),
            "scratch_version": -1,
            "committed": False,
            "aborted": False,
        },
        processes={
            "writer": [*writer_steps("m1"), *writer_steps("m2")],
            "compactor": compactor,
        },
        durable_keys=frozenset(),
        recover=None,
        invariants=[
            Invariant("rollback-exact", rollback_exact, when="step"),
            Invariant("no-torn-read", no_lost_mutation, when="step"),
        ],
    )


# ----------------------------------------------------------------------
# Model: migration journal begin -> batch -> swap -> complete
# ----------------------------------------------------------------------
def build_migration_model(defect: Optional[str] = None) -> ProtocolModel:
    """The journaled manifest migration against a concurrent reader.

    Defects: ``swap_before_batch`` swaps the manifest before the batch
    segments exist (torn read); ``cleanup_before_complete`` deletes the
    origin segments before journaling ``complete`` (rollback cannot
    restore the origin).
    """
    if defect not in (None, "swap_before_batch", "cleanup_before_complete"):
        raise ValueError(f"unknown migration defect {defect!r}")

    def lock_free(state: State) -> bool:
        return state["lock"] == 0

    def journal(event: str) -> Callable[[State], State]:
        def effect(state: State) -> State:
            state["journal"] = (*state["journal"], event)
            return state

        return effect

    def write_batch(state: State) -> State:
        state["new_segs"] = state["new_segs"] | {"b1"}
        return state

    def swap(state: State) -> State:
        state["manifest"] = "v3"
        return state

    def cleanup(state: State) -> State:
        state["old_segs"] = False
        return state

    def m_acquire(state: State) -> State:
        state["lock"] = 1
        return state

    def m_release(state: State) -> State:
        state["lock"] = 0
        return state

    steps = {
        "j_begin": Action(
            name="m.journal[begin]",
            process="migrator",
            effect=journal("begin"),
            reads=frozenset({"journal"}),
            writes=frozenset({"journal"}),
        ),
        "write_batch": Action(
            name="m.write_batch",
            process="migrator",
            effect=write_batch,
            reads=frozenset({"new_segs"}),
            writes=frozenset({"new_segs"}),
        ),
        "j_batch": Action(
            name="m.journal[batch]",
            process="migrator",
            effect=journal("batch"),
            reads=frozenset({"journal"}),
            writes=frozenset({"journal"}),
        ),
        "acquire": Action(
            name="m.acquire",
            process="migrator",
            effect=m_acquire,
            guard=lock_free,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
        "swap": Action(
            name="m.swap_manifest",
            process="migrator",
            effect=swap,
            reads=frozenset({"manifest"}),
            writes=frozenset({"manifest"}),
        ),
        "release": Action(
            name="m.release",
            process="migrator",
            effect=m_release,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
        "j_swap": Action(
            name="m.journal[swap]",
            process="migrator",
            effect=journal("swap"),
            reads=frozenset({"journal"}),
            writes=frozenset({"journal"}),
        ),
        "j_complete": Action(
            name="m.journal[complete]",
            process="migrator",
            effect=journal("complete"),
            reads=frozenset({"journal"}),
            writes=frozenset({"journal"}),
        ),
        "cleanup": Action(
            name="m.cleanup_origin",
            process="migrator",
            effect=cleanup,
            reads=frozenset({"old_segs"}),
            writes=frozenset({"old_segs"}),
        ),
    }
    order = [
        "j_begin", "write_batch", "j_batch", "acquire", "swap",
        "release", "j_swap", "j_complete", "cleanup",
    ]
    if defect == "swap_before_batch":
        order = [
            "j_begin", "acquire", "swap", "release", "write_batch",
            "j_batch", "j_swap", "j_complete", "cleanup",
        ]
    elif defect == "cleanup_before_complete":
        order = [
            "j_begin", "write_batch", "j_batch", "acquire", "swap",
            "release", "j_swap", "cleanup", "j_complete",
        ]
    migrator = [steps[key] for key in order]

    def r_read(state: State) -> State:
        if state["manifest"] == "v3":
            state["observed"] = (
                "ok" if "b1" in state["new_segs"] else "torn"
            )
        else:
            state["observed"] = "ok" if state["old_segs"] else "torn"
        return state

    reader = [
        Action(
            name="r.acquire",
            process="reader",
            effect=m_acquire,
            guard=lock_free,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
        Action(
            name="r.read",
            process="reader",
            effect=r_read,
            reads=frozenset({"manifest", "new_segs", "old_segs"}),
            writes=frozenset({"observed"}),
        ),
        Action(
            name="r.release",
            process="reader",
            effect=m_release,
            reads=frozenset({"lock"}),
            writes=frozenset({"lock"}),
        ),
    ]

    def recover(durable: State) -> List[Tuple[str, State]]:
        journal_events = durable["journal"]
        recovered = dict(durable)
        recovered["lock"] = 0
        recovered["observed"] = "ok"
        if "complete" in journal_events:
            label = "roll-forward"
            recovered["rolled_back"] = False
        else:
            label = "roll-back"
            recovered["manifest"] = "v2"
            recovered["new_segs"] = frozenset()
            recovered["journal"] = (*journal_events, "rollback_done")
            recovered["rolled_back"] = True
        return [(label, recovered)]

    def no_torn_read(state: State) -> Optional[str]:
        if state["observed"] == "torn":
            return (
                f"reader observed manifest {state['manifest']} with its "
                "segments missing"
            )
        return None

    def rollback_exact(state: State) -> Optional[str]:
        if not state.get("rolled_back"):
            return None
        problems = []
        if state["manifest"] != "v2":
            problems.append(f"manifest is {state['manifest']}, not v2")
        if state["new_segs"]:
            problems.append(
                "introduced segments survive: "
                + ", ".join(sorted(state["new_segs"]))
            )
        if not state["old_segs"]:
            problems.append("origin segments were deleted")
        if problems:
            return "rollback did not restore origin: " + "; ".join(problems)
        return None

    def complete_is_final(state: State) -> Optional[str]:
        if "complete" in state["journal"] and state["manifest"] != "v3":
            return "journal says complete but the manifest is not v3"
        return None

    return ProtocolModel(
        name="migration",
        description=(
            "journaled migration begin->batch->swap->complete vs. a "
            "concurrent reader, with journal-driven crash recovery"
        ),
        initial={
            "lock": 0,
            "manifest": "v2",
            "old_segs": True,
            "new_segs": frozenset(),
            "journal": (),
            "observed": "ok",
            "rolled_back": False,
        },
        processes={"migrator": migrator, "reader": reader},
        durable_keys=frozenset(
            {"manifest", "old_segs", "new_segs", "journal"}
        ),
        recover=recover,
        invariants=[
            Invariant("no-torn-read", no_torn_read, when="step"),
            Invariant("rollback-exact", rollback_exact, when="crash"),
            Invariant("rollback-exact", complete_is_final, when="step"),
        ],
    )


#: Model registry: name -> builder accepting an optional defect.
MODELS: Dict[str, Callable[[Optional[str]], ProtocolModel]] = {
    "wal": build_wal_model,
    "compactor": build_compactor_model,
    "migration": build_migration_model,
}

#: Seeded-defect variants per model, for the refutation fixtures.
DEFECTS: Dict[str, Tuple[str, ...]] = {
    "wal": ("apply_before_log", "ack_before_fsync", "blind_replay"),
    "compactor": ("skip_version_check", "dirty_rollback"),
    "migration": ("swap_before_batch", "cleanup_before_complete"),
}


def check_protocols(
    models: Optional[Iterable[str]] = None,
    *,
    max_depth: int = DEFAULT_BOUND,
    defects: Optional[Mapping[str, str]] = None,
) -> AnalysisReport:
    """Explore the protocol models; CC003 findings for refutations.

    ``subjects_examined`` counts explored states across all models.
    ``defects`` injects a seeded defect per model (tests only).  A
    depth-bound truncation is itself a WARNING — an incomplete
    exploration must never read as a proof.
    """
    report = AnalysisReport(pass_name="protocol")
    names = sorted(models) if models is not None else sorted(MODELS)
    defects = defects or {}
    for name in names:
        builder = MODELS.get(name)
        if builder is None:
            raise ValueError(
                f"unknown protocol model {name!r}; have {sorted(MODELS)}"
            )
        model = builder(defects.get(name))
        result = explore(model, max_depth=max_depth)
        report.subjects_examined += result.states_explored
        if result.truncated:
            report.add(
                Finding(
                    code="CC000",
                    severity=Severity.WARNING,
                    location=f"{name}:depth",
                    message=(
                        f"exploration of {name!r} hit the depth bound "
                        f"{max_depth}; the run is not exhaustive"
                    ),
                    fix_hint="raise --bound until the model is exhausted",
                    details=result.to_dict(),
                )
            )
        for violation in result.violations:
            report.add(
                Finding(
                    code="CC003",
                    severity=Severity.ERROR,
                    location=f"{name}:{violation.invariant}",
                    message=violation.message,
                    fix_hint=(
                        "the trace in details is a minimal schedule "
                        "refuting the invariant; fix the protocol step "
                        "order it exhibits"
                    ),
                    details=violation.to_dict(),
                )
            )
    return report
