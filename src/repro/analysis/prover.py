"""Rule-soundness prover: machine-check the §4 bound-widening claims.

BWM's correctness argument rests on a *static* claim: every rule that
:func:`repro.core.classify.is_bound_widening` marks as widening can only
ever grow the percentage interval ``[HB_min/size, HB_max/size]``.  The
classifier asserts this with hand-written proofs in docstrings; this
module checks it mechanically with an interval abstract interpreter:

1. **Monotonicity** — for every rule case the classifier calls widening,
   apply the scalar Table 1 rule to a systematic grid plus a randomized
   corpus of abstract states and verify, with exact integer
   cross-multiplication (no float tolerance), that the post-rule
   percentage interval contains the pre-rule interval.
2. **Kernel parity** — for every rule case (widening or not), apply the
   vectorized kernel (:mod:`repro.core.rules_vec`) to heterogeneous
   all-bins states and the scalar kernel to each bin independently, and
   verify the results are byte-identical: same counts, same dimensions,
   same Defined Region, and the same :class:`~repro.errors.RuleError`
   on the same inputs.
3. **Columnar sweep parity** — stack heterogeneous per-bin states into
   one multi-row :class:`~repro.core.optable.BatchRuleState`, apply the
   columnar kernel (:func:`repro.core.optable.apply_rule_batched`) to
   every row at once, and verify each row is byte-identical to the
   scalar oracle — including which rows fail with a
   :class:`~repro.errors.RuleError`.

Any violation is reported as a :class:`~repro.analysis.findings.Finding`
(``RS001`` non-monotone widening rule, ``RS002`` scalar/vec divergence,
``RS003`` scalar/columnar divergence) carrying a *minimal* reproducing
state: the prover greedily shrinks the failing state (dimensions,
counts, Defined Region) until no smaller state still fails.

The prover is pure computation over abstract states — no catalog, no
raster, no instantiation — so it runs in CI's fast mode in about a
second.  Tests inject deliberately broken rules or classifiers through
the ``apply_scalar`` / ``classify_fn`` hooks to prove the prover itself
catches violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.color.quantization import UniformQuantizer
from repro.core.classify import is_bound_widening
from repro.core.optable import BatchRuleState, apply_rule_batched
from repro.core.rules import RuleContext, RuleState, apply_rule
from repro.core.rules_vec import VecRuleContext, VecRuleState, apply_rule_vec
from repro.editing.operations import (
    Combine,
    Define,
    Merge,
    Modify,
    Mutate,
    Operation,
)
from repro.errors import RuleError
from repro.images.geometry import AffineMatrix, Rect

#: Signature of the scalar rule applier (injectable for fixture tests).
ScalarApply = Callable[[RuleState, Operation, RuleContext], RuleState]
#: Signature of the vectorized rule applier.
VecApply = Callable[[VecRuleState, Operation, VecRuleContext], VecRuleState]
#: Signature of the columnar (multi-row) rule applier.
BatchedApply = Callable[
    [BatchRuleState, np.ndarray, Operation, VecRuleContext],
    Dict[int, RuleError],
]
#: Signature of the static classifier under test.
ClassifyFn = Callable[[Operation], bool]


# ----------------------------------------------------------------------
# Rule cases: one per Table 1 row / classifier branch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleCase:
    """One classifier branch with representative operations.

    ``expect_widening`` records what Table 1 / §4 claims for the case;
    the prover cross-checks the *actual* classifier verdict against the
    rules, so a case whose classifier verdict flips is still proved (or
    refuted) on its own merits.
    """

    name: str
    operations: Tuple[Operation, ...]
    #: What the paper's table claims (documentation only).
    expect_widening: bool
    #: Merge rules require a non-empty Defined Region.
    requires_nonempty_dr: bool = False
    #: The whole-image scale row needs the DR to cover the image.
    force_full_dr: bool = False
    #: Non-NULL Merge needs a target resolver.
    needs_target: bool = False

    def random_operation(
        self, rng: np.random.Generator
    ) -> Optional[Operation]:
        """A random parameter variation of this case, or ``None``."""
        maker = _RANDOM_MAKERS.get(self.name)
        return maker(rng) if maker is not None else None


def _random_define(rng: np.random.Generator) -> Operation:
    x1, y1 = int(rng.integers(0, 4)), int(rng.integers(0, 4))
    return Define.of(x1, y1, x1 + int(rng.integers(1, 5)), y1 + int(rng.integers(1, 5)))


def _random_combine(rng: np.random.Generator) -> Operation:
    return Combine(tuple(float(w) for w in rng.uniform(0.0, 2.0, 9) + 1e-3))


def _random_color(rng: np.random.Generator) -> Tuple[int, int, int]:
    return tuple(int(v) for v in rng.integers(0, 256, 3))


def _random_modify(rng: np.random.Generator) -> Operation:
    return Modify(_random_color(rng), _random_color(rng))


def _random_rigid(rng: np.random.Generator) -> Operation:
    if rng.random() < 0.5:
        return Mutate.translation(int(rng.integers(-3, 4)), int(rng.integers(-3, 4)))
    return Mutate.rotation_90(int(rng.integers(1, 4)), float(rng.integers(0, 4)), 0.0)


def _random_integer_scale(rng: np.random.Generator) -> Operation:
    return Mutate.scale(int(rng.integers(1, 4)), int(rng.integers(1, 4)))


def _random_general_affine(rng: np.random.Generator) -> Operation:
    return Mutate(
        AffineMatrix(
            1.0 + float(rng.uniform(0.1, 1.0)),
            float(rng.uniform(0.0, 0.5)),
            0.0,
            0.0,
            1.0 + float(rng.uniform(0.1, 1.0)),
            0.0,
        )
    )


def _random_merge_null(rng: np.random.Generator) -> Operation:
    return Merge(None)


def _random_merge_target(rng: np.random.Generator) -> Operation:
    return Merge("target", int(rng.integers(0, 3)), int(rng.integers(0, 3)))


_RANDOM_MAKERS: Dict[str, Callable[[np.random.Generator], Operation]] = {
    "define": _random_define,
    "combine": _random_combine,
    "modify": _random_modify,
    "mutate-rigid-body": _random_rigid,
    "mutate-integer-scale": _random_integer_scale,
    "mutate-general-affine": _random_general_affine,
    "merge-null": _random_merge_null,
    "merge-target": _random_merge_target,
}


def default_rule_cases() -> Tuple[RuleCase, ...]:
    """The Table 1 rows as prover cases, one per classifier branch."""
    return (
        RuleCase("define", (Define.of(0, 0, 3, 3), Define.of(1, 1, 6, 8)), True),
        RuleCase("combine", (Combine.box(),), True),
        RuleCase(
            "modify",
            (
                Modify((0, 0, 0), (255, 255, 255)),   # old/new in different bins
                Modify((10, 10, 10), (40, 30, 20)),   # both in the same bin
                Modify((200, 16, 46), (200, 16, 46)),  # identity color map
            ),
            True,
        ),
        RuleCase("mutate-identity", (Mutate(AffineMatrix.identity()),), True),
        RuleCase(
            "mutate-rigid-body",
            (Mutate.translation(2, -1), Mutate.rotation_90(1, 2.0, 2.0)),
            True,
        ),
        RuleCase(
            "mutate-integer-scale",
            (Mutate.scale(2), Mutate.scale(3, 2)),
            True,
            force_full_dr=True,
        ),
        RuleCase(
            "mutate-partial-integer-scale",
            (Mutate.scale(2),),
            True,
        ),
        RuleCase(
            "mutate-general-affine",
            (Mutate.scale(1.5), Mutate(AffineMatrix(1.3, 0.4, 0.0, 0.0, 1.0, 0.0))),
            False,
        ),
        RuleCase("merge-null", (Merge(None),), True, requires_nonempty_dr=True),
        RuleCase(
            "merge-target",
            (Merge("target", 0, 0), Merge("target", 2, 1)),
            False,
            requires_nonempty_dr=True,
            needs_target=True,
        ),
    )


# ----------------------------------------------------------------------
# Abstract-state corpus
# ----------------------------------------------------------------------
def _state(lo: int, hi: int, height: int, width: int, dr: Rect) -> RuleState:
    return RuleState(lo=lo, hi=hi, height=height, width=width, dr=dr)

def grid_states() -> List[RuleState]:
    """The systematic corpus: boundary dimensions, counts, and DRs."""
    states: List[RuleState] = []
    for height, width in ((1, 1), (1, 3), (2, 2), (3, 5), (5, 4)):
        total = height * width
        count_pairs = {
            (0, 0),
            (0, total),
            (total, total),
            (0, total // 2),
            (total // 2, total),
            (max(0, total // 2 - 1), total // 2),
        }
        drs = [
            Rect(0, 0, height, width),            # full image
            Rect(0, 0, 0, 0),                      # empty DR
            Rect(0, 0, max(1, height // 2), max(1, width // 2)),  # corner
        ]
        if height > 1 and width > 1:
            drs.append(Rect(1, 1, height, width))  # offset interior
        for lo, hi in sorted(count_pairs):
            for dr in drs:
                states.append(_state(lo, hi, height, width, dr))
    return states


def random_states(rng: np.random.Generator, count: int) -> List[RuleState]:
    """The randomized corpus: arbitrary consistent abstract states."""
    states: List[RuleState] = []
    for _ in range(count):
        height = int(rng.integers(1, 9))
        width = int(rng.integers(1, 9))
        total = height * width
        lo = int(rng.integers(0, total + 1))
        hi = int(rng.integers(lo, total + 1))
        x1 = int(rng.integers(0, height))
        y1 = int(rng.integers(0, width))
        dr = Rect(
            x1,
            y1,
            int(rng.integers(x1, height + 1)),
            int(rng.integers(y1, width + 1)),
        )
        states.append(_state(lo, hi, height, width, dr))
    return states


def _adapt_state(state: RuleState, case: RuleCase) -> Optional[RuleState]:
    """Specialize a corpus state to a case's preconditions, or drop it."""
    if case.force_full_dr:
        state = _state(
            state.lo, state.hi, state.height, state.width,
            Rect(0, 0, state.height, state.width),
        )
    elif case.name == "mutate-partial-integer-scale":
        # The non-whole-image row: keep only states whose DR does NOT
        # cover the image, so the pixel-move branch is the one proved.
        if state.dr.contains(Rect(0, 0, state.height, state.width)):
            return None
    if case.requires_nonempty_dr and state.dr.is_empty:
        return None
    return state


# ----------------------------------------------------------------------
# The two checks
# ----------------------------------------------------------------------
def _interval_contains(pre: RuleState, post: RuleState) -> bool:
    """Exact containment of percentage intervals (no float tolerance).

    ``post.lo / post.total <= pre.lo / pre.total`` and
    ``post.hi / post.total >= pre.hi / pre.total``, cross-multiplied so
    the comparison stays in integers.
    """
    return (
        post.lo * pre.total <= pre.lo * post.total
        and post.hi * pre.total >= pre.hi * post.total
    )


def _state_payload(state: RuleState) -> Dict[str, Any]:
    return {
        "lo": state.lo,
        "hi": state.hi,
        "height": state.height,
        "width": state.width,
        "dr": list(state.dr.as_tuple()),
    }


def _state_size(state: RuleState) -> int:
    return state.height + state.width + state.lo + state.hi + state.dr.area


def _shrink_candidates(state: RuleState) -> Iterable[RuleState]:
    """Strictly smaller neighbor states, largest reduction first."""
    height, width = state.height, state.width
    for new_h, new_w in ((max(1, height // 2), width), (height, max(1, width // 2)),
                         (height - 1, width), (height, width - 1)):
        if new_h < 1 or new_w < 1 or (new_h, new_w) == (height, width):
            continue
        total = new_h * new_w
        yield _state(
            min(state.lo, total),
            min(state.hi, total),
            new_h,
            new_w,
            state.dr.clip(new_h, new_w),
        )
    for new_lo in (0, state.lo // 2, state.lo - 1):
        if 0 <= new_lo < state.lo:
            yield _state(new_lo, state.hi, height, width, state.dr)
    for new_hi in (state.lo, (state.lo + state.hi) // 2, state.hi - 1):
        if state.lo <= new_hi < state.hi:
            yield _state(state.lo, new_hi, height, width, state.dr)
    if not state.dr.is_empty and state.dr.area > 1:
        x1, y1 = state.dr.x1, state.dr.y1
        yield _state(state.lo, state.hi, height, width, Rect(x1, y1, x1 + 1, y1 + 1))


def minimize_state(
    state: RuleState,
    still_fails: Callable[[RuleState], bool],
    max_steps: int = 200,
) -> RuleState:
    """Greedy shrink: the smallest neighbor-reachable state that still fails."""
    current = state
    for _ in range(max_steps):
        best: Optional[RuleState] = None
        for candidate in _shrink_candidates(current):
            if _state_size(candidate) >= _state_size(current):
                continue
            try:
                failing = still_fails(candidate)
            except RuleError:
                continue
            if failing and (best is None or _state_size(candidate) < _state_size(best)):
                best = candidate
        if best is None:
            return current
        current = best
    return current


def _vec_state_from(
    lo: np.ndarray, hi: np.ndarray, template: RuleState
) -> VecRuleState:
    return VecRuleState(
        lo=np.array(lo, dtype=np.int64),
        hi=np.array(hi, dtype=np.int64),
        height=template.height,
        width=template.width,
        dr=template.dr,
    )


@dataclass
class _TargetFixture:
    """A synthetic Merge target shared by the scalar and vec kernels."""

    lo: np.ndarray
    hi: np.ndarray
    height: int
    width: int

    def scalar_resolver(self) -> Callable[[str, int], Tuple[int, int, int, int]]:
        def resolve(target_id: str, bin_index: int) -> Tuple[int, int, int, int]:
            return (
                int(self.lo[bin_index]),
                int(self.hi[bin_index]),
                self.height,
                self.width,
            )
        return resolve

    def vec_resolver(
        self,
    ) -> Callable[[str], Tuple[np.ndarray, np.ndarray, int, int]]:
        def resolve(target_id: str) -> Tuple[np.ndarray, np.ndarray, int, int]:
            return (self.lo, self.hi, self.height, self.width)
        return resolve


def _make_target(rng: np.random.Generator, bin_count: int) -> _TargetFixture:
    height, width = int(rng.integers(1, 5)), int(rng.integers(1, 5))
    total = height * width
    # A mix of exact (binary-like) and interval (edited-like) targets.
    counts = rng.multinomial(total, np.full(bin_count, 1.0 / bin_count))
    lo = counts.astype(np.int64)
    if rng.random() < 0.5:
        hi = lo.copy()
    else:
        hi = np.minimum(lo + rng.integers(0, total + 1, bin_count), total).astype(
            np.int64
        )
        lo = np.maximum(lo - rng.integers(0, total + 1, bin_count), 0).astype(
            np.int64
        )
    return _TargetFixture(lo=lo, hi=hi, height=height, width=width)


# ----------------------------------------------------------------------
# Verdicts and the report
# ----------------------------------------------------------------------
@dataclass
class RuleVerdict:
    """The prover's conclusion for one rule case."""

    case: str
    #: Representative operation (repr of the first checked op).
    operation: str
    #: What the classifier under test said for this case's operations.
    classified_widening: bool
    #: ``True`` = proved monotone on the corpus; ``False`` = refuted;
    #: ``None`` = not claimed widening, so monotonicity is not required.
    monotone: Optional[bool]
    #: Scalar and vectorized kernels agreed byte-identically.
    parity_ok: bool
    #: (state, bin) pairs the monotonicity check covered.
    states_checked: int
    #: All-bins states the parity check covered.
    parity_states_checked: int
    #: Minimal reproducing state for the first violation, if any.
    counterexample: Optional[Dict[str, Any]] = None
    #: Columnar multi-row kernel agreed with the scalar oracle per row.
    batched_parity_ok: bool = True
    #: Rows the columnar parity check covered.
    batched_states_checked: int = 0

    @property
    def verified(self) -> bool:
        """Machine-verified sound: monotone when claimed, kernels agree."""
        return (
            self.parity_ok
            and self.batched_parity_ok
            and self.monotone is not False
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "operation": self.operation,
            "classified_widening": self.classified_widening,
            "monotone": self.monotone,
            "parity_ok": self.parity_ok,
            "states_checked": self.states_checked,
            "parity_states_checked": self.parity_states_checked,
            "batched_parity_ok": self.batched_parity_ok,
            "batched_states_checked": self.batched_states_checked,
            "counterexample": self.counterexample,
        }


@dataclass
class ProverReport:
    """Per-case verdicts plus the violations as structured findings."""

    verdicts: List[RuleVerdict] = field(default_factory=list)
    report: AnalysisReport = field(
        default_factory=lambda: AnalysisReport(pass_name="prover")
    )

    @property
    def ok(self) -> bool:
        """True when every case is verified and no finding is an error."""
        return self.report.ok and all(v.verified for v in self.verdicts)

    def verdict_for(self, case: str) -> RuleVerdict:
        for verdict in self.verdicts:
            if verdict.case == case:
                return verdict
        raise KeyError(f"no verdict for case {case!r}")

    def widening_cases(self) -> List[str]:
        """Cases the classifier marked widening AND the prover verified."""
        return [
            v.case
            for v in self.verdicts
            if v.classified_widening
            and v.monotone is True
            and v.parity_ok
            and v.batched_parity_ok
        ]

    def verdict_table(self) -> str:
        """Plain-text verdict table (pasted into EXPERIMENTS.md)."""
        headers = (
            "rule case",
            "classified widening",
            "monotone proved",
            "scalar==vec",
            "scalar==batched",
            "states",
        )
        rows = []
        for v in self.verdicts:
            rows.append(
                (
                    v.case,
                    "yes" if v.classified_widening else "no",
                    {True: "yes", False: "REFUTED", None: "n/a"}[v.monotone],
                    "yes" if v.parity_ok else "DIVERGED",
                    "yes" if v.batched_parity_ok else "DIVERGED",
                    f"{v.states_checked}+{v.parity_states_checked}"
                    f"+{v.batched_states_checked}",
                )
            )
        widths = [
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "report": self.report.to_dict(),
        }


# ----------------------------------------------------------------------
# The prover
# ----------------------------------------------------------------------
def prove_rules(
    mode: str = "fast",
    seed: int = 2006,
    quantizer: Optional[UniformQuantizer] = None,
    cases: Optional[Sequence[RuleCase]] = None,
    classify_fn: ClassifyFn = is_bound_widening,
    apply_scalar: ScalarApply = apply_rule,
    apply_vec: VecApply = apply_rule_vec,
    apply_batched: BatchedApply = apply_rule_batched,
) -> ProverReport:
    """Prove (or refute) the bound-widening claims on an abstract corpus.

    ``mode`` is ``"fast"`` (the CI gate: grid corpus + a small random
    corpus) or ``"full"`` (a larger random corpus and more random
    operation variants per case).  The ``classify_fn`` / ``apply_scalar``
    / ``apply_vec`` / ``apply_batched`` hooks exist so tests can seed a
    deliberately broken rule and assert the prover reports it with a
    minimal counterexample.
    """
    if mode not in ("fast", "full"):
        raise ValueError(f"unknown prover mode {mode!r}")
    rng = np.random.default_rng(seed)
    quantizer = quantizer if quantizer is not None else UniformQuantizer(2, "rgb")
    cases = tuple(cases) if cases is not None else default_rule_cases()
    random_state_count = 40 if mode == "fast" else 200
    random_op_count = 2 if mode == "fast" else 6
    batched_row_cap = 48 if mode == "fast" else 10_000

    corpus = grid_states() + random_states(rng, random_state_count)
    prover = ProverReport()
    subjects = 0

    for case in cases:
        operations = list(case.operations)
        for _ in range(random_op_count):
            extra = case.random_operation(rng)
            if extra is not None:
                operations.append(extra)
        verdict = _prove_case(
            case,
            operations,
            corpus,
            quantizer,
            rng,
            classify_fn,
            apply_scalar,
            apply_vec,
            apply_batched,
            batched_row_cap,
            prover.report,
        )
        prover.verdicts.append(verdict)
        subjects += (
            verdict.states_checked
            + verdict.parity_states_checked
            + verdict.batched_states_checked
        )
    prover.report.subjects_examined = subjects
    return prover


def _prove_case(
    case: RuleCase,
    operations: Sequence[Operation],
    corpus: Sequence[RuleState],
    quantizer: UniformQuantizer,
    rng: np.random.Generator,
    classify_fn: ClassifyFn,
    apply_scalar: ScalarApply,
    apply_vec: VecApply,
    apply_batched: BatchedApply,
    batched_row_cap: int,
    report: AnalysisReport,
) -> RuleVerdict:
    bin_count = quantizer.bin_count
    classified = all(classify_fn(op) for op in operations)
    monotone: Optional[bool] = True if classified else None
    parity_ok = True
    batched_ok = True
    states_checked = 0
    parity_checked = 0
    batched_checked = 0
    # First counterexample of each kind, reported independently so an
    # early parity divergence cannot mask a monotonicity refutation.
    mono_counterexample: Optional[Dict[str, Any]] = None
    parity_counterexample: Optional[Dict[str, Any]] = None
    batched_counterexample: Optional[Dict[str, Any]] = None
    adapted_corpus = [
        adapted
        for state in corpus
        if (adapted := _adapt_state(state, case)) is not None
    ]

    for op in operations:
        op_classified = classify_fn(op)
        bins = _bins_of_interest(op, quantizer)
        target = _make_target(rng, bin_count) if case.needs_target else None

        for state in corpus:
            adapted = _adapt_state(state, case)
            if adapted is None:
                continue

            # ---- monotonicity on the claimed-widening rules ----------
            if op_classified:
                for bin_index in bins:
                    ctx = _scalar_ctx(quantizer, bin_index, target)
                    try:
                        post = apply_scalar(adapted, op, ctx)
                    except RuleError:
                        continue
                    states_checked += 1
                    if not _interval_contains(adapted, post):
                        monotone = False
                        if mono_counterexample is None:
                            mono_counterexample = _report_monotonicity_violation(
                                case, op, adapted, post, bin_index,
                                quantizer, target, apply_scalar, report,
                            )

            # ---- scalar/vec parity over heterogeneous vectors --------
            divergence = _check_parity(
                adapted, op, quantizer, rng, target, apply_scalar, apply_vec
            )
            parity_checked += 1
            if divergence is not None:
                parity_ok = False
                if parity_counterexample is None:
                    parity_counterexample = divergence
                    report.add(
                        Finding(
                            code="RS002",
                            severity=Severity.ERROR,
                            location=case.name,
                            message=(
                                f"scalar and vectorized kernels diverge for "
                                f"{op!r}: {divergence['reason']}"
                            ),
                            fix_hint=(
                                "make repro.core.rules_vec mirror the scalar "
                                "branch exactly (same clamps, same errors)"
                            ),
                            details=divergence,
                        )
                    )

        # ---- scalar/columnar parity over one heterogeneous batch -----
        batch_states = adapted_corpus[:batched_row_cap]
        batched_checked += len(batch_states)
        batched_divergence = _check_batched_parity(
            batch_states, op, quantizer, rng, target, apply_scalar, apply_batched
        )
        if batched_divergence is not None:
            batched_ok = False
            if batched_counterexample is None:
                batched_counterexample = batched_divergence
                report.add(
                    Finding(
                        code="RS003",
                        severity=Severity.ERROR,
                        location=case.name,
                        message=(
                            f"scalar and columnar kernels diverge for "
                            f"{op!r}: {batched_divergence['reason']}"
                        ),
                        fix_hint=(
                            "make the repro.core.optable batched kernels "
                            "mirror the scalar branch exactly (same clamps, "
                            "same errors, same failing rows)"
                        ),
                        details=batched_divergence,
                    )
                )

    return RuleVerdict(
        case=case.name,
        operation=repr(operations[0]),
        classified_widening=classified,
        monotone=monotone if classified else None,
        parity_ok=parity_ok,
        states_checked=states_checked,
        parity_states_checked=parity_checked,
        batched_parity_ok=batched_ok,
        batched_states_checked=batched_checked,
        counterexample=(
            mono_counterexample
            if mono_counterexample is not None
            else (
                parity_counterexample
                if parity_counterexample is not None
                else batched_counterexample
            )
        ),
    )


def _bins_of_interest(
    op: Operation, quantizer: UniformQuantizer
) -> Tuple[int, ...]:
    """The bins whose rule branches differ for ``op`` (plus a neutral one)."""
    bins = {0, quantizer.bin_count - 1, quantizer.bin_of((0, 0, 0))}
    if isinstance(op, Modify):
        bins.add(quantizer.bin_of(op.rgb_old))
        bins.add(quantizer.bin_of(op.rgb_new))
    return tuple(sorted(bins))


def _scalar_ctx(
    quantizer: UniformQuantizer,
    bin_index: int,
    target: Optional[_TargetFixture],
) -> RuleContext:
    return RuleContext(
        quantizer=quantizer,
        bin_index=bin_index,
        fill_color=(0, 0, 0),
        resolve_target=target.scalar_resolver() if target is not None else None,
    )


def _report_monotonicity_violation(
    case: RuleCase,
    op: Operation,
    state: RuleState,
    post: RuleState,
    bin_index: int,
    quantizer: UniformQuantizer,
    target: Optional[_TargetFixture],
    apply_scalar: ScalarApply,
    report: AnalysisReport,
) -> Dict[str, Any]:
    """Shrink the failing state and file the RS001 finding."""
    ctx = _scalar_ctx(quantizer, bin_index, target)

    def still_fails(candidate: RuleState) -> bool:
        result = apply_scalar(candidate, op, ctx)
        return not _interval_contains(candidate, result)

    minimal = minimize_state(state, still_fails)
    minimal_post = apply_scalar(minimal, op, ctx)
    details = {
        "case": case.name,
        "operation": repr(op),
        "bin_index": bin_index,
        "state": _state_payload(minimal),
        "post_state": _state_payload(minimal_post),
        "pre_interval": [minimal.fraction_lo, minimal.fraction_hi],
        "post_interval": [minimal_post.fraction_lo, minimal_post.fraction_hi],
    }
    report.add(
        Finding(
            code="RS001",
            severity=Severity.ERROR,
            location=case.name,
            message=(
                f"rule classified bound-widening is not monotone: {op!r} "
                f"shrank [{minimal.fraction_lo:.4f}, {minimal.fraction_hi:.4f}] "
                f"to [{minimal_post.fraction_lo:.4f}, "
                f"{minimal_post.fraction_hi:.4f}] on bin {bin_index}"
            ),
            fix_hint=(
                "either fix the rule in repro.core.rules or move the "
                "operation to the unclassified bucket in "
                "repro.core.classify.is_bound_widening"
            ),
            details=details,
        )
    )
    return details


def _check_parity(
    state: RuleState,
    op: Operation,
    quantizer: UniformQuantizer,
    rng: np.random.Generator,
    target: Optional[_TargetFixture],
    apply_scalar: ScalarApply,
    apply_vec: VecApply,
) -> Optional[Dict[str, Any]]:
    """One all-bins state through both kernels; ``None`` when identical."""
    bin_count = quantizer.bin_count
    total = state.total
    # Heterogeneous per-bin intervals seeded from the scalar state.
    lo = rng.integers(0, total + 1, bin_count).astype(np.int64)
    hi = (lo + rng.integers(0, total + 1, bin_count)).clip(max=total).astype(np.int64)
    lo[0], hi[0] = state.lo, state.hi

    vec_ctx = VecRuleContext(
        quantizer=quantizer,
        fill_color=(0, 0, 0),
        resolve_target=target.vec_resolver() if target is not None else None,
    )
    vec_error: Optional[str] = None
    vec_result: Optional[VecRuleState] = None
    try:
        vec_result = apply_vec(_vec_state_from(lo, hi, state), op, vec_ctx)
    except RuleError as exc:
        vec_error = type(exc).__name__

    scalar_results: List[Optional[RuleState]] = []
    scalar_error: Optional[str] = None
    for bin_index in range(bin_count):
        ctx = _scalar_ctx(quantizer, bin_index, target)
        scalar_state = RuleState(
            lo=int(lo[bin_index]),
            hi=int(hi[bin_index]),
            height=state.height,
            width=state.width,
            dr=state.dr,
        )
        try:
            scalar_results.append(apply_scalar(scalar_state, op, ctx))
        except RuleError as exc:
            scalar_error = type(exc).__name__
            scalar_results.append(None)

    def payload(reason: str, bin_index: Optional[int] = None) -> Dict[str, Any]:
        return {
            "reason": reason,
            "operation": repr(op),
            "bin_index": bin_index,
            "state": _state_payload(state),
            "lo_vector": [int(v) for v in lo],
            "hi_vector": [int(v) for v in hi],
        }

    if (vec_error is None) != (scalar_error is None):
        return payload(
            f"error mismatch: vec={vec_error or 'ok'} scalar={scalar_error or 'ok'}"
        )
    if vec_error is not None:
        return None  # both raised: identical refusal
    assert vec_result is not None
    for bin_index, scalar_post in enumerate(scalar_results):
        if scalar_post is None:
            return payload("scalar raised on one bin only", bin_index)
        if (
            int(vec_result.lo[bin_index]) != scalar_post.lo
            or int(vec_result.hi[bin_index]) != scalar_post.hi
            or vec_result.height != scalar_post.height
            or vec_result.width != scalar_post.width
            or vec_result.dr != scalar_post.dr
        ):
            return payload(
                f"bin {bin_index}: vec [{int(vec_result.lo[bin_index])}, "
                f"{int(vec_result.hi[bin_index])}] "
                f"({vec_result.height}x{vec_result.width}) != scalar "
                f"[{scalar_post.lo}, {scalar_post.hi}] "
                f"({scalar_post.height}x{scalar_post.width})",
                bin_index,
            )
    return None


def _batched_row_divergence(
    states: Sequence[RuleState],
    op: Operation,
    quantizer: UniformQuantizer,
    rng: np.random.Generator,
    target: Optional[_TargetFixture],
    apply_scalar: ScalarApply,
    apply_batched: BatchedApply,
) -> Optional[Dict[str, Any]]:
    """All ``states`` as rows of ONE batch vs the per-bin scalar oracle.

    Returns the first per-row divergence (row index, reason, state), or
    ``None`` when every row — results and failures alike — matches.
    """
    if not states:
        return None
    bin_count = quantizer.bin_count
    stacked = []
    vectors: List[Tuple[np.ndarray, np.ndarray]] = []
    for state in states:
        total = state.total
        lo = rng.integers(0, total + 1, bin_count).astype(np.int64)
        hi = (
            (lo + rng.integers(0, total + 1, bin_count))
            .clip(max=total)
            .astype(np.int64)
        )
        lo[0], hi[0] = state.lo, state.hi
        stacked.append((lo, hi, state.height, state.width, state.dr))
        vectors.append((lo, hi))
    batch = BatchRuleState.stack(stacked)
    vec_ctx = VecRuleContext(
        quantizer=quantizer,
        fill_color=(0, 0, 0),
        resolve_target=target.vec_resolver() if target is not None else None,
    )
    rows = np.arange(len(states), dtype=np.int64)
    errors = apply_batched(batch, rows, op, vec_ctx)

    for row, state in enumerate(states):
        lo, hi = vectors[row]

        def payload(reason: str, bin_index: Optional[int] = None) -> Dict[str, Any]:
            return {
                "reason": f"row {row}: {reason}",
                "operation": repr(op),
                "row": row,
                "bin_index": bin_index,
                "state": _state_payload(state),
                "lo_vector": [int(v) for v in lo],
                "hi_vector": [int(v) for v in hi],
            }

        scalar_error: Optional[str] = None
        scalar_results: List[Optional[RuleState]] = []
        for bin_index in range(bin_count):
            ctx = _scalar_ctx(quantizer, bin_index, target)
            scalar_state = RuleState(
                lo=int(lo[bin_index]),
                hi=int(hi[bin_index]),
                height=state.height,
                width=state.width,
                dr=state.dr,
            )
            try:
                scalar_results.append(apply_scalar(scalar_state, op, ctx))
            except RuleError as exc:
                scalar_error = type(exc).__name__
                scalar_results.append(None)
        batched_error = errors.get(row)
        if (batched_error is None) != (scalar_error is None):
            batched_name = type(batched_error).__name__ if batched_error else "ok"
            return payload(
                f"error mismatch: batched={batched_name} "
                f"scalar={scalar_error or 'ok'}"
            )
        if batched_error is not None:
            continue  # both refused this row
        b_lo, b_hi, b_h, b_w, b_dr = batch.row_state(row)
        for bin_index, scalar_post in enumerate(scalar_results):
            if scalar_post is None:
                return payload("scalar raised on one bin only", bin_index)
            # The batch layout normalizes empty DRs to the zero row, so
            # empty-vs-empty counts as identical.
            dr_same = b_dr == scalar_post.dr or (
                b_dr.is_empty and scalar_post.dr.is_empty
            )
            if (
                int(b_lo[bin_index]) != scalar_post.lo
                or int(b_hi[bin_index]) != scalar_post.hi
                or b_h != scalar_post.height
                or b_w != scalar_post.width
                or not dr_same
            ):
                return payload(
                    f"bin {bin_index}: batched [{int(b_lo[bin_index])}, "
                    f"{int(b_hi[bin_index])}] ({b_h}x{b_w}) != scalar "
                    f"[{scalar_post.lo}, {scalar_post.hi}] "
                    f"({scalar_post.height}x{scalar_post.width})",
                    bin_index,
                )
    return None


def _check_batched_parity(
    states: Sequence[RuleState],
    op: Operation,
    quantizer: UniformQuantizer,
    rng: np.random.Generator,
    target: Optional[_TargetFixture],
    apply_scalar: ScalarApply,
    apply_batched: BatchedApply,
) -> Optional[Dict[str, Any]]:
    """RS003: the columnar kernel vs the scalar oracle, with shrinking.

    The whole adapted corpus rides in one heterogeneous batch — rows of
    different dimensions, counts, and Defined Regions advanced by a
    single masked kernel call, exactly how the catalog sweep uses it.
    On divergence the offending row's state is greedily minimized
    (re-checked as a single-row batch with a deterministic vector seed).
    """
    divergence = _batched_row_divergence(
        states, op, quantizer, rng, target, apply_scalar, apply_batched
    )
    if divergence is None:
        return None
    failing = states[int(divergence["row"])]

    def still_fails(candidate: RuleState) -> bool:
        return (
            _batched_row_divergence(
                [candidate],
                op,
                quantizer,
                np.random.default_rng(0),
                target,
                apply_scalar,
                apply_batched,
            )
            is not None
        )

    try:
        if still_fails(failing):
            minimal = minimize_state(failing, still_fails)
            shrunk = _batched_row_divergence(
                [minimal],
                op,
                quantizer,
                np.random.default_rng(0),
                target,
                apply_scalar,
                apply_batched,
            )
            if shrunk is not None:
                shrunk["shrunk_from"] = _state_payload(failing)
                return shrunk
    except RuleError:  # pragma: no cover — broken hooks may raise anywhere
        pass
    return divergence
