"""Edit sequences: the storage format for derived images.

Section 2: "if an image *e* is created by editing an original base image
object *b*, the edited image is stored as a reference to *b* along with
the sequence of operations used to change *b* into *e*."

An :class:`EditSequence` is exactly that pair, plus a line-oriented text
serialization used by the storage manager both for persistence and for
byte-level storage accounting (the space-saving argument of §2).

Serialization format (one operation per line, space-separated fields)::

    base <base_id>
    define x1 y1 x2 y2
    combine c1 c2 c3 c4 c5 c6 c7 c8 c9
    modify r g b -> r g b
    mutate m11 m12 m13 m21 m22 m23 m31 m32 m33
    merge <target_id>|NULL x y
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.editing.operations import (
    Combine,
    Define,
    Merge,
    Modify,
    Mutate,
    Operation,
    ensure_operation,
)
from repro.errors import SequenceError
from repro.images.geometry import AffineMatrix, Rect


@dataclass(frozen=True)
class EditSequence:
    """Immutable ``(base image reference, operations)`` pair."""

    base_id: str
    operations: Tuple[Operation, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.base_id:
            raise SequenceError("edit sequences must reference a base image")
        ops = tuple(ensure_operation(op) for op in self.operations)
        object.__setattr__(self, "operations", ops)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def extended(self, *operations: Operation) -> "EditSequence":
        """A new sequence with ``operations`` appended."""
        return EditSequence(self.base_id, self.operations + tuple(operations))

    def merge_targets(self) -> Tuple[str, ...]:
        """Ids of all non-NULL Merge targets, in order of appearance."""
        return tuple(
            op.target_id
            for op in self.operations
            if isinstance(op, Merge) and op.target_id is not None
        )

    def referenced_ids(self) -> Tuple[str, ...]:
        """Every stored-image id this sequence depends on (base + targets)."""
        return (self.base_id,) + self.merge_targets()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def serialize(self) -> str:
        """Render the line-oriented text format."""
        lines = [f"base {self.base_id}"]
        for op in self.operations:
            lines.append(_serialize_operation(op))
        return "\n".join(lines) + "\n"

    @staticmethod
    def parse(text: str) -> "EditSequence":
        """Parse the text format produced by :meth:`serialize`."""
        base_id: Optional[str] = None
        operations: List[Operation] = []
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                keyword, _, rest = line.partition(" ")
                if keyword == "base":
                    if base_id is not None:
                        raise SequenceError("duplicate base line")
                    base_id = rest.strip()
                    if not base_id:
                        raise SequenceError("empty base id")
                else:
                    operations.append(_parse_operation(keyword, rest))
            except SequenceError as exc:
                raise SequenceError(f"line {line_number}: {exc}") from exc
        if base_id is None:
            raise SequenceError("missing 'base <id>' line")
        return EditSequence(base_id, tuple(operations))

    def storage_size_bytes(self) -> int:
        """Bytes consumed by the serialized form.

        This is the number the storage-savings experiment (A3) compares
        against :func:`repro.images.binary_size_bytes`.
        """
        return len(self.serialize().encode("utf-8"))

    def __repr__(self) -> str:
        return f"EditSequence(base={self.base_id!r}, ops={len(self.operations)})"


# ----------------------------------------------------------------------
# Per-operation (de)serialization helpers
# ----------------------------------------------------------------------
def _serialize_operation(op: Operation) -> str:
    if isinstance(op, Define):
        r = op.rect
        return f"define {r.x1} {r.y1} {r.x2} {r.y2}"
    if isinstance(op, Combine):
        return "combine " + " ".join(repr(w) for w in op.weights)
    if isinstance(op, Modify):
        old = " ".join(str(c) for c in op.rgb_old)
        new = " ".join(str(c) for c in op.rgb_new)
        return f"modify {old} -> {new}"
    if isinstance(op, Mutate):
        return "mutate " + " ".join(repr(v) for v in op.matrix.as_tuple())
    if isinstance(op, Merge):
        target = "NULL" if op.target_id is None else op.target_id
        return f"merge {target} {op.x} {op.y}"
    raise SequenceError(f"unknown operation {op!r}")


def _ints(rest: str, count: int, what: str) -> Sequence[int]:
    tokens = rest.split()
    if len(tokens) != count:
        raise SequenceError(f"{what} expects {count} integers, got {len(tokens)}")
    try:
        return [int(t) for t in tokens]
    except ValueError as exc:
        raise SequenceError(f"{what}: non-integer token") from exc


def _floats(rest: str, count: int, what: str) -> Sequence[float]:
    tokens = rest.split()
    if len(tokens) != count:
        raise SequenceError(f"{what} expects {count} numbers, got {len(tokens)}")
    try:
        return [float(t) for t in tokens]
    except ValueError as exc:
        raise SequenceError(f"{what}: non-numeric token") from exc


def _parse_operation(keyword: str, rest: str) -> Operation:
    if keyword == "define":
        x1, y1, x2, y2 = _ints(rest, 4, "define")
        return Define(Rect(x1, y1, x2, y2))
    if keyword == "combine":
        return Combine(tuple(_floats(rest, 9, "combine")))
    if keyword == "modify":
        old_text, arrow, new_text = rest.partition("->")
        if not arrow:
            raise SequenceError("modify expects 'r g b -> r g b'")
        old = _ints(old_text, 3, "modify old color")
        new = _ints(new_text, 3, "modify new color")
        return Modify(tuple(old), tuple(new))
    if keyword == "mutate":
        values = _floats(rest, 9, "mutate")
        return Mutate(AffineMatrix(*values))
    if keyword == "merge":
        tokens = rest.split()
        if len(tokens) != 3:
            raise SequenceError("merge expects '<target>|NULL x y'")
        target = None if tokens[0] == "NULL" else tokens[0]
        try:
            x, y = int(tokens[1]), int(tokens[2])
        except ValueError as exc:
            raise SequenceError("merge coordinates must be integers") from exc
        return Merge(target, x, y)
    raise SequenceError(f"unknown operation keyword {keyword!r}")
