"""Augmentation recipes: the edited variants inserted per base image.

§2: "when an image x is inserted into such a CBIR system, several edited
versions of image x should be added to the underlying database as well."
These recipes are the library's standard set of "several edited versions":
each returns the operations for one realistic variant of a base image of
known dimensions.  Recipes are grouped by whether every operation is
bound-widening, because the evaluation controls the mix (Table 2's
BW-only vs. non-BW counts).

All recipes take the base dimensions plus an RNG so parameters vary per
image while remaining reproducible from a seed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.editing.operations import (
    Combine,
    Define,
    Merge,
    Modify,
    Mutate,
    Operation,
)
from repro.errors import WorkloadError
from repro.images.geometry import AffineMatrix, Rect
from repro.images.raster import ColorTuple

#: A recipe maps (rng, height, width, palette) to an operation list.
Recipe = Callable[[np.random.Generator, int, int, Sequence[ColorTuple]], List[Operation]]


def _random_subrect(
    rng: np.random.Generator, height: int, width: int, min_side: int = 2
) -> Rect:
    """A uniformly random rectangle of at least ``min_side`` per side."""
    if height < min_side or width < min_side:
        raise WorkloadError(f"image {height}x{width} too small for sub-rectangles")
    x1 = int(rng.integers(0, height - min_side + 1))
    y1 = int(rng.integers(0, width - min_side + 1))
    x2 = int(rng.integers(x1 + min_side, height + 1))
    y2 = int(rng.integers(y1 + min_side, width + 1))
    return Rect(x1, y1, x2, y2)


def _pick_color(
    rng: np.random.Generator, palette: Sequence[ColorTuple]
) -> ColorTuple:
    if not palette:
        raise WorkloadError("recipes require a non-empty palette")
    return palette[int(rng.integers(len(palette)))]


# ----------------------------------------------------------------------
# Bound-widening recipes (Main-component candidates)
# ----------------------------------------------------------------------
def recipe_regional_blur(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """Blur a random region — simulates defocus/weathering."""
    return [Define(_random_subrect(rng, height, width)), Combine.box()]


def recipe_recolor(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """Swap one palette color for another inside a region."""
    old = _pick_color(rng, palette)
    new = _pick_color(rng, palette)
    return [Define(_random_subrect(rng, height, width)), Modify(old, new)]


def recipe_multi_recolor(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """Several Modify steps over the full image — a palette variation."""
    ops: List[Operation] = [Define(Rect(0, 0, height, width))]
    for _ in range(3):
        ops.append(Modify(_pick_color(rng, palette), _pick_color(rng, palette)))
    return ops


def recipe_crop(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """Crop to a random region (Merge with NULL target)."""
    min_side = max(2, min(height, width) // 3)
    return [Define(_random_subrect(rng, height, width, min_side)), Merge(None)]


def recipe_shift(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """Translate a region within the canvas (rigid-body Mutate)."""
    region = _random_subrect(rng, height, width)
    dx = int(rng.integers(-region.x1, height - region.x2 + 1))
    dy = int(rng.integers(-region.y1, width - region.y2 + 1))
    return [Define(region), Mutate.translation(dx, dy)]


def recipe_upscale(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """Integer whole-image upscale (thumbnail-to-full simulation)."""
    factor = int(rng.integers(2, 4))
    return [Define(Rect(0, 0, height, width)), Mutate.scale(factor)]


def recipe_blur_then_recolor(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """A longer bound-widening chain: blur, then recolor, then shift."""
    ops = recipe_regional_blur(rng, height, width, palette)
    ops += recipe_recolor(rng, height, width, palette)
    ops += recipe_shift(rng, height, width, palette)
    return ops


# ----------------------------------------------------------------------
# Non-bound-widening recipes (Unclassified-component candidates)
# ----------------------------------------------------------------------
def recipe_paste_onto(
    target_id: str,
) -> Recipe:
    """Copy a region onto another database image (Merge with target).

    Returns a recipe closed over the target id, since targets are ids of
    other stored images rather than raster parameters.
    """

    def build(
        rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
    ) -> List[Operation]:
        region = _random_subrect(rng, height, width)
        x = int(rng.integers(-region.height // 2, height))
        y = int(rng.integers(-region.width // 2, width))
        return [Define(region), Merge(target_id, x, y)]

    return build


def recipe_shear(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """A shear-and-stretch warp of a region — a general affine.

    The slight stretch keeps the determinant away from 1 so the static
    classifier (which treats any ``|det| = 1`` matrix as rigid-body)
    files the variant as non-bound-widening.
    """
    region = _random_subrect(rng, height, width)
    shear = float(rng.uniform(0.2, 0.6))
    stretch = float(rng.uniform(1.1, 1.4))
    matrix = AffineMatrix(stretch, shear, 0.0, 0.0, 1.0, 0.0)
    return [Define(region), Mutate(matrix)]


def recipe_nonuniform_stretch(
    rng: np.random.Generator, height: int, width: int, palette: Sequence[ColorTuple]
) -> List[Operation]:
    """A fractional in-place stretch of a region — general affine."""
    region = _random_subrect(rng, height, width)
    factor = float(rng.uniform(1.1, 1.6))
    matrix = AffineMatrix(factor, 0.0, 0.0, 0.0, 1.0, 0.0)
    return [Define(region), Mutate(matrix)]


#: The standard bound-widening recipe pool (parameterless recipes).
BOUND_WIDENING_RECIPES: Tuple[Recipe, ...] = (
    recipe_regional_blur,
    recipe_recolor,
    recipe_multi_recolor,
    recipe_crop,
    recipe_shift,
    recipe_upscale,
    recipe_blur_then_recolor,
)

#: Non-bound-widening recipes that need no Merge target.
NON_WIDENING_RECIPES: Tuple[Recipe, ...] = (
    recipe_shear,
    recipe_nonuniform_stretch,
)


def build_variant(
    rng: np.random.Generator,
    height: int,
    width: int,
    palette: Sequence[ColorTuple],
    bound_widening: bool,
    merge_target: Optional[str] = None,
) -> List[Operation]:
    """One random variant's operations, of the requested classification.

    When ``bound_widening`` is false and ``merge_target`` is provided, the
    pool also includes a Merge-onto-target recipe, matching the paper's
    mixture of unclassified causes.
    """
    if bound_widening:
        recipe = BOUND_WIDENING_RECIPES[int(rng.integers(len(BOUND_WIDENING_RECIPES)))]
        return recipe(rng, height, width, palette)
    pool: List[Recipe] = list(NON_WIDENING_RECIPES)
    if merge_target is not None:
        pool.append(recipe_paste_onto(merge_target))
    recipe = pool[int(rng.integers(len(pool)))]
    return recipe(rng, height, width, palette)
