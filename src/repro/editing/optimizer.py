"""Edit-sequence optimizer: shrink stored sequences, preserve semantics.

Edit sequences accumulate dead weight as editing sessions append
operations: consecutive ``Define``s where only the last matters, Modifys
whose colors are equal, identity Mutates, blurs on empty regions.
Since the sequence *is* the storage format (§2), normalizing it saves
bytes and — more importantly for query processing — rule applications:
BOUNDS walks every operation of every unpruned edited image.

Rewrites applied (each justified against the executor semantics in
:mod:`repro.editing.executor`):

1. **Define collapsing** — of consecutive Defines only the last is
   observable (a Define reads nothing and overwrites the whole DR).
2. **Trailing-Define removal** — a Define with no subsequent operation
   has no effect on the final raster.
3. **Identity-Modify removal** — ``Modify(c, c)`` never changes a pixel.
4. **Identity-Mutate removal** — the identity matrix moves nothing
   (executor: whole-image integer scale by 1 when the DR covers the
   image, otherwise a forward map to the same positions after the DR is
   vacated and rewritten — both leave every pixel in place; the DR
   bounding box is unchanged too).
5. **Dead-region elimination** — Combine/Modify/Mutate after a Define
   that is *statically known empty* (empty before clipping, i.e.
   zero-area rectangle can never intersect any canvas) are no-ops.

Rewrites must also never *weaken* BWM classification: every rewrite only
removes operations, and removing an operation cannot make a sequence
non-bound-widening, so an optimized Main-component sequence stays in
Main.  The property suite checks both invariants (identical
instantiation; classification monotonicity) on random sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.editing.operations import (
    Combine,
    Define,
    Merge,
    Modify,
    Mutate,
    Operation,
)
from repro.editing.sequence import EditSequence


@dataclass(frozen=True)
class OptimizationReport:
    """What the optimizer did to one sequence."""

    original_ops: int
    optimized_ops: int
    original_bytes: int
    optimized_bytes: int

    @property
    def ops_removed(self) -> int:
        """Operations eliminated."""
        return self.original_ops - self.optimized_ops

    @property
    def bytes_saved(self) -> int:
        """Serialized bytes saved."""
        return self.original_bytes - self.optimized_bytes


def _is_identity_mutate(op: Operation) -> bool:
    if not isinstance(op, Mutate):
        return False
    matrix = op.matrix
    return (
        matrix.m11 == 1.0
        and matrix.m22 == 1.0
        and matrix.m12 == 0.0
        and matrix.m21 == 0.0
        and matrix.m13 == 0.0
        and matrix.m23 == 0.0
    )


def _is_identity_modify(op: Operation) -> bool:
    return isinstance(op, Modify) and op.rgb_old == op.rgb_new


def optimize_operations(operations: Tuple[Operation, ...]) -> Tuple[Operation, ...]:
    """Apply all rewrites to an operation tuple until a fixed point."""
    current = list(operations)
    while True:
        rewritten = _one_pass(current)
        if rewritten == current:
            return tuple(rewritten)
        current = rewritten


def _one_pass(operations: List[Operation]) -> List[Operation]:
    # Rewrites 3 and 4: pure no-op operations.
    kept = [
        op
        for op in operations
        if not _is_identity_modify(op) and not _is_identity_mutate(op)
    ]

    # Rewrite 1: of consecutive Defines, keep only the last.
    collapsed: List[Operation] = []
    for op in kept:
        if isinstance(op, Define) and collapsed and isinstance(collapsed[-1], Define):
            collapsed[-1] = op
        else:
            collapsed.append(op)

    # Rewrite 5: operations governed by a statically-empty Define are
    # no-ops (Merge is NOT removed — the executor rejects it, and the
    # optimizer must not mask errors).  Note Define itself validates
    # non-emptiness, so this rewrite currently never fires for sequences
    # built through the public constructors; it guards hand-built tuples.
    filtered: List[Operation] = []
    dead_region = False
    for op in collapsed:
        if isinstance(op, Define):
            dead_region = op.rect.is_empty
            filtered.append(op)
        elif dead_region and isinstance(op, (Combine, Modify, Mutate)):
            continue
        else:
            filtered.append(op)

    # Rewrite 2: a trailing Define is unobservable.
    while filtered and isinstance(filtered[-1], Define):
        filtered.pop()
    return filtered


def optimize_sequence(sequence: EditSequence) -> Tuple[EditSequence, OptimizationReport]:
    """Optimize one sequence; returns the rewritten sequence and a report."""
    optimized_ops = optimize_operations(sequence.operations)
    optimized = EditSequence(sequence.base_id, optimized_ops)
    report = OptimizationReport(
        original_ops=len(sequence),
        optimized_ops=len(optimized),
        original_bytes=sequence.storage_size_bytes(),
        optimized_bytes=optimized.storage_size_bytes(),
    )
    return optimized, report


def optimize_database(database: "MultimediaDatabase") -> OptimizationReport:  # noqa: F821
    """Optimize every stored edit sequence in place.

    Sequences are re-filed through the normal delete/insert path so the
    BWM structure stays consistent; ids are preserved.  Returns the
    aggregate report.
    """
    total_original_ops = 0
    total_optimized_ops = 0
    total_original_bytes = 0
    total_optimized_bytes = 0
    for edited_id in list(database.catalog.edited_ids()):
        sequence = database.catalog.sequence_of(edited_id)
        optimized, report = optimize_sequence(sequence)
        total_original_ops += report.original_ops
        total_optimized_ops += report.optimized_ops
        total_original_bytes += report.original_bytes
        total_optimized_bytes += report.optimized_bytes
        if optimized != sequence:
            database.delete_edited(edited_id)
            database.insert_edited(optimized, image_id=edited_id)
    return OptimizationReport(
        original_ops=total_original_ops,
        optimized_ops=total_optimized_ops,
        original_bytes=total_original_bytes,
        optimized_bytes=total_optimized_bytes,
    )
