"""Unconstrained random edit sequences for property-based testing.

Unlike the curated recipes in :mod:`repro.editing.recipes`, these
generators explore the operation space adversarially: arbitrary regions
(including ones extending past the image), arbitrary kernel weights,
colors present or absent from the image, chained crops and scales.  The
rule-soundness property suite instantiates each generated sequence and
checks the BOUNDS interval contains the true histogram fraction.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.editing.executor import merge_canvas_geometry
from repro.editing.operations import (
    Combine,
    Define,
    Merge,
    Modify,
    Mutate,
    Operation,
)
from repro.editing.sequence import EditSequence
from repro.images.geometry import AffineMatrix, Rect, transform_rect_bbox
from repro.images.raster import ColorTuple


def random_define(
    rng: np.random.Generator, height: int, width: int, allow_overhang: bool = True
) -> Define:
    """A random Define, optionally allowed to extend past the image."""
    slack = max(height, width) // 2 if allow_overhang else 0
    x1 = int(rng.integers(-slack, height))
    y1 = int(rng.integers(-slack, width))
    x2 = int(rng.integers(x1 + 1, height + slack + 1))
    y2 = int(rng.integers(y1 + 1, width + slack + 1))
    return Define(Rect(x1, y1, x2, y2))


def random_combine(rng: np.random.Generator) -> Combine:
    """A random non-negative 3x3 kernel with positive sum."""
    weights = rng.uniform(0.0, 1.0, size=9)
    weights[4] = max(weights[4], 0.05)  # guarantee a positive sum
    return Combine(tuple(float(w) for w in weights))


def random_modify(
    rng: np.random.Generator, colors_in_image: Sequence[ColorTuple]
) -> Modify:
    """A Modify whose old color is sometimes present, sometimes not."""
    if colors_in_image and rng.random() < 0.7:
        old = colors_in_image[int(rng.integers(len(colors_in_image)))]
    else:
        old = tuple(int(v) for v in rng.integers(0, 256, size=3))
    new = tuple(int(v) for v in rng.integers(0, 256, size=3))
    return Modify(old, new)


def random_mutate(rng: np.random.Generator, height: int, width: int) -> Mutate:
    """One of: translation, quarter-turn rotation, integer scale, general warp."""
    choice = int(rng.integers(4))
    if choice == 0:
        dx = int(rng.integers(-height, height + 1))
        dy = int(rng.integers(-width, width + 1))
        return Mutate.translation(dx, dy)
    if choice == 1:
        return Mutate.rotation_90(
            int(rng.integers(1, 4)),
            cx=float(rng.integers(0, height)),
            cy=float(rng.integers(0, width)),
        )
    if choice == 2:
        return Mutate.scale(int(rng.integers(1, 3)))
    shear = float(rng.uniform(-0.5, 0.5))
    sx = float(rng.uniform(0.6, 1.6))
    sy = float(rng.uniform(0.6, 1.6))
    return Mutate(AffineMatrix(sx, shear, 0.0, 0.0, sy, 0.0))


def random_operation(
    rng: np.random.Generator,
    height: int,
    width: int,
    colors_in_image: Sequence[ColorTuple],
    merge_targets: Sequence[str] = (),
    allow_crop: bool = True,
) -> Operation:
    """One random operation of any kind permitted by the arguments."""
    kinds = ["define", "combine", "modify", "mutate"]
    if allow_crop:
        kinds.append("crop")
    if merge_targets:
        kinds.append("merge")
    kind = kinds[int(rng.integers(len(kinds)))]
    if kind == "define":
        return random_define(rng, height, width)
    if kind == "combine":
        return random_combine(rng)
    if kind == "modify":
        return random_modify(rng, colors_in_image)
    if kind == "mutate":
        return random_mutate(rng, height, width)
    if kind == "crop":
        return Merge(None)
    target = merge_targets[int(rng.integers(len(merge_targets)))]
    x = int(rng.integers(-height // 2, height))
    y = int(rng.integers(-width // 2, width))
    return Merge(target, x, y)


def random_sequence(
    rng: np.random.Generator,
    base_id: str,
    height: int,
    width: int,
    colors_in_image: Sequence[ColorTuple],
    length: Optional[int] = None,
    merge_targets: Optional[Mapping[str, Tuple[int, int]]] = None,
    max_pixels: int = 1 << 16,
) -> EditSequence:
    """A random sequence that is always executable.

    Image dimensions and the Defined Region are tracked *exactly* through
    the sequence — the geometry of every operation is deterministic, the
    same fact the Table 1 rules exploit — so the generator never emits a
    Merge on an empty DR (the executor's only hard error) and can cap the
    result size via ``max_pixels``.

    ``merge_targets`` maps target ids to their ``(height, width)`` so the
    post-Merge canvas geometry stays exact.
    """
    targets = dict(merge_targets or {})
    op_count = length if length is not None else int(rng.integers(1, 8))
    ops: List[Operation] = []
    cur_h, cur_w = height, width
    dr = Rect(0, 0, cur_h, cur_w)

    for _ in range(op_count):
        op = random_operation(
            rng,
            cur_h,
            cur_w,
            colors_in_image,
            merge_targets=tuple(targets),
            allow_crop=not dr.is_empty,
        )
        if isinstance(op, Merge) and dr.is_empty:
            op = random_define(rng, cur_h, cur_w, allow_overhang=False)
        if isinstance(op, Mutate) and op.matrix.is_integer_scale():
            scale = int(round(op.matrix.m11)) * int(round(op.matrix.m22))
            if dr.contains(Rect(0, 0, cur_h, cur_w)) and cur_h * cur_w * scale > max_pixels:
                op = Mutate.scale(1)
        ops.append(op)

        # Mirror the executor's geometry step for step.
        if isinstance(op, Define):
            dr = op.rect.clip(cur_h, cur_w)
        elif isinstance(op, Mutate) and not dr.is_empty:
            bounds = Rect(0, 0, cur_h, cur_w)
            if op.is_whole_image_scale(dr, bounds) and op.matrix.is_integer_scale():
                cur_h *= int(round(op.matrix.m11))
                cur_w *= int(round(op.matrix.m22))
                dr = Rect(0, 0, cur_h, cur_w)
            else:
                dr = transform_rect_bbox(dr, op.matrix).clip(cur_h, cur_w)
        elif isinstance(op, Merge):
            if op.is_crop:
                cur_h, cur_w = dr.height, dr.width
            else:
                t_h, t_w = targets[op.target_id]
                cur_h, cur_w, _, _ = merge_canvas_geometry(
                    dr.height, dr.width, t_h, t_w, op.x, op.y
                )
            dr = Rect(0, 0, cur_h, cur_w)

    return EditSequence(base_id, tuple(ops))
