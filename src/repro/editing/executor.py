"""Executable semantics of the editing operations (instantiation).

"Such an image can be instantiated by accessing the referenced base image
and sequentially executing the associated editing operations" (§2).  This
module is that instantiation engine.  The Table 1 rules in
:mod:`repro.core.rules` are *sound abstractions of exactly these
semantics* — the property suite checks that the rule bounds always contain
the histogram of the image this executor produces — so every semantic
choice here is mirrored there:

* the Defined Region (DR) starts as the whole base image and is clipped
  to the current canvas after every ``Define``;
* ``Combine`` averages the 3x3 neighborhood of the *pre-operation* image
  with edge-clamped padding, writing only DR pixels;
* ``Mutate`` distinguishes whole-image integer scales (exact pixel
  replication), and otherwise forward-maps DR pixels (rounded), vacating
  the DR to the fill color before writing destinations, clipped to the
  canvas; afterwards the DR becomes the clipped bounding box of the
  transformed region;
* ``Merge`` with a NULL target crops the DR into a fresh image; with a
  target it pastes the DR into the (possibly expanded) target canvas at
  the given offset, new area taking the fill color.  After either form
  the DR resets to the whole result image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.editing.operations import (
    Combine,
    Define,
    Merge,
    Modify,
    Mutate,
    Operation,
)
from repro.editing.sequence import EditSequence
from repro.errors import ExecutionError
from repro.images.geometry import EMPTY_RECT, Rect, transform_rect_bbox
from repro.images.raster import ColorTuple, Image, validate_color

#: Resolves a Merge target id to its instantiated image.
TargetResolver = Callable[[str], Image]


@dataclass
class ExecutionState:
    """Current canvas and Defined Region while executing a sequence."""

    image: Image
    dr: Rect

    @staticmethod
    def initial(base: Image) -> "ExecutionState":
        """Start state: the base image with the DR covering all of it."""
        return ExecutionState(base.copy(), base.bounds)


class EditExecutor:
    """Instantiates edit sequences against base images.

    Parameters
    ----------
    resolve:
        Callback mapping a Merge target id to an :class:`Image`.  Only
        needed when sequences contain non-NULL Merges; omitted, such a
        sequence raises :class:`ExecutionError`.
    fill_color:
        Color written into vacated/uncovered pixels by Mutate and Merge.
        The bound rules receive the same color so its bin is accounted.
    """

    def __init__(
        self,
        resolve: Optional[TargetResolver] = None,
        fill_color: Sequence[int] = (0, 0, 0),
    ) -> None:
        self._resolve = resolve
        self.fill_color: ColorTuple = validate_color(fill_color)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def instantiate(self, base: Image, sequence: EditSequence) -> Image:
        """Execute every operation of ``sequence`` against ``base``."""
        state = ExecutionState.initial(base)
        for position, op in enumerate(sequence.operations):
            try:
                state = self.apply_operation(state, op)
            except ExecutionError as exc:
                raise ExecutionError(
                    f"operation {position} ({op!r}) of sequence on "
                    f"{sequence.base_id!r}: {exc}"
                ) from exc
        return state.image

    def apply_operation(self, state: ExecutionState, op: Operation) -> ExecutionState:
        """Apply one operation, returning the next state."""
        if isinstance(op, Define):
            return self._apply_define(state, op)
        if isinstance(op, Combine):
            return self._apply_combine(state, op)
        if isinstance(op, Modify):
            return self._apply_modify(state, op)
        if isinstance(op, Mutate):
            return self._apply_mutate(state, op)
        if isinstance(op, Merge):
            return self._apply_merge(state, op)
        raise ExecutionError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    # Per-operation semantics
    # ------------------------------------------------------------------
    def _apply_define(self, state: ExecutionState, op: Define) -> ExecutionState:
        dr = op.rect.clip(state.image.height, state.image.width)
        return ExecutionState(state.image, dr)

    def _apply_combine(self, state: ExecutionState, op: Combine) -> ExecutionState:
        if state.dr.is_empty:
            return state
        blurred = combine_region(state.image, state.dr, op.weights)
        return ExecutionState(blurred, state.dr)

    def _apply_modify(self, state: ExecutionState, op: Modify) -> ExecutionState:
        if state.dr.is_empty:
            return state
        image = state.image.copy()
        region = image.region(state.dr)
        mask = (region == np.array(op.rgb_old, dtype=np.uint8)).all(axis=2)
        region[mask] = np.array(op.rgb_new, dtype=np.uint8)
        return ExecutionState(image, state.dr)

    def _apply_mutate(self, state: ExecutionState, op: Mutate) -> ExecutionState:
        if state.dr.is_empty:
            return state
        bounds = state.image.bounds
        if op.is_whole_image_scale(state.dr, bounds) and op.matrix.is_integer_scale():
            return self._apply_integer_scale(state, op)
        return self._apply_pixel_move(state, op)

    def _apply_integer_scale(self, state: ExecutionState, op: Mutate) -> ExecutionState:
        sx = int(round(op.matrix.m11))
        sy = int(round(op.matrix.m22))
        scaled = np.repeat(np.repeat(state.image.pixels, sx, axis=0), sy, axis=1)
        image = Image(scaled, copy=False)
        return ExecutionState(image, image.bounds)

    def _apply_pixel_move(self, state: ExecutionState, op: Mutate) -> ExecutionState:
        source = state.image
        dr = state.dr
        matrix = op.matrix

        xs, ys = np.meshgrid(
            np.arange(dr.x1, dr.x2), np.arange(dr.y1, dr.y2), indexing="ij"
        )
        xs = xs.reshape(-1)
        ys = ys.reshape(-1)
        tx = np.floor(matrix.m11 * xs + matrix.m12 * ys + matrix.m13 + 0.5).astype(np.int64)
        ty = np.floor(matrix.m21 * xs + matrix.m22 * ys + matrix.m23 + 0.5).astype(np.int64)

        result = source.copy()
        # Vacate the source region first so a transform that writes back
        # over part of the DR keeps the moved content, not the fill.
        result.pixels[dr.x1:dr.x2, dr.y1:dr.y2] = np.array(
            self.fill_color, dtype=np.uint8
        )
        inside = (
            (tx >= 0) & (tx < source.height) & (ty >= 0) & (ty < source.width)
        )
        moved_colors = source.pixels[xs[inside], ys[inside]]
        result.pixels[tx[inside], ty[inside]] = moved_colors

        new_dr = transform_rect_bbox(dr, matrix).clip(source.height, source.width)
        return ExecutionState(result, new_dr)

    def _apply_merge(self, state: ExecutionState, op: Merge) -> ExecutionState:
        if state.dr.is_empty:
            raise ExecutionError("Merge requires a non-empty Defined Region")
        dr_content = state.image.crop(state.dr)
        if op.is_crop:
            return ExecutionState(dr_content, dr_content.bounds)

        if self._resolve is None:
            raise ExecutionError(
                f"Merge target {op.target_id!r} requires a target resolver"
            )
        target = self._resolve(op.target_id)
        canvas_h, canvas_w, ox, oy = merge_canvas_geometry(
            dr_content.height, dr_content.width, target.height, target.width, op.x, op.y
        )
        canvas = Image.filled(canvas_h, canvas_w, self.fill_color)
        canvas.paste(target, -ox, -oy)
        canvas.paste(dr_content, op.x - ox, op.y - oy)
        return ExecutionState(canvas, canvas.bounds)


def merge_canvas_geometry(
    dr_height: int,
    dr_width: int,
    target_height: int,
    target_width: int,
    x: int,
    y: int,
) -> Tuple[int, int, int, int]:
    """Result canvas size and origin shift for a non-NULL Merge.

    Implements Table 1's dimension formula: the canvas is the bounding box
    of the target placed at the origin and the DR placed at ``(x, y)``.
    Returns ``(height, width, origin_x, origin_y)`` where the origin is
    the canvas coordinate of the target's former ``(0, 0)`` negated (i.e.
    canvas position ``p`` holds original position ``p + origin``).

    Shared by the executor and the Merge rule so both agree on the
    resulting image size.
    """
    ox = min(x, 0)
    oy = min(y, 0)
    height = max(x + dr_height, target_height) - ox
    width = max(y + dr_width, target_width) - oy
    return (height, width, ox, oy)


def combine_region(
    image: Image,
    rect: Rect,
    weights: Sequence[float],
) -> Image:
    """Blur the pixels of ``rect`` with a 3x3 weighted average.

    Neighborhoods are taken from the *original* image (a Combine is not
    applied progressively) with edge-clamped padding; weights are
    normalized to sum to one; channel results round half-up.  Exposed as
    a function because the synthetic-image generators reuse it.
    """
    region = rect.clip(image.height, image.width)
    if region.is_empty:
        return image.copy()
    kernel = np.asarray(list(weights), dtype=np.float64).reshape(3, 3)
    total = kernel.sum()
    if total <= 0:
        raise ExecutionError("Combine weights must have positive sum")
    kernel = kernel / total

    padded = np.pad(
        image.pixels.astype(np.float64), ((1, 1), (1, 1), (0, 0)), mode="edge"
    )
    accumulated = np.zeros(
        (region.height, region.width, 3), dtype=np.float64
    )
    for dx in range(3):
        for dy in range(3):
            window = padded[
                region.x1 + dx:region.x2 + dx,
                region.y1 + dy:region.y2 + dy,
            ]
            accumulated += kernel[dx, dy] * window

    result = image.copy()
    result.pixels[region.x1:region.x2, region.y1:region.y2] = np.clip(
        np.floor(accumulated + 0.5), 0, 255
    ).astype(np.uint8)
    return result
