"""The five-operation image editing algebra of Speegle et al. [2, 20].

The paper restricts edit sequences to five operations, chosen because they
are *complete* — combinable to perform any image transformation one pixel
at a time [2]:

``Define(x1, y1, x2, y2)``
    Select the Defined Region (DR) that subsequent operations act on.

``Combine(c1..c9)``
    Blur: each DR pixel becomes the weighted average of its 3x3
    neighborhood with weights ``c1..c9`` (row-major, ``c5`` the center).

``Modify(rgb_old, rgb_new)``
    Recolor: DR pixels exactly matching ``rgb_old`` become ``rgb_new``.

``Mutate(m11..m33)``
    Rearrange: move DR pixels through an affine matrix (rotation, scale,
    translation of items within the image).

``Merge(target, x, y)``
    Copy the DR into ``target`` at ``(x, y)``.  A ``None`` target means
    "into a fresh image", i.e. a crop of the DR.

Operations are immutable value objects; executable semantics live in
:mod:`repro.editing.executor` and histogram-bound semantics in
:mod:`repro.core.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import OperationError
from repro.images.geometry import AffineMatrix, Rect
from repro.images.raster import ColorTuple, validate_color

#: Type tags used by serialization and dispatch tables.
DEFINE = "define"
COMBINE = "combine"
MODIFY = "modify"
MUTATE = "mutate"
MERGE = "merge"


@dataclass(frozen=True)
class Define:
    """Select the Defined Region for subsequent operations.

    Coordinates follow :class:`repro.images.Rect` conventions (half-open,
    row-major).  The region is clipped to the current image at execution
    time, so a Define may legally extend past the image edge.
    """

    rect: Rect

    kind = DEFINE

    def __post_init__(self) -> None:
        if self.rect.is_empty:
            raise OperationError("Define requires a non-empty region")

    @staticmethod
    def of(x1: int, y1: int, x2: int, y2: int) -> "Define":
        """Convenience constructor from corner coordinates."""
        return Define(Rect(x1, y1, x2, y2))

    def __repr__(self) -> str:
        r = self.rect
        return f"Define({r.x1}, {r.y1}, {r.x2}, {r.y2})"


@dataclass(frozen=True)
class Combine:
    """Blur the DR with a 3x3 weighted-average kernel.

    Weights are row-major ``(c1..c9)``; they must be non-negative with a
    positive sum (the executor normalizes).  ``Combine.box()`` gives the
    uniform blur used throughout the workloads.
    """

    weights: Tuple[float, float, float, float, float, float, float, float, float]

    kind = COMBINE

    def __post_init__(self) -> None:
        weights = tuple(float(w) for w in self.weights)
        if len(weights) != 9:
            raise OperationError(f"Combine needs 9 weights, got {len(weights)}")
        if any(w < 0 for w in weights):
            raise OperationError("Combine weights must be non-negative")
        if sum(weights) <= 0:
            raise OperationError("Combine weights must have positive sum")
        object.__setattr__(self, "weights", weights)

    @staticmethod
    def box() -> "Combine":
        """The uniform 3x3 box blur."""
        return Combine(tuple([1.0] * 9))

    def __repr__(self) -> str:
        return f"Combine({', '.join(f'{w:g}' for w in self.weights)})"


@dataclass(frozen=True)
class Modify:
    """Recolor DR pixels equal to ``rgb_old`` into ``rgb_new``."""

    rgb_old: ColorTuple
    rgb_new: ColorTuple

    kind = MODIFY

    def __post_init__(self) -> None:
        object.__setattr__(self, "rgb_old", validate_color(self.rgb_old))
        object.__setattr__(self, "rgb_new", validate_color(self.rgb_new))

    def __repr__(self) -> str:
        return f"Modify({self.rgb_old} -> {self.rgb_new})"


@dataclass(frozen=True)
class Mutate:
    """Move DR pixels through an affine matrix.

    The three sub-cases the Table 1 rules distinguish are exposed as
    predicates so both the executor and the rules classify identically:

    * :meth:`is_whole_image_scale` (given the DR and image bounds):
      the "DR contains image" row — image dimensions scale;
    * ``matrix.is_rigid_body()``: the rigid-body row — pixels move, image
      dimensions unchanged;
    * anything else is a general affine warp (not bound-widening).
    """

    matrix: AffineMatrix

    kind = MUTATE

    def __post_init__(self) -> None:
        if abs(self.matrix.determinant) < 1e-12:
            raise OperationError("Mutate matrix must be invertible")

    @staticmethod
    def translation(dx: int, dy: int) -> "Mutate":
        """Rigid-body translation of the DR."""
        return Mutate(AffineMatrix.translation(dx, dy))

    @staticmethod
    def rotation_90(quarter_turns: int, cx: float = 0.0, cy: float = 0.0) -> "Mutate":
        """Rigid-body quarter-turn rotation about ``(cx, cy)``."""
        return Mutate(AffineMatrix.rotation_90(quarter_turns, cx, cy))

    @staticmethod
    def rotation(radians: float, cx: float = 0.0, cy: float = 0.0) -> "Mutate":
        """Rigid-body rotation by an arbitrary angle about ``(cx, cy)``."""
        return Mutate(AffineMatrix.rotation(radians, cx, cy))

    @staticmethod
    def scale(sx: float, sy: Optional[float] = None) -> "Mutate":
        """Axis-aligned scale (whole-image when the DR covers the image)."""
        return Mutate(AffineMatrix.scale(sx, sy))

    def is_whole_image_scale(self, dr: Rect, image_bounds: Rect) -> bool:
        """True for the Table 1 "DR contains image" scale case."""
        return self.matrix.is_axis_scale() and dr.contains(image_bounds)

    def __repr__(self) -> str:
        return f"Mutate({self.matrix!r})"


@dataclass(frozen=True)
class Merge:
    """Copy the DR into ``target_id`` at ``(x, y)``.

    ``target_id is None`` crops the DR into a fresh image (the paper's
    "target is NULL" case).  Otherwise ``target_id`` names another stored
    image; the result canvas is the target expanded just enough to hold
    the pasted DR (the Table 1 dimension formula), with uncovered new
    area taking the executor's fill color.
    """

    target_id: Optional[str]
    x: int = 0
    y: int = 0

    kind = MERGE

    def __post_init__(self) -> None:
        if self.target_id is not None and not str(self.target_id):
            raise OperationError("Merge target id must be a non-empty string or None")
        object.__setattr__(self, "x", int(self.x))
        object.__setattr__(self, "y", int(self.y))

    @property
    def is_crop(self) -> bool:
        """True for the NULL-target (crop) form."""
        return self.target_id is None

    def __repr__(self) -> str:
        target = "NULL" if self.is_crop else self.target_id
        return f"Merge({target}, {self.x}, {self.y})"


#: Union of the five operation types.
Operation = Union[Define, Combine, Modify, Mutate, Merge]

#: All operation classes keyed by kind tag.
OPERATION_KINDS = {
    DEFINE: Define,
    COMBINE: Combine,
    MODIFY: Modify,
    MUTATE: Mutate,
    MERGE: Merge,
}


def ensure_operation(value: object) -> Operation:
    """Validate that ``value`` is one of the five operations."""
    if isinstance(value, (Define, Combine, Modify, Mutate, Merge)):
        return value
    raise OperationError(f"not an editing operation: {value!r}")
