"""Editing-operation substrate: the five-op algebra, sequences, executor."""

from repro.editing.executor import (
    EditExecutor,
    ExecutionState,
    combine_region,
    merge_canvas_geometry,
)
from repro.editing.operations import (
    COMBINE,
    DEFINE,
    MERGE,
    MODIFY,
    MUTATE,
    OPERATION_KINDS,
    Combine,
    Define,
    Merge,
    Modify,
    Mutate,
    Operation,
    ensure_operation,
)
from repro.editing.optimizer import (
    OptimizationReport,
    optimize_database,
    optimize_operations,
    optimize_sequence,
)
from repro.editing.recipes import (
    BOUND_WIDENING_RECIPES,
    NON_WIDENING_RECIPES,
    build_variant,
)
from repro.editing.sequence import EditSequence

__all__ = [
    "BOUND_WIDENING_RECIPES",
    "COMBINE",
    "Combine",
    "DEFINE",
    "Define",
    "EditExecutor",
    "EditSequence",
    "ExecutionState",
    "MERGE",
    "MODIFY",
    "MUTATE",
    "Merge",
    "Modify",
    "Mutate",
    "NON_WIDENING_RECIPES",
    "OptimizationReport",
    "OPERATION_KINDS",
    "Operation",
    "build_variant",
    "combine_region",
    "ensure_operation",
    "merge_canvas_geometry",
    "optimize_database",
    "optimize_operations",
    "optimize_sequence",
]
