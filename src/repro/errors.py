"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers embedding the MMDBMS can catch one base class.  The subclasses map
onto the subsystems described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ImageError(ReproError):
    """Raised for invalid raster images (bad shape, dtype, or bounds)."""


class CodecError(ReproError):
    """Raised when encoding or decoding an image file format fails."""


class GeometryError(ReproError):
    """Raised for invalid rectangles or regions."""


class ColorError(ReproError):
    """Raised for invalid colors, color spaces, or quantizer parameters."""


class HistogramError(ReproError):
    """Raised for invalid histograms or incompatible histogram pairs."""


class OperationError(ReproError):
    """Raised for invalid editing operations or parameters."""


class SequenceError(ReproError):
    """Raised when an edit sequence is malformed or cannot be parsed."""


class ExecutionError(ReproError):
    """Raised when instantiating an edit sequence fails."""


class RuleError(ReproError):
    """Raised when a Table 1 rule cannot be applied."""


class IndexError_(ReproError):
    """Raised for R-tree misuse.

    The trailing underscore avoids shadowing the builtin ``IndexError``
    while keeping the subsystem naming convention.
    """


class DatabaseError(ReproError):
    """Raised for catalog/storage level failures in the MMDBMS."""


class UnknownObjectError(DatabaseError):
    """Raised when an object id is not present in the catalog."""


class DuplicateObjectError(DatabaseError):
    """Raised when inserting an object id that already exists."""


class QueryError(ReproError):
    """Raised for malformed queries (range, kNN, or text)."""


class ParseError(QueryError):
    """Raised when the text query language parser rejects its input."""


class WorkloadError(ReproError):
    """Raised when a synthetic dataset or workload cannot be built."""


class PersistenceError(DatabaseError):
    """Raised when saving or loading a database directory fails."""


class CorruptionError(PersistenceError):
    """Raised when a stored file is damaged (checksum mismatch, torn
    write, or unparseable content).  The message names the offending
    file so operators can locate it."""


class SalvageError(PersistenceError):
    """Raised when salvage loading cannot recover anything at all (the
    manifest itself is unusable, so not even a partial database can be
    reconstructed)."""


class MigrationError(PersistenceError):
    """Raised by the online schema migrator (:mod:`repro.db.migration`)
    — a migration that cannot start (one is already journaled and
    neither ``resume`` nor ``rollback`` was requested), a rollback after
    finalization, or an I/O failure mid-batch.  The previous committed
    catalog state is always still loadable when this is raised."""


class ShardError(DatabaseError):
    """Raised by the sharded catalog tier (:mod:`repro.shard`) — bad
    shard counts, mutations against a closed catalog, or a shard layout
    on disk that disagrees with its manifest."""


class CrossShardReferenceError(ShardError):
    """Raised when an edit sequence's references (base image plus Merge
    targets) do not all resolve to the same shard.  Dependency chains
    must stay shard-local so BOUNDS walks and BWM clusters never cross a
    shard boundary; the message names the offending ids and shards."""


class ServiceError(ReproError):
    """Raised by the concurrent query service (:mod:`repro.service`)."""


class ServiceOverloadedError(ServiceError):
    """Raised when admission control sheds a query because the service's
    bounded queue is full.  Callers should back off and retry; the
    message reports the in-flight count and capacity at shed time."""


class ServiceShutdownError(ServiceError):
    """Raised when a query is submitted to a service that has begun (or
    finished) shutting down.  In-flight queries at shutdown still drain
    to completion; only new admissions are refused."""


class QueryTimeoutError(ServiceError):
    """Raised when a query misses its deadline — either it was still
    queued when the deadline passed, or the caller stopped waiting."""


class LockTimeoutError(ServiceError):
    """Raised when a bounded :meth:`ReadWriteLock.read_locked` /
    ``write_locked`` acquisition does not obtain the lock within its
    ``timeout``.  The attempt is abandoned cleanly: a timed-out writer
    withdraws its waiting claim and wakes blocked readers, so the lock
    is left exactly as if the attempt had never been made."""


class ObservabilityError(ReproError):
    """Raised by the tracing / attribution / export layer
    (:mod:`repro.obs`) — malformed spans, empty exports, or metric
    names that cannot be rendered in Prometheus exposition format."""
