"""`ShardedCatalog` — N shard-local databases behind one routed facade.

Partitioning
------------
Binary images route by a stable hash of their id; an edited image lives
on the shard of its referenced images (base plus Merge targets), which
must all agree — so every Merge/BWM dependency chain is shard-local and
a BOUNDS walk never crosses a shard boundary.  The hash is pure (no
process salt) because the write-ahead log records shard indexes and a
replayer in a fresh process must route identically.

Durability
----------
Every mutation appends to the WAL (:class:`~repro.shard.wal.ShardWAL`)
**before** it is applied to the owning shard, under that shard's write
lock.  The bounds engine's invalidation change feed is the ingestion
spine: the sharded wrapper registers each mutation's ``(image_id,
version)`` key before applying, and the per-shard feed listener dedupes
the echo — so one logical mutation writes exactly one WAL record even
though the feed also observes it.  Out-of-band mutations (someone
poking a shard's database directly) reach the listener with no
registered key and are captured as payload-free ``change`` records.
:meth:`ShardedCatalog.save` checkpoints every shard into its own
segment root (one atomic v2/v3 save each) and truncates the WAL;
:meth:`ShardedCatalog.open` loads the shard roots and replays whatever
the WAL holds beyond them.  Replay is idempotent, so a crash anywhere
— mid-append, between append and apply, mid-checkpoint — converges to
the no-crash state (swept by ``tests/shard/test_wal_replay_faults.py``).

Queries
-------
Scatter-gather: each query fans out across shards under their read
locks (a small thread pool), and the per-shard results merge —
set-union for range/conjunctive results, an ordered ``heapq.merge`` of
the per-shard k-best lists for kNN (each shard's list is exact and
sorted, so the first k of the merge are the global k-best, byte for
byte what the single-catalog oracle returns).
:meth:`planned_range_query` is the router-aware planner path: each
shard plans independently over the strategies the router can dispatch.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from heapq import merge as heap_merge
from itertools import islice
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from repro.color.histogram import ColorHistogram
from repro.color.quantization import UniformQuantizer
from repro.core.bounds import AllBinsBounds
from repro.core.query import ConjunctiveQuery, QueryResult, QueryStats, RangeQuery
from repro.db.database import MultimediaDatabase
from repro.db.persistence import (
    SHARD_MANIFEST_NAME,
    has_committed_state,
    load_database,
    save_database,
)
from repro.db.processors import KNNResult, KNNStats
from repro.db.versioning import sha256_hex
from repro.editing.sequence import EditSequence
from repro.errors import (
    CrossShardReferenceError,
    DatabaseError,
    DuplicateObjectError,
    PersistenceError,
    QueryError,
    ShardError,
    UnknownObjectError,
)
from repro.images.ppm import read_ppm, write_ppm
from repro.images.raster import ColorTuple, Image, validate_color
from repro.obs.events import EVENTS_NAME, EventLog
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    current_trace_id,
    maybe_tracer,
    new_trace_id,
    tracing_enabled,
)
from repro.service.executor import ReadWriteLock
from repro.service.metrics import MetricsRegistry
from repro.service.planner import CostBasedPlanner, Strategy
from repro.shard.wal import ShardWAL
from repro.testing.faults import NoFaults

logger = logging.getLogger(__name__)

#: Strategies the scatter-gather router can dispatch per shard.  The
#: spatial-index strategy needs serving-layer index builds the router
#: does not maintain per shard, so the planner is restricted to these.
ROUTER_STRATEGIES: Tuple[Strategy, ...] = (
    Strategy.LINEAR_RBM,
    Strategy.BWM,
    Strategy.VECTORIZED_BATCH,
)

_T = TypeVar("_T")


def hash_shard(image_id: str, shard_count: int) -> int:
    """The owning shard of a binary image id — a pure, stable hash.

    SHA-256 based so the assignment survives process restarts and
    Python hash randomization: the WAL records shard indexes, and
    replay in a fresh process must route every id identically.
    """
    digest = hashlib.sha256(image_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


def shard_dirname(index: int) -> str:
    """Directory name of one shard's segment root under the base root."""
    return f"shard-{index:03d}"


class _Shard:
    """One shard: a database, its lock, and its ingestion bookkeeping."""

    __slots__ = (
        "index",
        "database",
        "lock",
        "version",
        "journaled",
        "planner",
        "queries_served",
        "stats_lock",
        "materialized",
        "last_lsn",
        "last_compaction",
        "replay_failures",
    )

    def __init__(self, index: int, database: MultimediaDatabase) -> None:
        self.index = index
        self.database = database
        self.lock = ReadWriteLock()
        #: Shard-local mutation version; each committed mutation is +1.
        self.version = 0
        #: ``(image_id, version)`` keys of in-flight wrapper mutations,
        #: consumed by the feed listener so the WAL never records the
        #: same mutation twice (the dedupe satellite).
        self.journaled: Set[Tuple[str, int]] = set()
        self.planner: Optional[CostBasedPlanner] = None
        #: Queries this shard served (the compactor's hotness signal).
        #: Incremented under :attr:`stats_lock`, not the shard lock:
        #: queries hold only the *read* side, so concurrent readers
        #: bumping this unprotected would lose updates.
        self.queries_served = 0
        self.stats_lock = threading.Lock()
        #: image_id -> projected per-query work-unit saving of its
        #: materialized BOUNDS matrix (the compactor's commits).
        self.materialized: Dict[str, float] = {}
        #: LSN of the last WAL record this shard wrote or replayed —
        #: stamped onto per-shard query spans so a slow query is
        #: attributable to the write activity that preceded it.
        self.last_lsn: Optional[int] = None
        #: Lineage of the most recent compaction commit touching this
        #: shard: ``{"image_id", "lsn", "trace_id"}`` (or ``None``).
        self.last_compaction: Optional[Dict[str, object]] = None
        #: WAL records the replayer had to skip as rejected (a health
        #: signal: a growing count means the log disagrees with state).
        self.replay_failures = 0


class ShardedCatalog:
    """N shard-local MMDBMS instances behind one WAL-durable facade.

    Parameters
    ----------
    shard_count:
        Number of shards (>= 1).  Fixed for the life of a root: the
        manifest records it and :meth:`open` restores it.
    root:
        Directory for the WAL, the shard manifest, and one segment root
        per shard.  ``None`` runs ephemeral (no WAL, no save) — useful
        for pure in-memory parity tests.
    quantizer / fill_color / index_kind:
        Forwarded to every shard's :class:`MultimediaDatabase`; all
        shards share one quantizer object.
    faults:
        Fault plan routing the WAL's and checkpoint's durable writes
        (swappable afterwards via :attr:`faults` for kill-point sweeps).
    scatter_workers:
        Thread-pool width for scatter-gather (default: ``shard_count``
        capped at 8).
    """

    def __init__(
        self,
        shard_count: int = 4,
        *,
        root: Optional[Union[str, Path]] = None,
        quantizer: Optional[UniformQuantizer] = None,
        fill_color: Sequence[int] = (0, 0, 0),
        index_kind: str = "rtree",
        faults: Optional[NoFaults] = None,
        scatter_workers: Optional[int] = None,
    ) -> None:
        if shard_count < 1:
            raise ShardError(f"shard_count must be >= 1, got {shard_count}")
        self.quantizer = (
            quantizer if quantizer is not None else UniformQuantizer(4, "rgb")
        )
        self.fill_color: ColorTuple = validate_color(fill_color)
        self.index_kind = index_kind
        self.faults: NoFaults = faults if faults is not None else NoFaults()
        self.root = Path(root) if root is not None else None
        self.metrics = MetricsRegistry()
        #: The wide-event log: ring-buffered, and (with a root) mirrored
        #: to ``events.jsonl`` for ``repro events`` and post-mortems.
        #: Constructed before the shards so replay/listeners can emit.
        self.events = EventLog(
            capacity=1024,
            sink=(self.root / EVENTS_NAME) if self.root is not None else None,
        )
        #: Most recent scatter-gather queries (``repro top``'s slow list).
        self._recent_queries: "deque[Dict[str, object]]" = deque(maxlen=64)
        self._recent_lock = threading.Lock()
        self._placement: Dict[str, int] = {}
        self._id_counters: Dict[str, int] = {}
        self._replaying = False
        self._closed = False
        self._alloc_lock = threading.Lock()
        self._shards: List[_Shard] = [
            self._make_shard(index) for index in range(shard_count)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=(
                scatter_workers
                if scatter_workers is not None
                else min(shard_count, 8)
            ),
            thread_name_prefix="shard-query",
        )
        self._wal: Optional[ShardWAL] = None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._check_or_write_manifest()
            self._wal = ShardWAL(self.root)
        self.metrics.set_gauge("shard.count", shard_count)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_shard(self, index: int) -> _Shard:
        database = MultimediaDatabase(
            quantizer=self.quantizer,
            fill_color=self.fill_color,
            index_kind=self.index_kind,
            bounds_cache=True,
        )
        shard = _Shard(index, database)
        self._attach(shard)
        return shard

    def _attach(self, shard: _Shard) -> None:
        """Subscribe the ingestion listener and planner to a shard's db."""
        shard.database.engine.cache_enabled = True
        shard.database.engine.add_invalidation_listener(
            self._listener_for(shard)
        )
        shard.planner = CostBasedPlanner(shard.database)

    def _listener_for(self, shard: _Shard) -> Callable[[Optional[str]], None]:
        def _on_invalidation(image_id: Optional[str]) -> None:
            if image_id is None:
                return  # whole-cache flush, not a catalog mutation
            if shard.lock.write_held_by_current_thread():
                # The wrapper/compactor/replay paths invalidate with the
                # shard write lock already held on this thread;
                # re-acquiring the non-reentrant lock would deadlock.
                self._observe_invalidation(shard, image_id)
            else:
                # Out-of-band caller: take the write lock so the version
                # read/bump cannot interleave with a wrapper mutation on
                # the same shard and mis-dedupe its journaled key.
                with shard.lock.write_locked():
                    self._observe_invalidation(shard, image_id)

        return _on_invalidation

    def _observe_invalidation(self, shard: _Shard, image_id: str) -> None:
        """Handle one invalidation event (shard write lock held)."""
        key = (image_id, shard.version + 1)
        if key in shard.journaled:
            # The wrapper path journaled this mutation before applying
            # it; the feed echo must not journal it again.
            shard.journaled.discard(key)
            self.metrics.increment("wal.deduped")
            return
        if self._replaying or self._closed:
            return
        # Out-of-band change (a direct shard-database mutation that
        # bypassed the wrapper): capture it so WAL consumers learn
        # to drop caches, even though there is no payload to replay.
        version = shard.version + 1
        lsn: Optional[int] = None
        if self._wal is not None:
            entry = self._wal.append(
                self.faults,
                "change",
                shard=shard.index,
                image_id=image_id,
                version=version,
            )
            lsn = int(entry["lsn"])  # type: ignore[arg-type]
            shard.last_lsn = lsn
            self.metrics.increment("wal.appends")
        shard.version = version
        self.metrics.increment("wal.out_of_band")
        self.events.emit(
            "wal.append",
            subsystem="wal",
            shard=shard.index,
            image_id=image_id,
            lsn=lsn,
            op="change",
            version=version,
            out_of_band=True,
        )

    def _check_or_write_manifest(self) -> None:
        assert self.root is not None
        path = self.root / SHARD_MANIFEST_NAME
        if path.is_file():
            manifest = _read_shard_manifest(path)
            existing = int(manifest["shard_count"])  # type: ignore[arg-type]
            if existing != len(self._shards):
                raise ShardError(
                    f"{path} holds a {existing}-shard layout; use "
                    f"ShardedCatalog.open({str(self.root)!r}) instead of "
                    f"constructing with shard_count={len(self._shards)}"
                )
        else:
            self._write_manifest()

    def _write_manifest(self) -> None:
        assert self.root is not None
        manifest: Dict[str, object] = {
            "format": 1,
            "shard_count": len(self._shards),
            "quantizer": {
                "divisions": self.quantizer.divisions,
                "space": self.quantizer.space,
            },
            "fill_color": list(self.fill_color),
            "index_kind": self.index_kind,
            "versions": [shard.version for shard in self._shards],
        }
        canonical = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
        manifest["manifest_sha256"] = sha256_hex(canonical.encode("utf-8"))
        payload = json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8")
        path = self.root / SHARD_MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        self.faults.write_bytes(tmp, payload)
        self.faults.fsync(tmp)
        self.faults.rename(tmp, path)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, image_id: str) -> int:
        """The shard index holding ``image_id`` (raises when unknown)."""
        index = self._placement.get(image_id)
        if index is None:
            raise UnknownObjectError(f"image {image_id!r} not in any shard")
        return index

    def placement(self) -> Dict[str, int]:
        """A snapshot of the id -> shard map (for the DB007 verifier)."""
        return dict(self._placement)

    def shard_database(self, index: int) -> MultimediaDatabase:
        """Direct access to one shard's database (verifier / tests)."""
        return self._shards[index].database

    def _route_new_binary(self, image_id: str) -> _Shard:
        return self._shards[hash_shard(image_id, len(self._shards))]

    def _route_sequence(self, sequence: EditSequence) -> _Shard:
        """The single shard every referenced image lives on."""
        located: Dict[str, int] = {}
        for referenced in sequence.referenced_ids():
            index = self._placement.get(referenced)
            if index is None:
                raise UnknownObjectError(
                    f"sequence references {referenced!r}, which is not in "
                    f"any shard"
                )
            located[referenced] = index
        indexes = set(located.values())
        if len(indexes) > 1:
            raise CrossShardReferenceError(
                f"sequence references straddle shards {sorted(indexes)}: "
                f"{located} — Merge/BWM dependency chains must stay "
                f"shard-local (route Merge targets into the base image's "
                f"cluster)"
            )
        return self._shards[indexes.pop()]

    def _owning_shard(self, image_id: str) -> _Shard:
        return self._shards[self.shard_of(image_id)]

    def _allocate(self, prefix: str) -> str:
        with self._alloc_lock:
            counter = self._id_counters.get(prefix, 1)
            while f"{prefix}-{counter}" in self._placement:
                counter += 1
            self._id_counters[prefix] = counter + 1
            return f"{prefix}-{counter}"

    def _note_allocated(self, image_id: str) -> None:
        """Keep the id counters ahead of explicitly-chosen ids."""
        prefix, _, suffix = image_id.rpartition("-")
        if prefix and suffix.isdigit():
            with self._alloc_lock:
                current = self._id_counters.get(prefix, 1)
                self._id_counters[prefix] = max(current, int(suffix) + 1)

    # ------------------------------------------------------------------
    # Mutations (WAL first, then apply, under the shard write lock)
    # ------------------------------------------------------------------
    def _journal(
        self,
        shard: _Shard,
        op: str,
        image_id: str,
        version: int,
        **payload: object,
    ) -> Optional[int]:
        """Journal one mutation; returns its LSN (None when ephemeral).

        The record is stamped with the enclosing trace's id (if any) —
        that is the WAL half of lineage: given a slow query's trace id,
        ``grep`` of the WAL finds every record it wrote, and given a
        suspicious WAL record, the trace that produced it.  With tracing
        on but no enclosing span, a fresh id is minted so the record is
        still attributable.  One wide event is emitted per journaled
        mutation.
        """
        self._ensure_open()
        shard.journaled.add((image_id, version))
        lsn: Optional[int] = None
        trace_id = current_trace_id()
        if trace_id is None and tracing_enabled():
            trace_id = new_trace_id()
        if self._wal is not None:
            extra = dict(payload)
            if trace_id is not None:
                extra["trace_id"] = trace_id
            entry = self._wal.append(
                self.faults,
                op,
                shard=shard.index,
                image_id=image_id,
                version=version,
                **extra,
            )
            lsn = int(entry["lsn"])  # type: ignore[arg-type]
            shard.last_lsn = lsn
            self.metrics.increment("wal.appends")
        self.events.emit(
            "wal.append",
            subsystem="wal",
            shard=shard.index,
            image_id=image_id,
            lsn=lsn,
            trace_id=trace_id,
            op=op,
            version=version,
        )
        return lsn

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardError("sharded catalog is closed")

    @staticmethod
    def _apply(
        shard: _Shard,
        image_id: str,
        version: int,
        apply: Callable[[], object],
    ) -> None:
        """Run a journaled mutation's apply step.

        On failure, the dedupe key :meth:`_journal` registered is
        retired so the next mutation at the same version number is not
        silently swallowed by the feed listener.  The WAL record stays:
        replay re-attempts the apply and, when it fails the same way,
        skips the record — converging with the live outcome.
        """
        try:
            apply()
        except BaseException:
            shard.journaled.discard((image_id, version))
            raise

    @staticmethod
    def _prune_materialized(shard: _Shard) -> None:
        """Retire ledger entries whose matrices invalidation just dropped.

        A mutation's transitive invalidation can evict materialized
        matrices of *other* images (dependents of the mutated one); the
        ledger must follow, or the compactor would consider them
        materialized forever and never re-warm them.
        """
        if shard.materialized:
            engine = shard.database.engine
            stale = [
                image_id
                for image_id in shard.materialized
                if not engine.has_cached_bounds(image_id)
            ]
            for image_id in stale:
                shard.materialized.pop(image_id, None)

    def insert_image(self, image: Image, image_id: Optional[str] = None) -> str:
        """Insert a binary image on its hash shard (WAL first)."""
        self._ensure_open()
        assigned = image_id if image_id is not None else self._allocate("img")
        if assigned in self._placement:
            raise DuplicateObjectError(
                f"image id {assigned!r} already stored in shard "
                f"{self._placement[assigned]}"
            )
        shard = self._route_new_binary(assigned)
        with shard.lock.write_locked():
            version = shard.version + 1
            ppm = base64.b64encode(write_ppm(image)).decode("ascii")
            self._journal(shard, "insert_image", assigned, version, ppm=ppm)
            self._apply(
                shard,
                assigned,
                version,
                lambda: shard.database.insert_image(image, assigned),
            )
            shard.version = version
            self._placement[assigned] = shard.index
        self._note_allocated(assigned)
        self.metrics.increment("shard.mutations")
        return assigned

    def insert_edited(
        self, sequence: EditSequence, image_id: Optional[str] = None
    ) -> str:
        """Insert an edited image on its references' shard (WAL first)."""
        self._ensure_open()
        assigned = image_id if image_id is not None else self._allocate("edit")
        if assigned in self._placement:
            raise DuplicateObjectError(
                f"image id {assigned!r} already stored in shard "
                f"{self._placement[assigned]}"
            )
        shard = self._route_sequence(sequence)
        with shard.lock.write_locked():
            version = shard.version + 1
            self._journal(
                shard,
                "insert_edited",
                assigned,
                version,
                sequence=sequence.serialize(),
            )
            self._apply(
                shard,
                assigned,
                version,
                lambda: shard.database.insert_edited(sequence, assigned),
            )
            self._prune_materialized(shard)
            shard.version = version
            self._placement[assigned] = shard.index
        self._note_allocated(assigned)
        self.metrics.increment("shard.mutations")
        return assigned

    def delete_edited(self, image_id: str) -> None:
        shard = self._owning_shard(image_id)
        with shard.lock.write_locked():
            version = shard.version + 1
            self._journal(shard, "delete_edited", image_id, version)
            self._apply(
                shard,
                image_id,
                version,
                lambda: shard.database.delete_edited(image_id),
            )
            self._prune_materialized(shard)
            shard.version = version
            shard.materialized.pop(image_id, None)
            self._placement.pop(image_id, None)
        self.metrics.increment("shard.mutations")

    def delete_image(self, image_id: str) -> None:
        shard = self._owning_shard(image_id)
        with shard.lock.write_locked():
            version = shard.version + 1
            self._journal(shard, "delete_image", image_id, version)
            self._apply(
                shard,
                image_id,
                version,
                lambda: shard.database.delete_image(image_id),
            )
            self._prune_materialized(shard)
            shard.version = version
            self._placement.pop(image_id, None)
        self.metrics.increment("shard.mutations")

    def update_image(self, image_id: str, image: Image) -> None:
        shard = self._owning_shard(image_id)
        with shard.lock.write_locked():
            version = shard.version + 1
            ppm = base64.b64encode(write_ppm(image)).decode("ascii")
            self._journal(shard, "update_image", image_id, version, ppm=ppm)
            self._apply(
                shard,
                image_id,
                version,
                lambda: shard.database.update_image(image_id, image),
            )
            self._prune_materialized(shard)
            shard.version = version
        self.metrics.increment("shard.mutations")

    # ------------------------------------------------------------------
    # Compaction commits (called by the Compactor under the write lock)
    # ------------------------------------------------------------------
    def _commit_materialization(
        self,
        shard: _Shard,
        image_id: str,
        bounds: AllBinsBounds,
        projected_saving: float,
    ) -> None:
        """Swap a materialized BOUNDS matrix in (write lock held).

        The swap is journaled, fires the invalidation feed (dropping
        the image's stale memo entries and notifying result caches and
        planners), and only then seeds the engine's vector cache — so a
        query racing the commit either sees the old walk-on-demand
        state or the fully seeded one, never a half-applied mix.
        """
        lo, hi, height, width = bounds
        version = shard.version + 1
        lsn = self._journal(
            shard,
            "compact",
            image_id,
            version,
            lo=[int(value) for value in lo],
            hi=[int(value) for value in hi],
            height=int(height),
            width=int(width),
        )
        shard.database.engine.invalidate(image_id)
        shard.database.engine.seed_bounds(image_id, bounds)
        shard.version = version
        shard.materialized[image_id] = float(projected_saving)
        shard.last_compaction = {
            "image_id": image_id,
            "lsn": lsn,
            "trace_id": current_trace_id(),
        }
        self.metrics.increment("compaction.materialized")
        self._refresh_materialized_gauge()
        self.events.emit(
            "compaction.materialized",
            subsystem="compactor",
            shard=shard.index,
            image_id=image_id,
            lsn=lsn,
            projected_saving=float(projected_saving),
        )

    def _rollback_materialization(self, shard: _Shard, image_id: str) -> None:
        """Retract a materialized matrix (write lock held)."""
        version = shard.version + 1
        lsn = self._journal(shard, "decompact", image_id, version)
        shard.database.engine.invalidate(image_id)
        shard.version = version
        shard.materialized.pop(image_id, None)
        self.metrics.increment("compaction.rolled_back")
        self._refresh_materialized_gauge()
        self.events.emit(
            "compaction.rolled_back",
            subsystem="compactor",
            shard=shard.index,
            image_id=image_id,
            lsn=lsn,
        )

    def rollback_materialization(self, image_id: str) -> bool:
        """Public retraction of one materialized image; True if it was."""
        self._ensure_open()
        shard = self._owning_shard(image_id)
        with shard.lock.write_locked():
            if image_id not in shard.materialized:
                return False
            self._rollback_materialization(shard, image_id)
        return True

    def materialized_images(self) -> Dict[str, float]:
        """Every materialized image id and its projected per-query saving."""
        combined: Dict[str, float] = {}
        for shard in self._shards:
            combined.update(shard.materialized)
        return combined

    def _refresh_materialized_gauge(self) -> None:
        total = sum(len(shard.materialized) for shard in self._shards)
        self.metrics.set_gauge("compaction.materialized_images", total)

    # ------------------------------------------------------------------
    # Scatter-gather queries
    # ------------------------------------------------------------------
    def _scatter(
        self,
        task: Callable[[_Shard], _T],
        tracer=NULL_TRACER,
    ) -> Tuple[List[_T], List[Tuple[int, float, float]]]:
        """Run ``task`` on every shard under its read lock; shard order.

        Returns ``(results, timings)`` where each timing is ``(shard
        index, lock-wait seconds, total seconds)``.  Per-shard latency
        and lock-wait land in the metrics registry unconditionally (the
        health monitor's feed); when ``tracer`` is live, one
        ``shard.execute`` span per shard — carrying its lock-wait,
        last-written LSN, and last-compaction lineage — is attached
        under the caller's current span.

        The workers only *measure*; span objects are built on the
        calling thread afterwards, in shard order, because a tracer's
        span stack is not thread-safe and deterministic child order
        makes traces diffable.
        """
        self._ensure_open()

        def guarded(shard: _Shard) -> Tuple[_T, float, float, float]:
            queued = time.perf_counter()
            with shard.lock.read_locked():
                acquired = time.perf_counter()
                with shard.stats_lock:
                    shard.queries_served += 1
                result = task(shard)
                finished = time.perf_counter()
            return result, queued, acquired, finished

        if len(self._shards) == 1:
            observed = [guarded(self._shards[0])]
        else:
            futures = [
                self._pool.submit(guarded, shard) for shard in self._shards
            ]
            observed = [future.result() for future in futures]

        parent = tracer.current if tracer else None
        results: List[_T] = []
        timings: List[Tuple[int, float, float]] = []
        for shard, (result, queued, acquired, finished) in zip(
            self._shards, observed
        ):
            lock_wait = acquired - queued
            total = finished - queued
            key = f"s{shard.index:02d}"
            self.metrics.observe(f"shard_seconds.{key}", total)
            self.metrics.observe(f"shard_lock_wait_seconds.{key}", lock_wait)
            if parent is not None:
                span = Span("shard.execute", queued, parent=parent)
                span.end = finished
                span.attributes.update(
                    {
                        "shard": shard.index,
                        "lock_wait_seconds": lock_wait,
                        "last_lsn": shard.last_lsn,
                    }
                )
                if shard.last_compaction is not None:
                    span.attributes["last_compaction_lsn"] = (
                        shard.last_compaction.get("lsn")
                    )
                    span.attributes["last_compaction_trace"] = (
                        shard.last_compaction.get("trace_id")
                    )
                wait = Span("lock-wait", queued, parent=span)
                wait.end = acquired
                run = Span("run", acquired, parent=span)
                run.end = finished
                span.children.extend((wait, run))
                parent.children.append(span)
            results.append(result)
            timings.append((shard.index, lock_wait, total))
        return results, timings

    @staticmethod
    def _merge_results(results: Sequence[QueryResult]) -> QueryResult:
        matches: Set[str] = set()
        stats = QueryStats()
        for result in results:
            matches |= result.matches
            stats.merge(result.stats)
        return QueryResult(frozenset(matches), stats)

    @staticmethod
    def _result_work_units(result: QueryResult) -> float:
        """The paper's §5 work units one shard spent on one result."""
        return float(
            result.stats.histograms_checked + result.stats.rules_applied
        )

    def _finish_query(
        self,
        tracer,
        kind: str,
        started: float,
        timings: Sequence[Tuple[int, float, float]],
        per_shard_work: Sequence[float],
        matches: int,
    ) -> None:
        """Close one scatter-gather query's telemetry.

        Observes per-shard work-unit histograms and the router latency,
        folds the trace (when live) into span counters, records the
        query in the recent ring, and emits one wide ``query`` event —
        the joinable record that ties the query's trace id to its cost.
        """
        elapsed = time.perf_counter() - started
        for (index, _lock_wait, _total), work in zip(timings, per_shard_work):
            self.metrics.observe(f"shard_work_units.s{index:02d}", work)
        self.metrics.increment("shard.queries")
        self.metrics.observe("sharded_query_seconds", elapsed)
        trace_id = tracer.trace_id
        if tracer:
            root = tracer.finish()
            for span in root.iter_spans():
                self.metrics.increment(f"spans.{span.name}")
        slowest = (
            max(timings, key=lambda timing: timing[2])[0] if timings else None
        )
        entry: Dict[str, object] = {
            "ts": time.time(),
            "kind": kind,
            "seconds": elapsed,
            "work_units": float(sum(per_shard_work)),
            "matches": matches,
            "trace_id": trace_id,
            "slowest_shard": slowest,
            "shard_seconds": {
                f"s{index:02d}": round(total, 6)
                for index, _lock_wait, total in timings
            },
        }
        with self._recent_lock:
            self._recent_queries.append(entry)
        self.events.emit(
            "query",
            subsystem="router",
            shard=slowest,
            trace_id=trace_id,
            query_kind=kind,
            seconds=round(elapsed, 6),
            work_units=float(sum(per_shard_work)),
            matches=matches,
        )

    def range_query(
        self,
        query: RangeQuery,
        method: str = "bwm",
        expand_to_bases: bool = False,
    ) -> QueryResult:
        """Fan a range query across shards; union of shard results."""
        started = time.perf_counter()
        tracer = maybe_tracer("sharded_query")
        tracer.root.set("kind", "range_query")
        with tracer.span("fanout", shards=len(self._shards)):
            results, timings = self._scatter(
                lambda shard: shard.database.range_query(
                    query, method=method, expand_to_bases=expand_to_bases
                ),
                tracer=tracer,
            )
        with tracer.span("merge"):
            merged = self._merge_results(results)
        self._finish_query(
            tracer,
            "range_query",
            started,
            timings,
            [self._result_work_units(result) for result in results],
            len(merged.matches),
        )
        return merged

    def range_query_batch(
        self, queries: Sequence[RangeQuery], method: str = "bwm"
    ) -> List[QueryResult]:
        """Fan a query batch across shards; element-wise union."""
        started = time.perf_counter()
        tracer = maybe_tracer("sharded_query")
        tracer.root.set("kind", "range_query_batch")
        with tracer.span("fanout", shards=len(self._shards)):
            per_shard, timings = self._scatter(
                lambda shard: shard.database.range_query_batch(
                    queries, method=method
                ),
                tracer=tracer,
            )
        with tracer.span("merge"):
            merged = [
                self._merge_results(
                    [shard_results[i] for shard_results in per_shard]
                )
                for i in range(len(queries))
            ]
        self._finish_query(
            tracer,
            "range_query_batch",
            started,
            timings,
            [
                sum(self._result_work_units(result) for result in shard_results)
                for shard_results in per_shard
            ],
            sum(len(result.matches) for result in merged),
        )
        return merged

    def conjunctive_query(
        self,
        query: ConjunctiveQuery,
        method: str = "bwm",
        expand_to_bases: bool = False,
    ) -> QueryResult:
        """AND-composed constraints; per-shard intersections union.

        Correct because shards partition the id space: the global
        intersection distributes over the disjoint per-shard unions.
        """
        started = time.perf_counter()
        tracer = maybe_tracer("sharded_query")
        tracer.root.set("kind", "conjunctive_query")
        with tracer.span("fanout", shards=len(self._shards)):
            results, timings = self._scatter(
                lambda shard: shard.database.conjunctive_query(
                    query, method=method, expand_to_bases=expand_to_bases
                ),
                tracer=tracer,
            )
        with tracer.span("merge"):
            merged = self._merge_results(results)
        self._finish_query(
            tracer,
            "conjunctive_query",
            started,
            timings,
            [self._result_work_units(result) for result in results],
            len(merged.matches),
        )
        return merged

    def text_query(
        self,
        text: str,
        method: str = "bwm",
        expand_to_bases: bool = False,
    ) -> QueryResult:
        """Parse once at the router, then fan out like the database does."""
        from repro.querylang.parser import parse_conjunctive_query

        parsed = parse_conjunctive_query(text)
        constraints = tuple(
            RangeQuery(self.quantizer.bin_of(p.rgb), p.pct_min, p.pct_max)
            for p in parsed
        )
        if len(constraints) == 1:
            return self.range_query(
                constraints[0], method=method, expand_to_bases=expand_to_bases
            )
        return self.conjunctive_query(
            ConjunctiveQuery(constraints),
            method=method,
            expand_to_bases=expand_to_bases,
        )

    def knn(
        self,
        query: Union[Image, ColorHistogram],
        k: int,
        method: str = "bounded",
    ) -> KNNResult:
        """Global k nearest neighbors: ordered merge of shard k-bests.

        Each shard returns its exact local k-best ascending by
        ``(distance, id)``; the global k-best is the first k of their
        ordered merge — identical to the single-catalog result because
        no excluded local candidate can outrank an included one.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        histogram = (
            ColorHistogram.of_image(query, self.quantizer)
            if isinstance(query, Image)
            else query
        )
        if histogram.quantizer != self.quantizer:
            raise QueryError("query histogram uses a different quantizer")
        started = time.perf_counter()
        tracer = maybe_tracer("sharded_query")
        tracer.root.set("kind", "knn")
        with tracer.span("fanout", shards=len(self._shards)):
            results, timings = self._scatter(
                lambda shard: shard.database.knn(histogram, k, method=method),
                tracer=tracer,
            )
        with tracer.span("merge"):
            neighbors = tuple(
                islice(heap_merge(*(result.neighbors for result in results)), k)
            )
            stats = KNNStats()
            for result in results:
                stats.candidates_considered += result.stats.candidates_considered
                stats.edited_pruned += result.stats.edited_pruned
                stats.edited_instantiated += result.stats.edited_instantiated
        self._finish_query(
            tracer,
            "knn",
            started,
            timings,
            [float(result.stats.candidates_considered) for result in results],
            len(neighbors),
        )
        return KNNResult(neighbors, stats)

    def similarity_range(
        self, query: Union[Image, ColorHistogram], epsilon: float
    ) -> KNNResult:
        """All images within L1 distance ``epsilon``: ordered shard merge."""
        histogram = (
            ColorHistogram.of_image(query, self.quantizer)
            if isinstance(query, Image)
            else query
        )
        if histogram.quantizer != self.quantizer:
            raise QueryError("query histogram uses a different quantizer")
        started = time.perf_counter()
        tracer = maybe_tracer("sharded_query")
        tracer.root.set("kind", "similarity_range")
        with tracer.span("fanout", shards=len(self._shards)):
            results, timings = self._scatter(
                lambda shard: shard.database.similarity_range(
                    histogram, epsilon
                ),
                tracer=tracer,
            )
        with tracer.span("merge"):
            neighbors = tuple(
                heap_merge(*(result.neighbors for result in results))
            )
            stats = KNNStats()
            for result in results:
                stats.candidates_considered += result.stats.candidates_considered
                stats.edited_pruned += result.stats.edited_pruned
                stats.edited_instantiated += result.stats.edited_instantiated
        self._finish_query(
            tracer,
            "similarity_range",
            started,
            timings,
            [float(result.stats.candidates_considered) for result in results],
            len(neighbors),
        )
        return KNNResult(neighbors, stats)

    def planned_range_query(self, query: RangeQuery) -> QueryResult:
        """Router-aware planning: each shard picks its own strategy.

        Shards are independently sized and independently warm, so a hot
        small shard may serve from its memoized vectorized path while a
        cold large one still prefers BWM — the planner decides per
        shard over :data:`ROUTER_STRATEGIES`.
        """

        def run(shard: _Shard) -> QueryResult:
            planner = shard.planner
            assert planner is not None
            plan = planner.plan(query, strategies=ROUTER_STRATEGIES)
            self.metrics.increment(f"plans.{plan.strategy.value}")
            if plan.strategy is Strategy.VECTORIZED_BATCH:
                return shard.database.range_query_batch([query], method="rbm")[0]
            method = "rbm" if plan.strategy is Strategy.LINEAR_RBM else "bwm"
            return shard.database.range_query(query, method=method)

        started = time.perf_counter()
        tracer = maybe_tracer("sharded_query")
        tracer.root.set("kind", "planned_range_query")
        with tracer.span("fanout", shards=len(self._shards)):
            results, timings = self._scatter(run, tracer=tracer)
        with tracer.span("merge"):
            merged = self._merge_results(results)
        self._finish_query(
            tracer,
            "planned_range_query",
            started,
            timings,
            [self._result_work_units(result) for result in results],
            len(merged.matches),
        )
        return merged

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------
    def instantiate(self, image_id: str) -> Image:
        shard = self._owning_shard(image_id)
        with shard.lock.read_locked():
            return shard.database.instantiate(image_id)

    def exact_histogram(self, image_id: str) -> ColorHistogram:
        shard = self._owning_shard(image_id)
        with shard.lock.read_locked():
            return shard.database.exact_histogram(image_id)

    def contains(self, image_id: str) -> bool:
        return image_id in self._placement

    def ids(self) -> Iterable[str]:
        """Every stored id, shard-major then catalog insertion order."""
        for shard in self._shards:
            yield from shard.database.catalog.binary_ids()
        for shard in self._shards:
            yield from shard.database.catalog.edited_ids()

    def __len__(self) -> int:
        return len(self._placement)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self) -> Path:
        """Checkpoint every shard and truncate the WAL.

        Each shard saves through the normal atomic tmp+rename path into
        its own segment root, the manifest is rewritten, and only then
        is the WAL reset.  A crash anywhere leaves the tree loadable:
        un-checkpointed shards replay the WAL's records idempotently on
        the next :meth:`open`.
        """
        self._ensure_open()
        if self.root is None:
            raise ShardError(
                "ephemeral sharded catalog has no root; construct with "
                "root=... to enable save()"
            )
        with ExitStack() as stack:
            for shard in self._shards:
                # Shard locks are always taken in ascending shard-index
                # order here (the only multi-shard acquisition site), so
                # the self-cycle on the shard lock family cannot deadlock.
                stack.enter_context(  # repro-lint: disable=CC001
                    shard.lock.write_locked()
                )
            for shard in self._shards:
                save_database(
                    shard.database,
                    self.root / shard_dirname(shard.index),
                    faults=self.faults,
                )
            self._write_manifest()
            assert self._wal is not None
            truncated = len(self._wal.entries())
            self._wal.reset(self.faults)
        self.metrics.increment("shard.checkpoints")
        self.events.emit(
            "checkpoint",
            subsystem="shard",
            wal_records_truncated=truncated,
            versions=[shard.version for shard in self._shards],
        )
        return self.root

    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        *,
        faults: Optional[NoFaults] = None,
        scatter_workers: Optional[int] = None,
    ) -> "ShardedCatalog":
        """Load a sharded root: shard segment roots plus WAL replay."""
        base = Path(root)
        manifest_path = base / SHARD_MANIFEST_NAME
        if not manifest_path.is_file():
            raise PersistenceError(
                f"{base} is not a sharded catalog root (no "
                f"{SHARD_MANIFEST_NAME})"
            )
        manifest = _read_shard_manifest(manifest_path)
        quantizer_info = manifest["quantizer"]
        assert isinstance(quantizer_info, dict)
        catalog = cls(
            int(manifest["shard_count"]),  # type: ignore[arg-type]
            root=base,
            quantizer=UniformQuantizer(
                divisions=int(quantizer_info["divisions"]),
                space=str(quantizer_info["space"]),
            ),
            fill_color=tuple(manifest["fill_color"]),  # type: ignore[arg-type]
            index_kind=str(manifest["index_kind"]),
            faults=faults,
            scatter_workers=scatter_workers,
        )
        for shard in catalog._shards:
            shard_root = base / shard_dirname(shard.index)
            if not has_committed_state(shard_root):
                continue  # never checkpointed; WAL replay fills it
            # load_database also rolls back a save that crashed between
            # its commit renames (shard dir absent, ``.old`` backup left).
            shard.database = load_database(shard_root)
            catalog._attach(shard)
            for image_id in shard.database.ids():
                catalog._placement[image_id] = shard.index
                catalog._note_allocated(image_id)
        versions = manifest.get("versions")
        if isinstance(versions, list):
            for shard, version in zip(catalog._shards, versions):
                shard.version = int(version)
        catalog._replay()
        return catalog

    def _replay(self) -> None:
        """Re-apply WAL records beyond the checkpoint, idempotently.

        A record whose effect is already present (the crash happened
        after apply, or an earlier partial replay got there) is
        skipped; a record whose subject is already gone likewise.  A
        record whose apply fails with a :class:`DatabaseError` is also
        skipped (with a warning): the WAL records attempts before
        outcomes, so a mutation that was rejected live — e.g. a
        ``delete_image`` on a base that still has derived edits — left
        its record behind, and replay must converge with the live
        rejection rather than render the root unopenable.  The sweep
        tests prove the result equals the no-crash oracle for a crash
        at every append/apply boundary.
        """
        assert self._wal is not None
        entries = self._wal.entries()
        if not entries:
            return
        self._replaying = True
        replayed = skipped = failed = 0
        try:
            for entry in entries:
                shard = self._shards[int(entry["shard"])]  # type: ignore[arg-type]
                image_id = str(entry["image_id"])
                version = int(entry["version"])  # type: ignore[arg-type]
                lsn = entry.get("lsn")
                with shard.lock.write_locked():
                    try:
                        applied = self._replay_entry(
                            shard, str(entry["op"]), image_id, entry
                        )
                    except DatabaseError as exc:
                        failed += 1
                        shard.replay_failures += 1
                        logger.warning(
                            "WAL replay: record lsn=%s (%s %r) failed to "
                            "apply (%s); skipping — the live apply was "
                            "rejected the same way",
                            lsn,
                            entry["op"],
                            image_id,
                            exc,
                        )
                        # The structured twin of the warning above: the
                        # record's full identity — shard, LSN, op, and
                        # the rejecting error — lands in the event log
                        # where it is filterable and joinable.
                        self.events.emit(
                            "wal.replay_failed",
                            subsystem="wal",
                            shard=shard.index,
                            image_id=image_id,
                            lsn=int(lsn) if lsn is not None else None,  # type: ignore[arg-type]
                            trace_id=entry.get("trace_id"),  # type: ignore[arg-type]
                            op=str(entry["op"]),
                            error=str(exc),
                        )
                    else:
                        if applied:
                            replayed += 1
                        else:
                            skipped += 1
                    shard.version = max(shard.version, version)
                    if lsn is not None:
                        shard.last_lsn = int(lsn)  # type: ignore[arg-type]
        finally:
            self._replaying = False
        self.metrics.increment("wal.replayed", replayed)
        self.metrics.increment("wal.replay_skipped", skipped)
        self.metrics.increment("wal.replay_failed", failed)
        self.events.emit(
            "wal.replay",
            subsystem="wal",
            replayed=replayed,
            skipped=skipped,
            failed=failed,
        )
        logger.info(
            "WAL replay: %d record(s) applied, %d already present, "
            "%d rejected",
            replayed,
            skipped,
            failed,
        )

    # Replay's caller (_replay) holds the shard write lock around every
    # per-entry call; the appliers below are lock-free by contract.
    def _replay_entry(  # repro-lint: disable=AL002
        self,
        shard: _Shard,
        op: str,
        image_id: str,
        entry: Dict[str, object],
    ) -> bool:
        """Apply one WAL record to its shard; False when a no-op.

        Must only be called with ``shard.lock``'s write side held (the
        replayer's loop does this), which is why the mutator calls in
        the body carry a function-level AL002 pragma instead of taking
        the lock themselves.
        """
        catalog = shard.database.catalog
        present = catalog.contains(image_id)
        if op == "insert_image":
            if present:
                return False
            shard.database.insert_image(_decode_ppm(entry), image_id)
            self._placement[image_id] = shard.index
            self._note_allocated(image_id)
            return True
        if op == "insert_edited":
            if present:
                return False
            sequence = EditSequence.parse(str(entry["sequence"]))
            shard.database.insert_edited(sequence, image_id)
            self._placement[image_id] = shard.index
            self._note_allocated(image_id)
            return True
        if op == "delete_edited":
            if not present:
                return False
            shard.database.delete_edited(image_id)
            shard.materialized.pop(image_id, None)
            self._placement.pop(image_id, None)
            return True
        if op == "delete_image":
            if not present:
                return False
            shard.database.delete_image(image_id)
            self._placement.pop(image_id, None)
            return True
        if op == "update_image":
            if not present:
                return False
            shard.database.update_image(image_id, _decode_ppm(entry))
            return True
        if op == "compact":
            if not present:
                return False
            lo = np.array(entry["lo"], dtype=np.int64)
            hi = np.array(entry["hi"], dtype=np.int64)
            bounds: AllBinsBounds = (
                lo,
                hi,
                int(entry["height"]),  # type: ignore[arg-type]
                int(entry["width"]),  # type: ignore[arg-type]
            )
            shard.database.engine.invalidate(image_id)
            shard.database.engine.seed_bounds(image_id, bounds)
            shard.materialized[image_id] = 0.0
            lsn = entry.get("lsn")
            shard.last_compaction = {
                "image_id": image_id,
                "lsn": int(lsn) if lsn is not None else None,  # type: ignore[arg-type]
                "trace_id": entry.get("trace_id"),
            }
            self._refresh_materialized_gauge()
            return True
        if op == "decompact":
            if image_id not in shard.materialized:
                return False
            shard.database.engine.invalidate(image_id)
            shard.materialized.pop(image_id, None)
            self._refresh_materialized_gauge()
            return True
        if op == "change":
            # Out-of-band capture: nothing to re-apply (no payload), but
            # surface it — the change itself was lost with the process.
            self.metrics.increment("wal.unreplayable")
            logger.warning(
                "WAL change record for %r (shard %d) has no payload to "
                "replay; the out-of-band mutation did not survive the "
                "crash",
                image_id,
                shard.index,
            )
            return False
        raise ShardError(f"unknown WAL record kind {op!r} during replay")

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """What ``repro shards --status`` reports."""
        shards: List[Dict[str, object]] = []
        for shard in self._shards:
            with shard.lock.read_locked():
                summary = shard.database.structure_summary()
                shards.append(
                    {
                        "index": shard.index,
                        "binary_images": summary["binary_images"],
                        "edited_images": summary["edited_images"],
                        "version": shard.version,
                        "queries_served": shard.queries_served,
                        "materialized": sorted(shard.materialized),
                        "last_lsn": shard.last_lsn,
                        "replay_failures": shard.replay_failures,
                    }
                )
        wal_entries = len(self._wal.entries()) if self._wal is not None else 0
        return {
            "root": str(self.root) if self.root is not None else None,
            "shard_count": len(self._shards),
            "images": len(self._placement),
            "wal_entries": wal_entries,
            "shards": shards,
        }

    def describe_status(self) -> str:
        status = self.status()
        lines = [
            f"sharded catalog at {status['root'] or '<ephemeral>'}: "
            f"{status['shard_count']} shard(s), {status['images']} image(s), "
            f"{status['wal_entries']} WAL record(s) since checkpoint",
        ]
        for shard in status["shards"]:  # type: ignore[union-attr]
            assert isinstance(shard, dict)
            materialized = shard["materialized"]
            assert isinstance(materialized, list)
            lines.append(
                f"  shard {shard['index']}: {shard['binary_images']} binary "
                f"+ {shard['edited_images']} edited, "
                f"v{shard['version']}, {shard['queries_served']} queries, "
                f"{len(materialized)} materialized"
            )
        return "\n".join(lines)

    def wal_depth_by_shard(self) -> Dict[int, int]:
        """Unreplayed WAL records per shard index (health signal)."""
        if self._wal is None:
            return {}
        depths: Dict[int, int] = {}
        for entry in self._wal.entries():
            index = int(entry["shard"])  # type: ignore[arg-type]
            depths[index] = depths.get(index, 0) + 1
        return depths

    def health_signals(self) -> List[Dict[str, object]]:
        """Raw per-shard health inputs for the :class:`HealthMonitor`.

        Latency/lock-wait/work-unit distributions are *not* here — the
        monitor reads those from :meth:`metrics_snapshot`'s per-shard
        histograms; this returns the state-shaped signals (WAL depth,
        replay failures, compaction backlog) that have no histogram.
        """
        self._ensure_open()
        depths = self.wal_depth_by_shard()
        signals: List[Dict[str, object]] = []
        for shard in self._shards:
            with shard.lock.read_locked():
                edited = shard.database.catalog.edited_count
                signals.append(
                    {
                        "shard": shard.index,
                        "queries_served": shard.queries_served,
                        "replay_failures": shard.replay_failures,
                        "wal_depth": depths.get(shard.index, 0),
                        "backlog": max(0, edited - len(shard.materialized)),
                        "materialized": len(shard.materialized),
                        "last_lsn": shard.last_lsn,
                        "last_compaction": (
                            dict(shard.last_compaction)
                            if shard.last_compaction is not None
                            else None
                        ),
                    }
                )
        return signals

    def recent_queries(self, count: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent scatter-gather queries, oldest-first."""
        with self._recent_lock:
            entries = [dict(entry) for entry in self._recent_queries]
        if count is not None and count >= 0:
            entries = entries[-count:]
        return entries

    def metrics_snapshot(self) -> Dict[str, object]:
        snapshot = dict(self.metrics.snapshot())
        snapshot["events"] = self.events.stats()
        return {key: snapshot[key] for key in sorted(snapshot)}

    def prometheus_metrics(self) -> str:
        """The shard tier's metrics in Prometheus text exposition."""
        return render_prometheus(self.metrics_snapshot())

    def close(self) -> None:
        """Detach listeners/planners and stop the scatter pool."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            if shard.planner is not None:
                shard.planner.close()
        self._pool.shutdown(wait=True)
        self.events.close()

    def __enter__(self) -> "ShardedCatalog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Module helpers
# ----------------------------------------------------------------------
def _decode_ppm(entry: Dict[str, object]) -> Image:
    return read_ppm(base64.b64decode(str(entry["ppm"])))


def _read_shard_manifest(path: Path) -> Dict[str, object]:
    """Read and checksum-verify the shard layout manifest."""
    try:
        manifest = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"unreadable shard manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise PersistenceError(f"shard manifest {path} is not a JSON object")
    recorded = manifest.pop("manifest_sha256", None)
    canonical = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    if recorded != sha256_hex(canonical.encode("utf-8")):
        raise PersistenceError(
            f"shard manifest {path} failed its checksum (torn write or "
            f"hand edit); restore it or rebuild the root"
        )
    return manifest
