"""Sharded catalog tier: WAL-driven ingestion, scatter-gather, compaction.

ROADMAP item 2.  The single in-process :class:`~repro.db.database.
MultimediaDatabase` behind one RW lock is the scale bottleneck; this
package splits the catalog into N shards hashed by base-image cluster
(so Merge/BWM dependency chains never straddle shards), makes every
mutation durable through a write-ahead log *before* it is applied
(:mod:`repro.shard.wal` — the PR 6 journal style, and the replication
feed ROADMAP item 3 will consume), fans queries out across shards
merging k-best results (:class:`ShardedCatalog`), and runs a
cost-aware background :class:`Compactor` that materializes the BOUNDS
matrices of hot/long edit sequences — trading the paper's storage
savings back for query-time speed once a sequence is walked often
enough.
"""

from repro.shard.compactor import (
    CompactionPolicy,
    CompactionReport,
    Compactor,
)
from repro.shard.sharded import (
    ROUTER_STRATEGIES,
    SHARD_MANIFEST_NAME,
    ShardedCatalog,
    hash_shard,
    shard_dirname,
)
from repro.shard.wal import WAL_NAME, ShardWAL, wal_record_kinds

__all__ = [
    "CompactionPolicy",
    "CompactionReport",
    "Compactor",
    "ROUTER_STRATEGIES",
    "SHARD_MANIFEST_NAME",
    "ShardWAL",
    "ShardedCatalog",
    "WAL_NAME",
    "hash_shard",
    "shard_dirname",
    "wal_record_kinds",
]
