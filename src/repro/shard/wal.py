"""The shard write-ahead log: append-only, checksummed JSONL.

Every :class:`~repro.shard.sharded.ShardedCatalog` mutation is appended
here **before** it is applied to the owning shard, which is what makes
streaming ingestion durable: a crash between append and apply replays
the record on open; a crash mid-append leaves a torn tail that replay
detects and drops.  The format deliberately matches the PR 6 migration
journal line discipline — canonical JSON per line, each carrying
``line_sha256`` over its own canonical form — because ROADMAP item 3's
read replicas will tail this same file, and a self-verifying line
protocol is what lets a replica resume from any byte offset it last
fsynced.

Record shape
------------
Every record carries::

    lsn        log sequence number (1-based, monotonically increasing)
    op         one of the kinds below
    shard      owning shard index
    image_id   the mutated id
    version    the shard-local version the mutation commits

plus an op-specific payload:

``insert_image`` / ``update_image``
    ``ppm``: the raster as base64 of its binary PPM encoding.
``insert_edited``
    ``sequence``: the edit sequence in its text serialization.
``delete_image`` / ``delete_edited``
    no payload.
``compact`` / ``decompact``
    the compactor's materialized all-bins matrix (``lo``/``hi`` int
    lists plus ``height``/``width``) or its retraction.
``change``
    an out-of-band catalog change observed through the bounds engine's
    invalidation feed that did not come through the sharded wrapper —
    recorded so replicas learn to drop caches, but carrying no payload
    to re-apply.

Appends go through a fault plan (:mod:`repro.testing.faults`): append
and fsync are separate kill points, and ``tests/shard/
test_wal_replay_faults.py`` sweeps a crash over every one.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.db.versioning import sha256_hex
from repro.errors import CorruptionError
from repro.testing.faults import NoFaults

logger = logging.getLogger(__name__)

WAL_NAME = "shard.wal"

#: Every record kind the replayer understands, in no particular order.
_RECORD_KINDS: Tuple[str, ...] = (
    "insert_image",
    "insert_edited",
    "delete_image",
    "delete_edited",
    "update_image",
    "compact",
    "decompact",
    "change",
)


def wal_record_kinds() -> Tuple[str, ...]:
    """The record kinds a WAL consumer must handle (for replicas)."""
    return _RECORD_KINDS


class ShardWAL:
    """Append-only, per-line-checksummed log of shard mutations.

    Lines are canonical JSON objects; each carries ``line_sha256`` over
    its own canonical form (sans the field).  Appends go through the
    fault plan (append + fsync are separate kill points).  Replay
    tolerates exactly one damaged line *at the tail* — the torn-append
    crash shape — and treats damage anywhere else as corruption.

    Thread-safe: mutations on different shards hold different per-shard
    write locks but share this one log, and the compactor and the
    out-of-band listener append from their own threads, so appends,
    resets, and the LSN counter serialize on an internal lock — LSNs
    stay unique and monotonic, and no append can interleave with the
    torn-tail truncation of another.
    """

    def __init__(self, base: Path) -> None:
        self.path = Path(base) / WAL_NAME
        self._next_lsn: Optional[int] = None
        # Reentrant because _allocate_lsn bootstraps the counter by
        # calling entries() from inside the append critical section.
        self._lock = threading.RLock()

    def exists(self) -> bool:
        return self.path.is_file()

    # ------------------------------------------------------------------
    def append(
        self,
        plan: NoFaults,
        op: str,
        *,
        shard: int,
        image_id: str,
        version: int,
        **payload: object,
    ) -> Dict[str, object]:
        """Durably append one mutation record; returns the full entry."""
        if op not in _RECORD_KINDS:
            raise CorruptionError(f"unknown WAL record kind {op!r}")
        with self._lock:
            self._truncate_torn_tail()
            entry: Dict[str, object] = {
                "lsn": self._allocate_lsn(),
                "op": op,
                "shard": shard,
                "image_id": image_id,
                "version": version,
                **payload,
            }
            canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
            entry["line_sha256"] = sha256_hex(canonical.encode("utf-8"))
            line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
            plan.append_bytes(self.path, line.encode("utf-8") + b"\n")
            # The append-before-apply discipline requires fsyncs to land
            # in LSN order; releasing the lock here could interleave a
            # later record's durability ahead of this one's.
            plan.fsync(self.path)  # repro-lint: disable=CC002
            return entry

    def entries(self) -> List[Dict[str, object]]:
        """Verified WAL entries in append order; a torn final line is dropped."""
        if not self.exists():
            return []
        try:
            with self._lock:
                raw_lines = self.path.read_bytes().split(b"\n")
        except OSError as exc:
            raise CorruptionError(f"unreadable WAL {self.path}: {exc}") from exc
        lines = [line for line in raw_lines if line.strip()]
        entries: List[Dict[str, object]] = []
        for index, line in enumerate(lines):
            entry = self._verify_line(line)
            if entry is None:
                if index == len(lines) - 1:
                    logger.warning(
                        "dropping torn tail line of %s (crash mid-append)",
                        self.path,
                    )
                    break
                raise CorruptionError(
                    f"{self.path}: damaged WAL line {index + 1} of "
                    f"{len(lines)} (not a torn tail; refusing to guess)"
                )
            entries.append(entry)
        return entries

    def reset(self, plan: NoFaults) -> None:
        """Truncate the log after a checkpoint made every entry durable.

        Called by :meth:`~repro.shard.sharded.ShardedCatalog.save` once
        each shard's segment root holds the state the log describes.  A
        crash before the truncate just replays records whose effects are
        already present — replay is idempotent, so the state converges.
        """
        with self._lock:
            plan.write_bytes(self.path, b"")
            # The truncate must not race an in-flight append: a record
            # fsynced after the truncate's fsync but before _next_lsn is
            # reset would survive with a stale LSN.
            plan.fsync(self.path)  # repro-lint: disable=CC002
            self._next_lsn = 1

    # ------------------------------------------------------------------
    def _allocate_lsn(self) -> int:
        if self._next_lsn is None:
            entries = self.entries()
            last = int(entries[-1]["lsn"]) if entries else 0  # type: ignore[arg-type]
            self._next_lsn = last + 1
        lsn = self._next_lsn
        self._next_lsn += 1
        return lsn

    def _truncate_torn_tail(self) -> None:
        """Cut an unterminated final line before appending a new one.

        A crash mid-append leaves a newline-less prefix at the tail;
        appending straight after it would glue two lines into one
        garbage line *mid-file*, which replay rightly refuses.  The
        truncation is recovery of already-damaged state, not a durable
        protocol step, so it does not go through the fault plan.

        The check runs on every append but stays O(1): only the file's
        final byte is inspected (every committed line ends in a
        newline), and the full scan for the last terminator happens
        only in the rare already-damaged case.
        """
        if not self.path.is_file():
            return
        with open(self.path, "rb") as handle:
            if handle.seek(0, os.SEEK_END) == 0:
                return
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
        keep = data.rfind(b"\n") + 1
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    @staticmethod
    def _verify_line(line: bytes) -> Optional[Dict[str, object]]:
        try:
            entry = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict):
            return None
        recorded = entry.pop("line_sha256", None)
        canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        if recorded != sha256_hex(canonical.encode("utf-8")):
            return None
        return entry

    def remove(self) -> None:
        self.path.unlink(missing_ok=True)
