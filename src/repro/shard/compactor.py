"""Cost-aware background compaction of hot, long edit sequences.

The §5 cost model says an edited image costs its sequence length in
Table 1 rule applications every time a query's BOUNDS walk reaches it
cold.  The compactor turns that recurring cost into a one-time one: it
picks the sequences worth the space — long chains on shards that are
actually serving queries, in color regions the catalog is dense in —
computes their exact all-bins BOUNDS matrices off the query path, and
swaps each matrix into the owning shard's engine cache under the shard
write lock.  The swap is journaled to the WAL (a ``compact`` record
carrying the matrix) so a re-opened catalog is warm immediately, fires
the invalidation feed so planners and result caches drop stale state,
and is rollbackable (``decompact``).

Materialization never changes results: the engine's vector cache is
consulted transparently by both the scalar and vectorized query paths,
and the matrix seeded is the exact one a cold walk would compute — the
parity tests in ``tests/shard/test_compactor.py`` assert byte-identical
query results with the compactor on and off.

Scoring
-------
For an edited image with an ``n``-op sequence on a shard that has
served ``q`` queries::

    score = q x n x COST_RULE x demand_weight

``demand_weight`` leans on :class:`repro.db.statistics.DatabaseStatistics`:
the estimated fraction of catalog images with meaningful mass in the
candidate's base dominant bin.  A dense color region means range
queries on those bins keep visiting the cluster, so its long sequences
pay off first; a lonely region decays toward the floor weight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import BoundsEngine
from repro.db.records import EditedImageRecord
from repro.db.statistics import DatabaseStatistics
from repro.errors import QueryError, ShardError
from repro.obs.trace import maybe_tracer
from repro.service.planner import CostBasedPlanner
from repro.shard.sharded import ShardedCatalog, _Shard

#: Weight floor so sparse color regions still compact eventually.
_WEIGHT_FLOOR = 0.25

#: "Meaningful mass" threshold for the demand estimate: the fraction of
#: catalog images holding at least this much of the candidate's
#: dominant bin.
_DOMINANT_MASS = 0.10


@dataclass(frozen=True)
class CompactionPolicy:
    """What the compactor considers worth materializing.

    Parameters
    ----------
    min_ops:
        Sequences shorter than this are never materialized — a one-op
        sequence costs one rule per walk, which the memo cache already
        amortizes well.
    max_per_cycle:
        Materializations per :meth:`Compactor.run_once` across all
        shards, so one cycle's write-lock time stays bounded.
    min_score:
        Candidates scoring below this are left alone (a shard that has
        served no queries scores 0 — nothing compacts until demand
        exists).
    require_demand:
        When True (default), shards that have served no queries are not
        compacted at all — the background loop only spends write-lock
        time where reads are happening.  ``repro shards --compact-now``
        sets it False: an operator asking for a cycle wants the matrices
        built now, ahead of the demand.
    """

    min_ops: int = 2
    max_per_cycle: int = 4
    min_score: float = 1.0
    require_demand: bool = True

    def __post_init__(self) -> None:
        if self.min_ops < 1:
            raise ShardError(f"min_ops must be >= 1, got {self.min_ops}")
        if self.max_per_cycle < 1:
            raise ShardError(
                f"max_per_cycle must be >= 1, got {self.max_per_cycle}"
            )


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction cycle did."""

    candidates_considered: int
    materialized: Tuple[str, ...]
    skipped_stale: int
    projected_saving: float


@dataclass(frozen=True)
class _Candidate:
    shard_index: int
    image_id: str
    score: float
    shard_version: int


@dataclass
class _CompactorState:
    cycles: int = 0
    total_materialized: int = 0
    last_report: Optional[CompactionReport] = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class Compactor:
    """Background materializer for a :class:`ShardedCatalog`.

    Run it as a daemon thread (:meth:`start` / :meth:`stop`) or drive
    cycles synchronously with :meth:`run_once` (what the CLI's
    ``repro shards --compact-now`` and the benchmarks do).

    Every commit happens under the owning shard's write lock and only
    after re-checking the shard version recorded when the candidate was
    scored — a mutation that slipped in between invalidates the scratch
    matrix, so the commit is skipped rather than published stale.
    """

    def __init__(
        self,
        catalog: ShardedCatalog,
        policy: Optional[CompactionPolicy] = None,
        interval: float = 0.25,
    ) -> None:
        if interval <= 0:
            raise ShardError(f"interval must be positive, got {interval}")
        self.catalog = catalog
        self.policy = policy if policy is not None else CompactionPolicy()
        self.interval = interval
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._state = _CompactorState()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="shard-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the background loop and join the thread."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.run_once()
            except ShardError:
                # The catalog closed underneath us; the loop is done.
                return

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def run_once(self) -> CompactionReport:
        """Score, materialize, commit — one bounded compaction cycle."""
        tracer = maybe_tracer("compaction")
        with tracer.span("compaction.cycle"):
            with tracer.span("compaction.score"):
                candidates = self._score_candidates()
            chosen = candidates[: self.policy.max_per_cycle]
            materialized: List[str] = []
            skipped_stale = 0
            projected_total = 0.0
            # Our own commits bump shard versions; track them so later
            # same-shard candidates in this cycle are not self-staled.
            own_bumps: Dict[int, int] = {}
            for candidate in chosen:
                expected = candidate.shard_version + own_bumps.get(
                    candidate.shard_index, 0
                )
                with tracer.span(
                    "compaction.materialize", image_id=candidate.image_id
                ):
                    committed = self._materialize(candidate, expected)
                if committed:
                    own_bumps[candidate.shard_index] = (
                        own_bumps.get(candidate.shard_index, 0) + 1
                    )
                    materialized.append(candidate.image_id)
                    projected_total += candidate.score
                else:
                    skipped_stale += 1
        self.catalog.metrics.increment("compaction.runs")
        if skipped_stale:
            self.catalog.metrics.increment(
                "compaction.skipped_stale", skipped_stale
            )
        report = CompactionReport(
            candidates_considered=len(candidates),
            materialized=tuple(materialized),
            skipped_stale=skipped_stale,
            projected_saving=projected_total,
        )
        # One wide event per cycle, carrying the cycle's trace id — the
        # same id the per-image ``compaction.materialized`` events and
        # ``compact`` WAL records were stamped with, so the whole cycle
        # reassembles from the event log alone.
        self.catalog.events.emit(
            "compaction.cycle",
            subsystem="compactor",
            trace_id=tracer.trace_id,
            candidates=len(candidates),
            materialized=len(materialized),
            skipped_stale=skipped_stale,
            projected_saving=round(projected_total, 3),
        )
        with self._state.lock:
            self._state.cycles += 1
            self._state.total_materialized += len(materialized)
            self._state.last_report = report
        return report

    def rollback(self, image_id: str) -> bool:
        """Retract one materialization; True if it existed."""
        return self.catalog.rollback_materialization(image_id)

    def status(self) -> Dict[str, object]:
        """Cycle counters plus the last report, for the CLI."""
        with self._state.lock:
            last = self._state.last_report
            return {
                "running": self._thread is not None
                and self._thread.is_alive(),
                "cycles": self._state.cycles,
                "total_materialized": self._state.total_materialized,
                "last_report": None
                if last is None
                else {
                    "candidates_considered": last.candidates_considered,
                    "materialized": list(last.materialized),
                    "skipped_stale": last.skipped_stale,
                    "projected_saving": last.projected_saving,
                },
            }

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_candidates(self) -> List[_Candidate]:
        candidates: List[_Candidate] = []
        for shard in self.catalog._shards:
            with shard.lock.read_locked():
                if shard.queries_served == 0 and self.policy.require_demand:
                    continue
                hotness = max(1, shard.queries_served)
                statistics = DatabaseStatistics(shard.database)
                for image_id in shard.database.catalog.edited_ids():
                    if image_id in shard.materialized:
                        continue
                    record = shard.database.catalog.edited_record(image_id)
                    ops = len(record.sequence)
                    if ops < self.policy.min_ops:
                        continue
                    weight = self._demand_weight(shard, record, statistics)
                    score = (
                        hotness * ops * CostBasedPlanner.COST_RULE * weight
                    )
                    if score < self.policy.min_score:
                        continue
                    candidates.append(
                        _Candidate(shard.index, image_id, score, shard.version)
                    )
        candidates.sort(key=lambda c: (-c.score, c.shard_index, c.image_id))
        return candidates

    @staticmethod
    def _demand_weight(
        shard: _Shard,
        record: EditedImageRecord,
        statistics: DatabaseStatistics,
    ) -> float:
        """How much of the catalog shares the candidate's color region."""
        try:
            histogram = shard.database.catalog.histogram_of(
                record.sequence.base_id
            )
        except Exception:  # base may be edited too; fall back to neutral
            return 1.0
        fractions = histogram.fractions()
        dominant = int(fractions.argmax())
        try:
            selectivity = statistics.bin_statistics(
                dominant
            ).estimate_selectivity(_DOMINANT_MASS, 1.0)
        except QueryError:
            return 1.0
        return max(_WEIGHT_FLOOR, float(selectivity))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _materialize(self, candidate: _Candidate, expected_version: int) -> bool:
        """Compute off-path, re-check the version, commit under lock."""
        shard = self.catalog._shards[candidate.shard_index]
        # Scratch engine: exact, uncached walk against the live catalog,
        # under the read lock so no mutation shifts the ground mid-walk.
        with shard.lock.read_locked():
            if shard.version != expected_version:
                return False
            scratch = BoundsEngine(
                shard.database.catalog,
                self.catalog.quantizer,
                fill_color=self.catalog.fill_color,
                cache_enabled=False,
            )
            bounds = scratch.bounds_all_bins(candidate.image_id)
        with shard.lock.write_locked():
            if shard.version != expected_version:
                # A writer slipped in between our read and write locks;
                # the matrix may describe a history that no longer
                # exists.  Drop it — the next cycle re-scores.
                return False
            self.catalog._commit_materialization(
                shard, candidate.image_id, bounds, candidate.score
            )
        return True
