"""Directory persistence for a :class:`MultimediaDatabase`.

Layout mirrors the paper's prototype (ppm files plus operation lists,
no commercial DBMS underneath)::

    <root>/
      catalog.json          manifest: config, insertion order, checksums
      binary/<id>.ppm       rasters (binary P6 ppm)
      edited/<id>.eseq      serialized edit sequences

Loading replays insertions in the recorded order, so histograms, the BWM
structure, and the histogram index are rebuilt exactly.

Durability protocol (format version 2)
--------------------------------------
:func:`save_database` never mutates the target directory in place.  The
complete new state is written to a ``<root>.saving`` sibling first, the
manifest (carrying a SHA-256 per content file plus a whole-manifest
checksum) is written last inside it, and the result is committed by
renames: ``<root>`` -> ``<root>.old``, ``<root>.saving`` -> ``<root>``,
then the backup is pruned.  A crash at any boundary therefore leaves
either the previous complete state, the new complete state, or a
``.old`` backup that :func:`load_database` rolls back automatically.
Orphaned content files from deleted images cannot survive a save, since
only the current catalog is ever written to the fresh directory.

Every durable side effect is routed through a fault plan
(:mod:`repro.testing.faults`), so the kill-point sweep in
``tests/db/test_faults.py`` can crash the protocol at every boundary.

:func:`load_database` verifies checksums and wraps any damage in
:class:`repro.errors.CorruptionError` naming the offending file; with
``salvage=True`` it instead quarantines damaged records (and everything
transitively derived from them), rebuilds the database from the
survivors, and returns a :class:`SalvageReport` of exactly what was lost
and why.
"""

from __future__ import annotations

import hashlib
import json
import logging
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.color.quantization import UniformQuantizer
from repro.db.database import MultimediaDatabase
from repro.editing.sequence import EditSequence
from repro.errors import (
    CorruptionError,
    PersistenceError,
    ReproError,
    SalvageError,
)
from repro.images.ppm import read_ppm, write_ppm
from repro.testing.faults import NoFaults

logger = logging.getLogger(__name__)

_FORMAT_VERSION = 2
#: Versions this loader understands.  Version 1 predates checksums and
#: atomic commits; its directories still load (without verification).
_SUPPORTED_VERSIONS = (1, 2)

_TMP_SUFFIX = ".saving"
_OLD_SUFFIX = ".old"


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _manifest_checksum(manifest: Dict[str, object]) -> str:
    """Checksum over the manifest's canonical JSON, sans the field itself."""
    stripped = {k: v for k, v in manifest.items() if k != "manifest_checksum"}
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return _sha256(canonical.encode("utf-8"))


# ----------------------------------------------------------------------
# Salvage reporting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuarantineEntry:
    """One record excluded by salvage loading, with the reason."""

    image_id: str
    path: Optional[str]
    reason: str

    def describe(self) -> str:
        where = f" ({self.path})" if self.path else ""
        return f"{self.image_id}{where}: {self.reason}"


@dataclass
class SalvageReport:
    """What :func:`load_database` with ``salvage=True`` lost, and why."""

    root: str
    quarantined: List[QuarantineEntry] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    loaded_binary: int = 0
    loaded_edited: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was lost and nothing looked suspicious."""
        return not self.quarantined and not self.warnings

    def quarantined_ids(self) -> Tuple[str, ...]:
        return tuple(entry.image_id for entry in self.quarantined)

    def describe(self) -> str:
        lines = [
            f"salvage of {self.root}: recovered {self.loaded_binary} binary + "
            f"{self.loaded_edited} edited images, "
            f"{len(self.quarantined)} quarantined"
        ]
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        for entry in self.quarantined:
            lines.append(f"  lost {entry.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def save_database(
    database: MultimediaDatabase,
    root: Union[str, Path],
    faults: Optional[NoFaults] = None,
    checksums: bool = True,
) -> Path:
    """Atomically write the database under ``root`` (created if missing).

    ``faults`` is the durability seam: every file write and commit
    rename goes through it (tests inject crashes; production uses the
    default pass-through plan).  ``checksums=False`` skips the SHA-256
    bookkeeping — measurably faster on large databases, at the price of
    load-time verification (the persistence benchmark tracks the gap).
    """
    plan = faults if faults is not None else NoFaults()
    base = Path(root)
    _recover_interrupted_save(base)

    tmp = base.with_name(base.name + _TMP_SUFFIX)
    old = base.with_name(base.name + _OLD_SUFFIX)
    for leftover in (tmp, old):
        if leftover.exists():
            shutil.rmtree(leftover)

    binary_dir = tmp / "binary"
    edited_dir = tmp / "edited"
    binary_dir.mkdir(parents=True)
    edited_dir.mkdir(parents=True)

    files: Dict[str, Dict[str, object]] = {}

    def _emit(relative: str, payload: bytes) -> None:
        plan.write_bytes(tmp / relative, payload)
        if checksums:
            files[relative] = {"sha256": _sha256(payload), "bytes": len(payload)}

    binary_ids = list(database.catalog.binary_ids())
    edited_ids = list(database.catalog.edited_ids())
    for image_id in binary_ids:
        record = database.catalog.binary_record(image_id)
        _emit(f"binary/{image_id}.ppm", write_ppm(record.image))
    for image_id in edited_ids:
        record = database.catalog.edited_record(image_id)
        _emit(
            f"edited/{image_id}.eseq",
            record.sequence.serialize().encode("utf-8"),
        )

    manifest: Dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "quantizer": {
            "divisions": database.quantizer.divisions,
            "space": database.quantizer.space,
        },
        "fill_color": list(database.fill_color),
        "binary_ids": binary_ids,
        "edited_ids": edited_ids,
        "files": files,
    }
    manifest["manifest_checksum"] = _manifest_checksum(manifest)
    plan.write_bytes(
        tmp / "catalog.json",
        json.dumps(manifest, indent=2).encode("utf-8"),
    )

    # Commit.  Renames are atomic on POSIX; a crash between them leaves
    # the ``.old`` backup that load-time recovery rolls back.
    if base.exists():
        plan.rename(base, old)
        plan.rename(tmp, base)
        shutil.rmtree(old)
    else:
        plan.rename(tmp, base)
    return base


def _recover_interrupted_save(base: Path) -> None:
    """Roll back a save that crashed between its two commit renames.

    At that point ``base`` is gone and ``base.old`` holds the previous
    complete state; restore it.  When ``base`` is present and loadable
    the ``.old``/``.saving`` siblings are just stale debris (crash after
    commit) — they are ignored here and pruned by the next save.
    """
    old = base.with_name(base.name + _OLD_SUFFIX)
    if not (old / "catalog.json").is_file():
        return
    if base.exists():
        if (base / "catalog.json").is_file():
            return  # base is authoritative; .old is post-commit debris
        # A bare directory with no manifest cannot be a committed state
        # of ours; clear it so the backup can take its place.
        shutil.rmtree(base)
    logger.warning(
        "rolled back interrupted save: restored %s from backup %s", base, old
    )
    old.replace(base)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_database(
    root: Union[str, Path],
    salvage: bool = False,
) -> Union[MultimediaDatabase, Tuple[MultimediaDatabase, SalvageReport]]:
    """Rebuild a database saved by :func:`save_database`.

    Strict mode (the default) raises :class:`PersistenceError` — or its
    :class:`CorruptionError` subclass, naming the damaged file — on any
    inconsistency.  With ``salvage=True`` it quarantines damaged records
    plus everything transitively derived from them and returns the
    ``(database, report)`` pair; only an unusable manifest (nothing to
    anchor recovery on) raises :class:`SalvageError`.

    Either mode first rolls back a save that crashed mid-commit, so a
    directory with a ``.old`` backup loads as the previous state.
    """
    base = Path(root)
    _recover_interrupted_save(base)
    manifest = _read_manifest(base, salvage=salvage)

    report = SalvageReport(root=str(base))
    if salvage and manifest.pop("_checksum_warning", None):
        logger.warning(
            "salvage of %s: manifest checksum mismatch; contents unverified",
            base,
        )
        report.warnings.append("manifest checksum mismatch; contents unverified")

    try:
        quantizer = UniformQuantizer(
            divisions=int(manifest["quantizer"]["divisions"]),
            space=str(manifest["quantizer"]["space"]),
        )
        fill_color = tuple(manifest["fill_color"])
        binary_ids = list(manifest["binary_ids"])
        edited_ids = list(manifest["edited_ids"])
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise _manifest_error(base, exc, salvage) from exc
    files = manifest.get("files", {})
    if not isinstance(files, dict):
        files = {}

    try:
        database = MultimediaDatabase(quantizer=quantizer, fill_color=fill_color)
    except ReproError as exc:
        raise _manifest_error(base, exc, salvage) from exc

    available = set()
    for image_id in binary_ids:
        relative = f"binary/{image_id}.ppm"
        try:
            payload = _read_verified(base, relative, files)
            database.insert_image(read_ppm(payload), image_id=image_id)
        except (PersistenceError, ReproError, OSError, ValueError) as exc:
            _reject(report, image_id, base / relative, exc, salvage)
            continue
        available.add(image_id)
        report.loaded_binary += 1

    for image_id in edited_ids:
        relative = f"edited/{image_id}.eseq"
        try:
            payload = _read_verified(base, relative, files)
            sequence = EditSequence.parse(payload.decode("utf-8"))
        except (PersistenceError, ReproError, OSError, ValueError) as exc:
            _reject(report, image_id, base / relative, exc, salvage)
            continue
        missing = [r for r in sequence.referenced_ids() if r not in available]
        if missing:
            # Strict mode surfaces the same condition as a corrupt
            # sequence file; salvage records the transitive loss.
            exc = CorruptionError(
                f"{base / relative}: references unrecoverable image(s) "
                f"{sorted(missing)}"
            )
            _reject(report, image_id, base / relative, exc, salvage)
            continue
        try:
            database.insert_edited(sequence, image_id=image_id)
        except ReproError as exc:
            _reject(report, image_id, base / relative, exc, salvage)
            continue
        available.add(image_id)
        report.loaded_edited += 1

    if salvage:
        return database, report
    return database


def _read_manifest(base: Path, salvage: bool) -> Dict[str, object]:
    manifest_path = base / "catalog.json"
    if not manifest_path.is_file():
        message = f"no catalog.json under {base}"
        raise SalvageError(message) if salvage else PersistenceError(message)
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        message = f"corrupt catalog.json under {base}: {exc}"
        error = SalvageError(message) if salvage else CorruptionError(message)
        raise error from exc
    if not isinstance(manifest, dict):
        message = f"corrupt catalog.json under {base}: not a JSON object"
        raise SalvageError(message) if salvage else CorruptionError(message)

    version = manifest.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        message = f"unsupported format version {version!r} under {base}"
        raise SalvageError(message) if salvage else PersistenceError(message)

    recorded = manifest.get("manifest_checksum")
    if recorded is not None and recorded != _manifest_checksum(manifest):
        if not salvage:
            raise CorruptionError(
                f"{manifest_path}: manifest checksum mismatch "
                "(catalog.json was modified or torn)"
            )
        manifest["_checksum_warning"] = True
    return manifest


def _manifest_error(base: Path, exc: Exception, salvage: bool) -> PersistenceError:
    message = f"malformed manifest under {base}: {exc}"
    return SalvageError(message) if salvage else PersistenceError(message)


def _read_verified(
    base: Path, relative: str, files: Dict[str, Dict[str, object]]
) -> bytes:
    """Read a content file, verifying its recorded checksum if any."""
    path = base / relative
    if not path.is_file():
        raise PersistenceError(f"missing file {path}")
    try:
        payload = path.read_bytes()
    except OSError as exc:
        raise CorruptionError(f"unreadable file {path}: {exc}") from exc
    recorded = files.get(relative)
    if recorded is not None:
        expected = recorded.get("sha256")
        if expected is not None and _sha256(payload) != expected:
            raise CorruptionError(
                f"checksum mismatch for {path} "
                f"({len(payload)} bytes on disk; file is damaged)"
            )
    return payload


def _reject(
    report: SalvageReport,
    image_id: str,
    path: Path,
    exc: Exception,
    salvage: bool,
) -> None:
    """Quarantine in salvage mode; re-raise (wrapped) in strict mode."""
    if salvage:
        logger.warning("salvage quarantined %s (%s): %s", image_id, path, exc)
        report.quarantined.append(
            QuarantineEntry(image_id=image_id, path=str(path), reason=str(exc))
        )
        return
    if isinstance(exc, PersistenceError):
        raise exc
    raise CorruptionError(f"{path}: {exc}") from exc
