"""Directory persistence for a :class:`MultimediaDatabase`.

Layout mirrors the paper's prototype (ppm files plus operation lists,
no commercial DBMS underneath)::

    <root>/
      catalog.json          quantizer config, fill color, insertion order
      binary/<id>.ppm       rasters (binary P6 ppm)
      edited/<id>.eseq      serialized edit sequences

Loading replays insertions in the recorded order, so histograms, the BWM
structure, and the histogram index are rebuilt exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.color.quantization import UniformQuantizer
from repro.db.database import MultimediaDatabase
from repro.editing.sequence import EditSequence
from repro.errors import PersistenceError
from repro.images.ppm import read_ppm, write_ppm

_FORMAT_VERSION = 1


def save_database(database: MultimediaDatabase, root: Union[str, Path]) -> Path:
    """Write the database under ``root`` (created if missing)."""
    base = Path(root)
    binary_dir = base / "binary"
    edited_dir = base / "edited"
    binary_dir.mkdir(parents=True, exist_ok=True)
    edited_dir.mkdir(parents=True, exist_ok=True)

    binary_ids = list(database.catalog.binary_ids())
    edited_ids = list(database.catalog.edited_ids())
    for image_id in binary_ids:
        record = database.catalog.binary_record(image_id)
        write_ppm(record.image, binary_dir / f"{image_id}.ppm")
    for image_id in edited_ids:
        record = database.catalog.edited_record(image_id)
        (edited_dir / f"{image_id}.eseq").write_text(
            record.sequence.serialize(), encoding="utf-8"
        )

    manifest = {
        "format_version": _FORMAT_VERSION,
        "quantizer": {
            "divisions": database.quantizer.divisions,
            "space": database.quantizer.space,
        },
        "fill_color": list(database.fill_color),
        "binary_ids": binary_ids,
        "edited_ids": edited_ids,
    }
    (base / "catalog.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return base


def load_database(root: Union[str, Path]) -> MultimediaDatabase:
    """Rebuild a database saved by :func:`save_database`."""
    base = Path(root)
    manifest_path = base / "catalog.json"
    if not manifest_path.is_file():
        raise PersistenceError(f"no catalog.json under {base}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"corrupt catalog.json: {exc}") from exc
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(f"unsupported format version {version!r}")

    quantizer = UniformQuantizer(
        divisions=int(manifest["quantizer"]["divisions"]),
        space=str(manifest["quantizer"]["space"]),
    )
    database = MultimediaDatabase(
        quantizer=quantizer, fill_color=tuple(manifest["fill_color"])
    )
    for image_id in manifest["binary_ids"]:
        path = base / "binary" / f"{image_id}.ppm"
        if not path.is_file():
            raise PersistenceError(f"missing raster file {path}")
        database.insert_image(read_ppm(path), image_id=image_id)
    for image_id in manifest["edited_ids"]:
        path = base / "edited" / f"{image_id}.eseq"
        if not path.is_file():
            raise PersistenceError(f"missing sequence file {path}")
        sequence = EditSequence.parse(path.read_text(encoding="utf-8"))
        database.insert_edited(sequence, image_id=image_id)
    return database
