"""Directory persistence for a :class:`MultimediaDatabase`.

Layout mirrors the paper's prototype (ppm files plus operation lists,
no commercial DBMS underneath)::

    <root>/
      catalog.json          manifest: config, insertion order, record table
      binary/<id>.ppm       rasters (binary P6 ppm) — v1/v2 records
      edited/<id>.eseq      serialized edit sequences — v1/v2 records
      segments/<id>.seg     self-verifying per-record segments — v3 records
      migration.journal     present only while an online migration is live

Loading replays insertions in the recorded order, so histograms, the BWM
structure, and the histogram index are rebuilt exactly.

Durability protocol (format versions 2 and 3)
---------------------------------------------
:func:`save_database` never mutates the target directory in place.  The
complete new state is written to a ``<root>.saving`` sibling first, the
manifest (carrying a SHA-256 per content file plus a whole-manifest
checksum) is written last inside it, and the result is committed by
renames: ``<root>`` -> ``<root>.old``, ``<root>.saving`` -> ``<root>``,
then the backup is pruned.  A crash at any boundary therefore leaves
either the previous complete state, the new complete state, or a
``.old`` backup that :func:`load_database` rolls back automatically.
Orphaned content files from deleted images cannot survive a save, since
only the current catalog is ever written to the fresh directory.

Version handling is delegated to :mod:`repro.db.versioning`: the
manifest declares a format version, every record row carries its own
segment version stamp, and each stamp resolves through the versioned
reader registry — so v1, v2, v3, and *mixed-version* catalogs (the
steady state while :mod:`repro.db.migration` rewrites segments in the
background) all load through the same code path.

Every durable side effect is routed through a fault plan
(:mod:`repro.testing.faults`), so the kill-point sweeps in
``tests/db/test_faults.py`` and ``tests/db/test_migration.py`` can
crash the protocols at every boundary.  An injected *I/O error*
(``ENOSPC``/``EIO``) instead of a crash is handled, not propagated raw:
the scratch directory is pruned, the previous committed state stays
untouched, and the failure surfaces as :class:`PersistenceError`.

In-process readers and writers of the same root are serialized by a
per-root commit lock: a loader racing a saver (or the migrator's
pointer swap) observes either the fully-old or the fully-new catalog,
never a half-renamed one.  Cross-*process* coordination is out of scope
(the crash-recovery protocol still protects those readers, at the cost
of a retry).

:func:`load_database` verifies checksums and wraps any damage in
:class:`repro.errors.CorruptionError` naming the offending file; with
``salvage=True`` it instead quarantines damaged records (and everything
transitively derived from them), rebuilds the database from the
survivors, and returns a :class:`SalvageReport` of exactly what was lost
and why.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.color.quantization import UniformQuantizer
from repro.db.database import MultimediaDatabase
from repro.db.versioning import (
    DEFAULT_SAVE_VERSION,
    SUPPORTED_VERSIONS,
    RecordPointer,
    encode_segment,
    ordered_pointers,
    pointers_from_v2_manifest,
    pointers_from_v3_manifest,
    read_record,
    segment_relpath,
    sha256_hex,
    v2_relpath,
)
from repro.editing.sequence import EditSequence
from repro.errors import (
    CorruptionError,
    PersistenceError,
    ReproError,
    SalvageError,
)
from repro.images.ppm import read_ppm, write_ppm
from repro.testing.faults import NoFaults

logger = logging.getLogger(__name__)

_TMP_SUFFIX = ".saving"
_OLD_SUFFIX = ".old"

#: Files under a root that are protocol state, not record content.
_JOURNAL_NAME = "migration.journal"

#: The shard layout manifest marking a *sharded* root (one segment root
#: per shard underneath).  Defined here so :func:`load_database` can
#: detect and redirect without importing :mod:`repro.shard` (which
#: imports this module).
SHARD_MANIFEST_NAME = "shards.json"


def manifest_checksum(manifest: Dict[str, object]) -> str:
    """Checksum over the manifest's canonical JSON, sans the field itself."""
    stripped = {k: v for k, v in manifest.items() if k != "manifest_checksum"}
    canonical = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return sha256_hex(canonical.encode("utf-8"))


# ----------------------------------------------------------------------
# Per-root commit locks — in-process reader/writer atomicity
# ----------------------------------------------------------------------
_ROOT_LOCKS: Dict[str, threading.Lock] = {}
_ROOT_LOCKS_GUARD = threading.Lock()


def root_lock(base: Union[str, Path]) -> threading.Lock:
    """The commit lock for one database root (one lock per absolute path).

    Held across a save's commit renames, a migration's manifest swap,
    and an entire load.  The registry is tiny (one entry per distinct
    root this process ever touches) and never pruned — a lock object is
    ~100 bytes and pruning would race its own users.
    """
    key = os.path.abspath(str(base))
    with _ROOT_LOCKS_GUARD:
        lock = _ROOT_LOCKS.get(key)
        if lock is None:
            lock = threading.Lock()
            _ROOT_LOCKS[key] = lock
        return lock


# ----------------------------------------------------------------------
# Salvage reporting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuarantineEntry:
    """One record excluded by salvage loading, with the reason."""

    image_id: str
    path: Optional[str]
    reason: str

    def describe(self) -> str:
        where = f" ({self.path})" if self.path else ""
        return f"{self.image_id}{where}: {self.reason}"


@dataclass
class SalvageReport:
    """What :func:`load_database` with ``salvage=True`` lost, and why."""

    root: str
    quarantined: List[QuarantineEntry] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    loaded_binary: int = 0
    loaded_edited: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was lost and nothing looked suspicious."""
        return not self.quarantined and not self.warnings

    def quarantined_ids(self) -> Tuple[str, ...]:
        return tuple(entry.image_id for entry in self.quarantined)

    def describe(self) -> str:
        lines = [
            f"salvage of {self.root}: recovered {self.loaded_binary} binary + "
            f"{self.loaded_edited} edited images, "
            f"{len(self.quarantined)} quarantined"
        ]
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        for entry in self.quarantined:
            lines.append(f"  lost {entry.describe()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def _existing_format_version(base: Path) -> Optional[int]:
    """The committed manifest's version, or ``None`` when unreadable."""
    try:
        manifest = json.loads(
            (base / "catalog.json").read_text(encoding="utf-8")
        )
        version = manifest.get("format_version")
        return int(version) if isinstance(version, int) else None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return None


def _record_payload(database: MultimediaDatabase, kind: str, image_id: str) -> bytes:
    if kind == "binary":
        return write_ppm(database.catalog.binary_record(image_id).image)
    return (
        database.catalog.edited_record(image_id)
        .sequence.serialize()
        .encode("utf-8")
    )


def save_database(
    database: MultimediaDatabase,
    root: Union[str, Path],
    faults: Optional[NoFaults] = None,
    checksums: bool = True,
    format_version: Optional[int] = None,
) -> Path:
    """Atomically write the database under ``root`` (created if missing).

    ``faults`` is the durability seam: every file write and commit
    rename goes through it (tests inject crashes or I/O errors; the
    default plan is the production pass-through).  ``checksums=False``
    skips the SHA-256 bookkeeping — measurably faster on large v2
    databases, at the price of load-time verification (v3 segments are
    always checksummed; their envelope needs the digest anyway).

    ``format_version`` selects the on-disk format: ``2`` (the current
    default), ``3`` (per-record segments), or ``None`` to *preserve* the
    version already committed at ``root`` — a repair re-save of a
    migrated catalog must not silently downgrade it.
    """
    plan = faults if faults is not None else NoFaults()
    base = Path(root)
    _recover_interrupted_save(base)

    if format_version is None:
        existing = _existing_format_version(base)
        format_version = 3 if existing == 3 else DEFAULT_SAVE_VERSION
    if format_version not in (2, 3):
        raise PersistenceError(
            f"cannot save format version {format_version!r} "
            "(writable versions: 2, 3)"
        )

    tmp = base.with_name(base.name + _TMP_SUFFIX)
    old = base.with_name(base.name + _OLD_SUFFIX)
    for leftover in (tmp, old):
        if leftover.exists():
            shutil.rmtree(leftover)

    try:
        if format_version == 3:
            _write_tree_v3(database, tmp, plan)
        else:
            _write_tree_v2(database, tmp, plan, checksums)
    except OSError as exc:
        # Injected or real I/O failure (ENOSPC, EIO): nothing has been
        # committed — prune the scratch tree and surface a typed error.
        shutil.rmtree(tmp, ignore_errors=True)
        raise PersistenceError(
            f"save of {base} failed before commit: {exc}"
        ) from exc

    # Commit.  Renames are atomic on POSIX; a crash between them leaves
    # the ``.old`` backup that load-time recovery rolls back.  The
    # per-root lock makes the swap atomic for in-process readers too.
    try:
        with root_lock(base):
            if base.exists():
                plan.rename(base, old)
                plan.rename(tmp, base)
            else:
                plan.rename(tmp, base)
    except OSError as exc:
        _recover_interrupted_save(base)  # undo a half-done swap
        shutil.rmtree(tmp, ignore_errors=True)
        raise PersistenceError(
            f"save of {base} failed during commit: {exc}"
        ) from exc
    shutil.rmtree(old, ignore_errors=True)
    return base


def _write_tree_v2(
    database: MultimediaDatabase, tmp: Path, plan: NoFaults, checksums: bool
) -> None:
    """The complete v2 state of ``database`` under the scratch dir."""
    (tmp / "binary").mkdir(parents=True)
    (tmp / "edited").mkdir(parents=True)

    files: Dict[str, Dict[str, object]] = {}
    binary_ids = list(database.catalog.binary_ids())
    edited_ids = list(database.catalog.edited_ids())
    for kind, ids in (("binary", binary_ids), ("edited", edited_ids)):
        for image_id in ids:
            relative = v2_relpath(kind, image_id)
            payload = _record_payload(database, kind, image_id)
            plan.write_bytes(tmp / relative, payload)
            if checksums:
                files[relative] = {
                    "sha256": sha256_hex(payload),
                    "bytes": len(payload),
                }

    manifest: Dict[str, object] = {
        "format_version": 2,
        "quantizer": {
            "divisions": database.quantizer.divisions,
            "space": database.quantizer.space,
        },
        "fill_color": list(database.fill_color),
        "binary_ids": binary_ids,
        "edited_ids": edited_ids,
        "files": files,
    }
    manifest["manifest_checksum"] = manifest_checksum(manifest)
    plan.write_bytes(
        tmp / "catalog.json",
        json.dumps(manifest, indent=2).encode("utf-8"),
    )


def _write_tree_v3(
    database: MultimediaDatabase, tmp: Path, plan: NoFaults
) -> None:
    """The complete v3 state: one self-verifying segment per record."""
    (tmp / "segments").mkdir(parents=True)

    records: Dict[str, Dict[str, object]] = {}
    binary_ids = list(database.catalog.binary_ids())
    edited_ids = list(database.catalog.edited_ids())
    for kind, ids in (("binary", binary_ids), ("edited", edited_ids)):
        for image_id in ids:
            payload = _record_payload(database, kind, image_id)
            relative = segment_relpath(image_id)
            plan.write_bytes(tmp / relative, encode_segment(image_id, kind, payload))
            records[image_id] = RecordPointer(
                image_id=image_id,
                kind=kind,
                segment_version=3,
                path=relative,
                sha256=sha256_hex(payload),
                size=len(payload),
            ).to_json()

    manifest: Dict[str, object] = {
        "format_version": 3,
        "quantizer": {
            "divisions": database.quantizer.divisions,
            "space": database.quantizer.space,
        },
        "fill_color": list(database.fill_color),
        "binary_ids": binary_ids,
        "edited_ids": edited_ids,
        "records": records,
    }
    manifest["manifest_checksum"] = manifest_checksum(manifest)
    plan.write_bytes(
        tmp / "catalog.json",
        json.dumps(manifest, indent=2).encode("utf-8"),
    )


def has_committed_state(root: Union[str, Path]) -> bool:
    """Whether ``root`` holds a loadable committed save.

    Counts the ``.old`` backup a crash between the two commit renames
    leaves behind (``root`` itself is momentarily absent then):
    :func:`load_database` rolls the backup back, so such a root is
    loadable, not empty.  Callers that treat "no directory" as "nothing
    was ever saved here" — the sharded catalog's opener — must use this
    instead of a bare ``is_dir()`` check or they silently discard the
    recoverable state.
    """
    base = Path(root)
    if (base / "catalog.json").is_file():
        return True
    old = base.with_name(base.name + _OLD_SUFFIX)
    return (old / "catalog.json").is_file()


def _recover_interrupted_save(base: Path) -> None:
    """Roll back a save that crashed between its two commit renames.

    At that point ``base`` is gone and ``base.old`` holds the previous
    complete state; restore it.  When ``base`` is present and loadable
    the ``.old``/``.saving`` siblings are just stale debris (crash after
    commit) — they are ignored here and pruned by the next save.
    """
    old = base.with_name(base.name + _OLD_SUFFIX)
    if not (old / "catalog.json").is_file():
        return
    if base.exists():
        if (base / "catalog.json").is_file():
            return  # base is authoritative; .old is post-commit debris
        # A bare directory with no manifest cannot be a committed state
        # of ours; clear it so the backup can take its place.
        shutil.rmtree(base)
    logger.warning(
        "rolled back interrupted save: restored %s from backup %s", base, old
    )
    old.replace(base)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_database(
    root: Union[str, Path],
    salvage: bool = False,
) -> Union[MultimediaDatabase, Tuple[MultimediaDatabase, SalvageReport]]:
    """Rebuild a database saved by :func:`save_database`.

    Reads every supported format — v1, v2, v3, and mixed-version v3
    catalogs mid-migration — by resolving each record's version stamp
    through the reader registry in :mod:`repro.db.versioning`.

    Strict mode (the default) raises :class:`PersistenceError` — or its
    :class:`CorruptionError` subclass, naming the damaged file — on any
    inconsistency.  With ``salvage=True`` it quarantines damaged records
    plus everything transitively derived from them and returns the
    ``(database, report)`` pair; only an unusable manifest (nothing to
    anchor recovery on) raises :class:`SalvageError`.

    Either mode first rolls back a save that crashed mid-commit, so a
    directory with a ``.old`` backup loads as the previous state.  The
    whole load runs under the per-root commit lock, so an in-process
    writer can never swap the directory out from underneath it.
    """
    base = Path(root)
    if (base / SHARD_MANIFEST_NAME).is_file():
        raise PersistenceError(
            f"{base} is a sharded catalog root ({SHARD_MANIFEST_NAME} "
            f"present); load it with repro.shard.ShardedCatalog.open() — "
            f"load_database() reads one shard's segment root, e.g. "
            f"{base}/shard-000"
        )
    with root_lock(base):
        return _load_locked(base, salvage)


def _load_locked(
    base: Path, salvage: bool
) -> Union[MultimediaDatabase, Tuple[MultimediaDatabase, SalvageReport]]:
    _recover_interrupted_save(base)
    manifest = _read_manifest(base, salvage=salvage)

    report = SalvageReport(root=str(base))
    if salvage and manifest.pop("_checksum_warning", None):
        logger.warning(
            "salvage of %s: manifest checksum mismatch; contents unverified",
            base,
        )
        report.warnings.append("manifest checksum mismatch; contents unverified")

    try:
        quantizer = UniformQuantizer(
            divisions=int(manifest["quantizer"]["divisions"]),
            space=str(manifest["quantizer"]["space"]),
        )
        fill_color = tuple(manifest["fill_color"])
        binary_ids = list(manifest["binary_ids"])
        edited_ids = list(manifest["edited_ids"])
        version = int(manifest["format_version"])
        if version >= 3:
            pointers = pointers_from_v3_manifest(manifest)
        else:
            pointers = pointers_from_v2_manifest(manifest, version)
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise _manifest_error(base, exc, salvage) from exc

    try:
        database = MultimediaDatabase(quantizer=quantizer, fill_color=fill_color)
    except ReproError as exc:
        raise _manifest_error(base, exc, salvage) from exc

    available = set()
    for image_id in binary_ids:
        pointer = pointers.get(image_id)
        try:
            payload = _pointer_payload(base, pointer, image_id, "binary")
            database.insert_image(read_ppm(payload), image_id=image_id)
        except (PersistenceError, ReproError, OSError, ValueError) as exc:
            _reject(report, image_id, _pointer_path(base, pointer), exc, salvage)
            continue
        available.add(image_id)
        report.loaded_binary += 1

    for image_id in edited_ids:
        pointer = pointers.get(image_id)
        try:
            payload = _pointer_payload(base, pointer, image_id, "edited")
            sequence = EditSequence.parse(payload.decode("utf-8"))
        except (PersistenceError, ReproError, OSError, ValueError) as exc:
            _reject(report, image_id, _pointer_path(base, pointer), exc, salvage)
            continue
        missing = [r for r in sequence.referenced_ids() if r not in available]
        if missing:
            # Strict mode surfaces the same condition as a corrupt
            # sequence file; salvage records the transitive loss.
            exc = CorruptionError(
                f"{_pointer_path(base, pointer)}: references unrecoverable "
                f"image(s) {sorted(missing)}"
            )
            _reject(report, image_id, _pointer_path(base, pointer), exc, salvage)
            continue
        try:
            database.insert_edited(sequence, image_id=image_id)
        except ReproError as exc:
            _reject(report, image_id, _pointer_path(base, pointer), exc, salvage)
            continue
        available.add(image_id)
        report.loaded_edited += 1

    if salvage:
        return database, report
    return database


def _pointer_payload(
    base: Path, pointer: Optional[RecordPointer], image_id: str, kind: str
) -> bytes:
    """One record's payload via the registry; missing pointers surface
    as the missing v2-layout file they would have lived in."""
    if pointer is None:
        raise PersistenceError(
            f"missing file {base / v2_relpath(kind, image_id)}"
        )
    if pointer.kind != kind:
        raise CorruptionError(
            f"{base / pointer.path}: manifest lists {image_id!r} as "
            f"{kind} but its record pointer says {pointer.kind}"
        )
    return read_record(base, pointer)


def _pointer_path(base: Path, pointer: Optional[RecordPointer]) -> Path:
    return base / pointer.path if pointer is not None else base


def _read_manifest(base: Path, salvage: bool) -> Dict[str, object]:
    manifest_path = base / "catalog.json"
    if not manifest_path.is_file():
        message = f"no catalog.json under {base}"
        raise SalvageError(message) if salvage else PersistenceError(message)
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        message = f"corrupt catalog.json under {base}: {exc}"
        error = SalvageError(message) if salvage else CorruptionError(message)
        raise error from exc
    if not isinstance(manifest, dict):
        message = f"corrupt catalog.json under {base}: not a JSON object"
        raise SalvageError(message) if salvage else CorruptionError(message)

    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        message = (
            f"unsupported format version {version!r} under {base} "
            f"(this build reads {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
        raise SalvageError(message) if salvage else PersistenceError(message)

    recorded = manifest.get("manifest_checksum")
    if recorded is not None and recorded != manifest_checksum(manifest):
        if not salvage:
            raise CorruptionError(
                f"{manifest_path}: manifest checksum mismatch "
                "(catalog.json was modified or torn)"
            )
        manifest["_checksum_warning"] = True
    return manifest


def _manifest_error(base: Path, exc: Exception, salvage: bool) -> PersistenceError:
    message = f"malformed manifest under {base}: {exc}"
    return SalvageError(message) if salvage else PersistenceError(message)


def _reject(
    report: SalvageReport,
    image_id: str,
    path: Path,
    exc: Exception,
    salvage: bool,
) -> None:
    """Quarantine in salvage mode; re-raise (wrapped) in strict mode."""
    if salvage:
        logger.warning("salvage quarantined %s (%s): %s", image_id, path, exc)
        report.quarantined.append(
            QuarantineEntry(image_id=image_id, path=str(path), reason=str(exc))
        )
        return
    if isinstance(exc, PersistenceError):
        raise exc
    raise CorruptionError(f"{path}: {exc}") from exc
