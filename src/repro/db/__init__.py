"""The MMDBMS: catalog, storage, facade, similarity search, persistence."""

from repro.db.augmentation import (
    augment_image,
    augment_with_distortions,
    plan_distortion_sequences,
    plan_variant_sequences,
)
from repro.db.catalog import Catalog
from repro.db.integrity import (
    RepairReport,
    repair,
    require_integrity,
    verify_integrity,
)
from repro.db.database import KNN_METHODS, RANGE_METHODS, MultimediaDatabase
from repro.db.migration import (
    MigrationReport,
    MigrationStatus,
    Migrator,
    migrate_database,
    migration_status,
    rollback_migration,
)
from repro.db.multifeature import FeatureWeights, MultiFeatureSearch
from repro.db.persistence import (
    QuarantineEntry,
    SalvageReport,
    has_committed_state,
    load_database,
    save_database,
)
from repro.db.versioning import (
    CURRENT_VERSION,
    DEFAULT_SAVE_VERSION,
    SUPPORTED_VERSIONS,
    RecordPointer,
)
from repro.db.processors import (
    InstantiateProcessor,
    KNNResult,
    KNNStats,
    SimilaritySearch,
)
from repro.db.records import (
    BINARY_FORMAT,
    EDITED_FORMAT,
    BinaryImageRecord,
    EditedImageRecord,
    ImageRecord,
)
from repro.db.statistics import BinStatistics, DatabaseStatistics, QueryExplanation
from repro.db.storage import StorageReport, measure_storage

__all__ = [
    "BINARY_FORMAT",
    "BinaryImageRecord",
    "BinStatistics",
    "CURRENT_VERSION",
    "Catalog",
    "DEFAULT_SAVE_VERSION",
    "DatabaseStatistics",
    "EDITED_FORMAT",
    "EditedImageRecord",
    "FeatureWeights",
    "ImageRecord",
    "InstantiateProcessor",
    "KNNResult",
    "KNNStats",
    "KNN_METHODS",
    "MigrationReport",
    "MigrationStatus",
    "Migrator",
    "MultiFeatureSearch",
    "MultimediaDatabase",
    "QuarantineEntry",
    "QueryExplanation",
    "RANGE_METHODS",
    "RecordPointer",
    "RepairReport",
    "SUPPORTED_VERSIONS",
    "SalvageReport",
    "SimilaritySearch",
    "StorageReport",
    "augment_image",
    "augment_with_distortions",
    "has_committed_state",
    "load_database",
    "measure_storage",
    "migrate_database",
    "migration_status",
    "plan_distortion_sequences",
    "plan_variant_sequences",
    "repair",
    "require_integrity",
    "rollback_migration",
    "save_database",
    "verify_integrity",
]
