"""The MMDBMS: catalog, storage, facade, similarity search, persistence."""

from repro.db.augmentation import (
    augment_image,
    augment_with_distortions,
    plan_distortion_sequences,
    plan_variant_sequences,
)
from repro.db.catalog import Catalog
from repro.db.integrity import (
    RepairReport,
    repair,
    require_integrity,
    verify_integrity,
)
from repro.db.database import KNN_METHODS, RANGE_METHODS, MultimediaDatabase
from repro.db.multifeature import FeatureWeights, MultiFeatureSearch
from repro.db.persistence import (
    QuarantineEntry,
    SalvageReport,
    load_database,
    save_database,
)
from repro.db.processors import (
    InstantiateProcessor,
    KNNResult,
    KNNStats,
    SimilaritySearch,
)
from repro.db.records import (
    BINARY_FORMAT,
    EDITED_FORMAT,
    BinaryImageRecord,
    EditedImageRecord,
    ImageRecord,
)
from repro.db.statistics import BinStatistics, DatabaseStatistics, QueryExplanation
from repro.db.storage import StorageReport, measure_storage

__all__ = [
    "BINARY_FORMAT",
    "BinaryImageRecord",
    "BinStatistics",
    "Catalog",
    "DatabaseStatistics",
    "EDITED_FORMAT",
    "EditedImageRecord",
    "FeatureWeights",
    "ImageRecord",
    "InstantiateProcessor",
    "KNNResult",
    "KNNStats",
    "KNN_METHODS",
    "MultiFeatureSearch",
    "MultimediaDatabase",
    "QuarantineEntry",
    "QueryExplanation",
    "RANGE_METHODS",
    "RepairReport",
    "SalvageReport",
    "SimilaritySearch",
    "StorageReport",
    "augment_image",
    "augment_with_distortions",
    "load_database",
    "measure_storage",
    "plan_distortion_sequences",
    "plan_variant_sequences",
    "repair",
    "require_integrity",
    "save_database",
    "verify_integrity",
]
