"""Multi-feature similarity search (color + texture + shape).

§6's full program: color features alone confuse objects that share a
palette; texture and shape features separate them.  This module ranks
database images by a weighted combination of

* color distance — L1 over normalized histograms (paper eq. 2, p = 1);
* texture distance — L1 over uniform-LBP histograms;
* shape distance — L1 over log-compressed Hu invariants.

Each component is divided by a fixed normalizer (its theoretical or
practical range) before weighting, so weights express relative
importance rather than unit juggling.  Edited images are instantiated
for the non-color features (deriving texture/shape bounds from the rules
is the open problem §6 names); binary-image features are computed once
and cached on first use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.color.histogram import ColorHistogram
from repro.color.similarity import l1_distance
from repro.errors import HistogramError, QueryError
from repro.features.shape import ShapeSignature, shape_distance
from repro.features.texture import TextureSignature, texture_distance
from repro.images.raster import Image

#: Normalizers mapping each component distance into roughly [0, 1].
_COLOR_RANGE = 2.0    # L1 over distributions
_TEXTURE_RANGE = 2.0  # L1 over distributions
_SHAPE_RANGE = 20.0   # practical range of summed log-compressed Hu deltas


@dataclass(frozen=True)
class FeatureWeights:
    """Relative importance of the three feature families."""

    color: float = 1.0
    texture: float = 0.0
    shape: float = 0.0

    def __post_init__(self) -> None:
        for name in ("color", "texture", "shape"):
            if getattr(self, name) < 0:
                raise QueryError(f"{name} weight must be non-negative")
        if self.color + self.texture + self.shape <= 0:
            raise QueryError("at least one feature weight must be positive")

    @property
    def total(self) -> float:
        """Sum of the weights (used for normalization)."""
        return self.color + self.texture + self.shape


@dataclass(frozen=True)
class FeatureVector:
    """The extracted features of one image (shape may be absent)."""

    color: ColorHistogram
    texture: TextureSignature
    shape: Optional[ShapeSignature]


class MultiFeatureSearch:
    """kNN by weighted multi-feature distance over a database."""

    def __init__(self, database: "MultimediaDatabase") -> None:  # noqa: F821
        self._database = database
        self._cache: Dict[str, FeatureVector] = {}

    # ------------------------------------------------------------------
    def extract(self, image: Image) -> FeatureVector:
        """Extract all three features from a raster."""
        color = ColorHistogram.of_image(image, self._database.quantizer)
        texture = TextureSignature.of_image(image)
        try:
            shape = ShapeSignature.of_image(image)
        except HistogramError:
            shape = None  # no foreground: shape undefined
        return FeatureVector(color, texture, shape)

    def features_of(self, image_id: str) -> FeatureVector:
        """Features of a stored image (cached after first extraction)."""
        cached = self._cache.get(image_id)
        if cached is None:
            cached = self.extract(self._database.instantiate(image_id))
            self._cache[image_id] = cached
        return cached

    def invalidate(self) -> None:
        """Drop cached features (after catalog changes)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def distance(
        self, a: FeatureVector, b: FeatureVector, weights: FeatureWeights
    ) -> float:
        """The weighted, normalized multi-feature distance."""
        score = weights.color * (l1_distance(a.color, b.color) / _COLOR_RANGE)
        score += weights.texture * (
            texture_distance(a.texture, b.texture) / _TEXTURE_RANGE
        )
        if weights.shape > 0:
            if a.shape is None or b.shape is None:
                score += weights.shape  # maximal penalty: shape unavailable
            else:
                score += weights.shape * min(
                    1.0, shape_distance(a.shape, b.shape) / _SHAPE_RANGE
                )
        return score / weights.total

    def knn(
        self,
        query: Image,
        k: int,
        weights: FeatureWeights = FeatureWeights(),
    ) -> List[Tuple[float, str]]:
        """The ``k`` database images nearest to ``query``, ascending."""
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        query_features = self.extract(query)
        scored = [
            (self.distance(query_features, self.features_of(image_id), weights), image_id)
            for image_id in self._database.ids()
        ]
        scored.sort()
        return scored[:k]
