"""Online schema migration: v1/v2 catalogs to v3 segments, zero downtime.

ROADMAP items 1–2 (columnar op tables, sharding) need breaking on-disk
format changes, and a production MMDBMS cannot stop answering queries to
take them.  This module is the machinery that makes format changes
*rolling*: a :class:`Migrator` rewrites a catalog's records into v3
segments (:mod:`repro.db.versioning`) **in small batches**, committing
each batch through a durable, checksummed journal, while an attached
:class:`~repro.service.QueryService` keeps serving — the migrator takes
the service's writer-preferring lock only for the per-batch *pointer
swap* (an atomic manifest rename), so query p95 degrades by a bounded
amount instead of the service going dark.

Journal state machine
---------------------
``<root>/migration.journal`` is an append-only JSONL file; every line
carries its own SHA-256, so a torn tail (crash mid-append) is detected
and dropped on replay.  Events, in protocol order::

    begin            origin manifest version + full origin record table
    batch   (×N)     segment files for these ids are written and fsynced
    swap    (×N)     the manifest now points these ids at v3 segments
    complete         all records v3; obsolete v1/v2 files listed for cleanup
    rollback_begin   operator asked to abandon; manifest being restored
    rollback_done    manifest restored to the origin table

A crash at *any* point leaves the catalog loadable (the manifest swap is
an atomic rename; everything before it is invisible to readers) and the
migration **resumable**: pending work is recomputed from the manifest
itself — records still stamped v1/v2 — so replaying a half-applied batch
just overwrites its segment files idempotently.  Until ``complete`` is
journaled, every original v1/v2 content file is still on disk, which is
what makes ``rollback`` loss-free; after ``complete``, rollback is
refused.

Observability: progress flows through a
:class:`~repro.service.metrics.MetricsRegistry` (``migration.*``
counters, a ``migration.phase`` gauge) that the service's Prometheus
exposition renders, and :meth:`Migrator.status` backs
``repro migrate --status``.

Every durable side effect goes through a fault plan
(:mod:`repro.testing.faults`); ``tests/db/test_migration.py`` sweeps a
kill point over each one and asserts load + oracle parity + resume.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.persistence import (
    _read_manifest,
    manifest_checksum,
    root_lock,
)
from repro.db.versioning import (
    RecordPointer,
    encode_segment,
    ordered_pointers,
    pointers_from_v2_manifest,
    pointers_from_v3_manifest,
    read_record,
    segment_relpath,
    sha256_hex,
)
from repro.errors import CorruptionError, MigrationError
from repro.service.metrics import MetricsRegistry
from repro.testing.faults import NoFaults

logger = logging.getLogger(__name__)

JOURNAL_NAME = "migration.journal"

#: ``migration.phase`` gauge values (rendered by the Prometheus layer).
PHASES = {"idle": 0, "migrating": 1, "rolling_back": 2, "complete": 3}


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------
class MigrationJournal:
    """Append-only, per-line-checksummed record of migration progress.

    Lines are canonical JSON objects; each carries ``line_sha256`` over
    its own canonical form (sans the field).  Appends go through the
    fault plan (append + fsync are separate kill points).  Replay
    tolerates exactly one damaged line *at the tail* — the torn-append
    crash shape — and treats damage anywhere else as corruption.
    """

    def __init__(self, base: Path) -> None:
        self.path = Path(base) / JOURNAL_NAME

    def exists(self) -> bool:
        return self.path.is_file()

    def append(self, plan: NoFaults, event: str, **payload: object) -> Dict[str, object]:
        self._truncate_torn_tail()
        entry: Dict[str, object] = {"event": event, **payload}
        canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        entry["line_sha256"] = sha256_hex(canonical.encode("utf-8"))
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        plan.append_bytes(self.path, line.encode("utf-8") + b"\n")
        plan.fsync(self.path)
        return entry

    def entries(self) -> List[Dict[str, object]]:
        """Verified journal entries; a torn final line is dropped."""
        if not self.exists():
            return []
        try:
            raw_lines = self.path.read_bytes().split(b"\n")
        except OSError as exc:
            raise CorruptionError(f"unreadable journal {self.path}: {exc}") from exc
        lines = [line for line in raw_lines if line.strip()]
        entries: List[Dict[str, object]] = []
        for index, line in enumerate(lines):
            entry = self._verify_line(line)
            if entry is None:
                if index == len(lines) - 1:
                    logger.warning(
                        "dropping torn tail line of %s (crash mid-append)",
                        self.path,
                    )
                    break
                raise CorruptionError(
                    f"{self.path}: damaged journal line {index + 1} of "
                    f"{len(lines)} (not a torn tail; refusing to guess)"
                )
            entries.append(entry)
        return entries

    def _truncate_torn_tail(self) -> None:
        """Cut an unterminated final line before appending a new one.

        A crash mid-append leaves a newline-less prefix at the tail;
        appending straight after it would glue two lines into one
        garbage line *mid-file*, which replay rightly refuses.  The
        truncation is recovery of already-damaged state, not a durable
        protocol step, so it does not go through the fault plan.
        """
        if not self.path.is_file():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    @staticmethod
    def _verify_line(line: bytes) -> Optional[Dict[str, object]]:
        try:
            entry = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict):
            return None
        recorded = entry.pop("line_sha256", None)
        canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        if recorded != sha256_hex(canonical.encode("utf-8")):
            return None
        return entry

    def remove(self) -> None:
        self.path.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Status / report types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MigrationStatus:
    """What ``repro migrate --status`` reports."""

    root: str
    format_version: int
    phase: str  # idle | migrating | rolling_back | complete
    total: int
    migrated: int  # records already stamped v3
    pending: int
    journal_entries: int
    batches_committed: int

    def describe(self) -> str:
        lines = [
            f"migration status of {self.root}: phase={self.phase}",
            f"  manifest format: v{self.format_version}",
            f"  records: {self.migrated}/{self.total} at v3, "
            f"{self.pending} pending",
        ]
        if self.journal_entries:
            lines.append(
                f"  journal: {self.journal_entries} entries, "
                f"{self.batches_committed} batches committed"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "format_version": self.format_version,
            "phase": self.phase,
            "total": self.total,
            "migrated": self.migrated,
            "pending": self.pending,
            "journal_entries": self.journal_entries,
            "batches_committed": self.batches_committed,
        }


@dataclass
class MigrationReport:
    """What one :meth:`Migrator.run` (or rollback) accomplished."""

    root: str
    action: str  # "migrate" | "rollback" | "noop"
    records_migrated: int = 0
    batches: int = 0
    resumed: bool = False
    already_migrated: int = 0
    cleaned_files: int = 0
    notes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.action == "noop":
            head = f"nothing to migrate under {self.root}"
        elif self.action == "rollback":
            head = (
                f"rolled back migration under {self.root} "
                f"({self.cleaned_files} segment file(s) removed)"
            )
        else:
            verb = "resumed" if self.resumed else "migrated"
            head = (
                f"{verb} {self.root}: {self.records_migrated} record(s) "
                f"in {self.batches} batch(es) now at v3"
            )
        lines = [head]
        lines.extend(f"  {note}" for note in self.notes)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "action": self.action,
            "records_migrated": self.records_migrated,
            "batches": self.batches,
            "resumed": self.resumed,
            "already_migrated": self.already_migrated,
            "cleaned_files": self.cleaned_files,
            "notes": list(self.notes),
        }


class _NullSwapLock:
    """Stand-in for a service write lock when migrating offline."""

    def __enter__(self) -> "_NullSwapLock":
        return self

    def __exit__(self, *exc) -> None:
        return None


# ----------------------------------------------------------------------
# The migrator
# ----------------------------------------------------------------------
class Migrator:
    """Batched, journaled, resumable v1/v2 → v3 migration of one root.

    Parameters
    ----------
    root:
        The database directory to migrate in place.
    batch_size:
        Records rewritten per journal/swap cycle.  Smaller batches mean
        shorter write-lock holds (better p95 under live traffic) and
        more journal entries; the swap itself is one manifest rename
        regardless.
    faults:
        Fault plan for every durable side effect (tests inject crashes
        and I/O errors here).
    service:
        A live :class:`~repro.service.QueryService` serving this
        catalog.  When given, each pointer swap runs under the service's
        write lock, the bounds-engine change feed is fired afterward
        (dropping the result cache and staling indexes, the same
        contract as any catalog mutation), and progress lands in the
        service's metrics registry.
    metrics:
        Explicit registry override; defaults to the service's registry
        or a private one.
    """

    def __init__(
        self,
        root,
        *,
        batch_size: int = 16,
        faults: Optional[NoFaults] = None,
        service=None,
        metrics: Optional[MetricsRegistry] = None,
        events=None,
    ) -> None:
        if batch_size < 1:
            raise MigrationError("batch_size must be at least 1")
        self.base = Path(root)
        self.batch_size = batch_size
        self.plan = faults if faults is not None else NoFaults()
        self.service = service
        if metrics is not None:
            self.metrics = metrics
        elif service is not None:
            self.metrics = service.metrics
        else:
            self.metrics = MetricsRegistry()
        if events is not None:
            self.events = events
        elif service is not None and getattr(service, "events", None) is not None:
            self.events = service.events
        else:
            from repro.obs.events import default_event_log

            self.events = default_event_log()
        self.journal = MigrationJournal(self.base)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> MigrationStatus:
        """The migration state of the root, derived from manifest + journal."""
        manifest = _read_manifest(self.base, salvage=False)
        version = int(manifest["format_version"])
        pointers = self._pointers(manifest, version)
        migrated = sum(1 for p in pointers.values() if p.segment_version >= 3)
        pending = len(pointers) - migrated
        entries = self.journal.entries()
        phase = "idle"
        if entries:
            last = entries[-1].get("event")
            if last in ("rollback_begin",):
                phase = "rolling_back"
            elif last == "complete":
                phase = "complete"
            else:
                phase = "migrating"
        return MigrationStatus(
            root=str(self.base),
            format_version=version,
            phase=phase,
            total=len(pointers),
            migrated=migrated,
            pending=pending,
            journal_entries=len(entries),
            batches_committed=sum(
                1 for e in entries if e.get("event") == "swap"
            ),
        )

    # ------------------------------------------------------------------
    # Forward migration
    # ------------------------------------------------------------------
    def run(self, *, resume: bool = False) -> MigrationReport:
        """Migrate every v1/v2 record to a v3 segment, in batches.

        With ``resume=False`` a journal left by an earlier (crashed or
        concurrent) run is an error; ``resume=True`` picks up exactly
        where the manifest says the last run stopped.  Raises
        :class:`MigrationError` on misuse and on I/O failure — in both
        cases the previous committed catalog state is still loadable.
        """
        try:
            return self._run(resume=resume)
        except OSError as exc:
            self._set_phase("idle")
            raise MigrationError(
                f"migration of {self.base} failed: {exc} "
                "(catalog unchanged since the last committed batch; "
                "re-run with --resume)"
            ) from exc

    def _run(self, *, resume: bool) -> MigrationReport:
        entries = self.journal.entries()
        if entries:
            last = entries[-1].get("event")
            if last == "rollback_begin":
                raise MigrationError(
                    f"{self.base} has an interrupted rollback; "
                    "run `repro migrate --rollback` to finish it"
                )
            if last == "complete":
                # Crash during post-complete cleanup: finish it.
                report = MigrationReport(
                    root=str(self.base), action="migrate", resumed=True
                )
                self._finish_cleanup(entries[-1], report)
                self._set_phase("idle")
                report.notes.append("finished interrupted cleanup")
                return report
            if not resume:
                raise MigrationError(
                    f"{self.base} already has a migration journal "
                    f"({len(entries)} entries); pass --resume to continue "
                    "it or --rollback to abandon it"
                )

        manifest = _read_manifest(self.base, salvage=False)
        version = int(manifest["format_version"])
        pointers = self._pointers(manifest, version)
        order = ordered_pointers(
            pointers, manifest["binary_ids"], manifest["edited_ids"]
        )
        pending = [p for p in order if p.segment_version < 3]
        already = len(order) - len(pending)

        report = MigrationReport(
            root=str(self.base),
            action="migrate",
            resumed=bool(entries),
            already_migrated=already,
        )
        if not pending and not entries:
            report.action = "noop"
            self._set_phase("idle")
            return report

        self._set_phase("migrating")
        if not entries:
            origin = {
                p.image_id: p.to_json() for p in order if p.segment_version < 3
            }
            self.journal.append(
                self.plan,
                "begin",
                origin_format_version=version,
                origin_records=origin,
                total=len(order),
                pending=len(pending),
                target_version=3,
                batch_size=self.batch_size,
            )
            self.metrics.increment("migration.runs")
        else:
            self.metrics.increment("migration.resumes")
        self.events.emit(
            "migration.run",
            subsystem="migration",
            root=str(self.base),
            resumed=bool(entries),
            pending=len(pending),
        )
        begin = self._begin_entry(self.journal.entries())

        (self.base / "segments").mkdir(exist_ok=True)
        for batch in _chunks(pending, self.batch_size):
            self._migrate_batch(manifest, pointers, batch)
            report.batches += 1
            report.records_migrated += len(batch)
            self.metrics.increment("migration.batches")
            self.metrics.increment("migration.records", len(batch))
            self.events.emit(
                "migration.batch",
                subsystem="migration",
                root=str(self.base),
                batch=report.batches,
                records=len(batch),
                first_id=batch[0].image_id,
            )

        complete = self.journal.append(
            self.plan,
            "complete",
            obsolete=self._obsolete_paths(begin),
        )
        self._finish_cleanup(complete, report)
        self._set_phase("complete")
        logger.info(
            "migration of %s complete: %d records in %d batches",
            self.base, report.records_migrated, report.batches,
        )
        return report

    def _migrate_batch(
        self,
        manifest: Dict[str, object],
        pointers: Dict[str, RecordPointer],
        batch: Sequence[RecordPointer],
    ) -> None:
        """Rewrite one batch: segments, journal entry, pointer swap."""
        fresh: Dict[str, RecordPointer] = {}
        for pointer in batch:
            payload = read_record(self.base, pointer)
            relative = segment_relpath(pointer.image_id)
            self.plan.write_bytes(
                self.base / relative,
                encode_segment(pointer.image_id, pointer.kind, payload),
            )
            self.plan.fsync(self.base / relative)
            fresh[pointer.image_id] = RecordPointer(
                image_id=pointer.image_id,
                kind=pointer.kind,
                segment_version=3,
                path=relative,
                sha256=sha256_hex(payload),
                size=len(payload),
            )
        self.journal.append(self.plan, "batch", ids=sorted(fresh))

        pointers.update(fresh)
        swap_lock = (
            self.service.write_locked() if self.service is not None
            else _NullSwapLock()
        )
        # The only section live queries ever wait on: one manifest
        # rewrite + atomic rename under the service's write lock.
        with swap_lock:
            with root_lock(self.base):
                self._write_manifest_v3(manifest, pointers)
            if self.service is not None:
                # The same change feed every catalog mutation rides:
                # drops the result cache, dirties planner statistics,
                # stales the spatial indexes.
                self.service.database.engine.invalidate_cache()
        self.journal.append(self.plan, "swap", ids=sorted(fresh))

    def _write_manifest_v3(
        self, manifest: Dict[str, object], pointers: Dict[str, RecordPointer]
    ) -> None:
        """Atomically replace ``catalog.json`` with a v3 pointer table."""
        updated: Dict[str, object] = {
            "format_version": 3,
            "quantizer": manifest["quantizer"],
            "fill_color": manifest["fill_color"],
            "binary_ids": manifest["binary_ids"],
            "edited_ids": manifest["edited_ids"],
            "records": {
                image_id: pointer.to_json()
                for image_id, pointer in sorted(pointers.items())
            },
        }
        updated["manifest_checksum"] = manifest_checksum(updated)
        self._swap_manifest(updated)
        manifest.clear()
        manifest.update(updated)

    def _swap_manifest(self, updated: Dict[str, object]) -> None:
        tmp = self.base / "catalog.json.tmp"
        self.plan.write_bytes(
            tmp, json.dumps(updated, indent=2).encode("utf-8")
        )
        self.plan.fsync(tmp)
        self.plan.rename(tmp, self.base / "catalog.json")
        self.plan.fsync(self.base)

    def _obsolete_paths(self, begin: Dict[str, object]) -> List[str]:
        origin = begin.get("origin_records")
        if not isinstance(origin, dict):
            return []
        return sorted(
            str(row.get("path"))
            for row in origin.values()
            if isinstance(row, dict) and row.get("path")
        )

    def _finish_cleanup(
        self, complete: Dict[str, object], report: MigrationReport
    ) -> None:
        """Delete obsolete v1/v2 files and the journal (idempotent)."""
        removed = 0
        for relative in complete.get("obsolete", ()):  # type: ignore[union-attr]
            target = self.base / str(relative)
            if target.is_file():
                target.unlink()
                removed += 1
        for legacy_dir in ("binary", "edited"):
            directory = self.base / legacy_dir
            if directory.is_dir() and not any(directory.iterdir()):
                directory.rmdir()
        self.journal.remove()
        report.cleaned_files += removed

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def rollback(self) -> MigrationReport:
        """Abandon an unfinished migration, restoring the origin manifest.

        Loss-free because original v1/v2 content files are only deleted
        *after* ``complete`` is journaled — and once it is, rollback is
        refused.  Idempotent: re-running after a crash mid-rollback
        finishes the restore.
        """
        try:
            return self._rollback()
        except OSError as exc:
            raise MigrationError(
                f"rollback of {self.base} failed: {exc} "
                "(re-run --rollback to finish)"
            ) from exc

    def _rollback(self) -> MigrationReport:
        entries = self.journal.entries()
        report = MigrationReport(root=str(self.base), action="rollback")
        if not entries:
            manifest = _read_manifest(self.base, salvage=False)
            version = int(manifest["format_version"])
            pointers = self._pointers(manifest, version)
            if all(p.segment_version >= 3 for p in pointers.values()):
                raise MigrationError(
                    f"{self.base} has no migration journal; the catalog is "
                    "fully migrated and its v1/v2 files are gone — nothing "
                    "to roll back to"
                )
            report.action = "noop"
            report.notes.append("no migration journal; nothing to roll back")
            return report
        last = entries[-1].get("event")
        if last == "complete":
            raise MigrationError(
                f"migration of {self.base} already finalized (obsolete "
                "files scheduled for deletion); rollback refused"
            )
        begin = self._begin_entry(entries)
        self._set_phase("rolling_back")
        if last != "rollback_begin":
            self.journal.append(self.plan, "rollback_begin")
        self.metrics.increment("migration.rollbacks")

        manifest = _read_manifest(self.base, salvage=False)
        origin_version = int(begin["origin_format_version"])  # type: ignore[arg-type]
        origin_rows: Dict[str, object] = dict(begin["origin_records"])  # type: ignore[arg-type]
        origin_pointers = {
            image_id: RecordPointer.from_json(image_id, dict(row))  # type: ignore[arg-type]
            for image_id, row in origin_rows.items()
        }
        # Records that were already v3 before the migration began (a
        # previously finalized run) keep their current pointers.
        current = self._pointers(manifest, int(manifest["format_version"]))
        restored = dict(current)
        restored.update(origin_pointers)

        swap_lock = (
            self.service.write_locked() if self.service is not None
            else _NullSwapLock()
        )
        with swap_lock:
            with root_lock(self.base):
                self._restore_manifest(manifest, restored, origin_version)
            if self.service is not None:
                self.service.database.engine.invalidate_cache()
        self.journal.append(self.plan, "rollback_done")

        # Remove only the segments this migration introduced.
        removed = 0
        for image_id in origin_pointers:
            segment = self.base / segment_relpath(image_id)
            if segment.is_file():
                segment.unlink()
                removed += 1
        segments_dir = self.base / "segments"
        if segments_dir.is_dir() and not any(segments_dir.iterdir()):
            segments_dir.rmdir()
        self.journal.remove()
        report.cleaned_files = removed
        self._set_phase("idle")
        logger.info("rolled back migration of %s", self.base)
        return report

    def _restore_manifest(
        self,
        manifest: Dict[str, object],
        pointers: Dict[str, RecordPointer],
        origin_version: int,
    ) -> None:
        if origin_version >= 3:
            self._write_manifest_v3(manifest, pointers)
            return
        # Emit the files table in the save protocol's order (binary ids,
        # then edited ids) so the restored manifest is byte-identical to
        # the one `begin` captured, not merely JSON-equal.
        ordered_ids = [
            str(image_id)
            for image_id in (
                list(manifest["binary_ids"]) + list(manifest["edited_ids"])  # type: ignore[arg-type]
            )
        ]
        files: Dict[str, object] = {}
        for image_id in ordered_ids:
            pointer = pointers.get(image_id)
            if pointer is not None and pointer.sha256 is not None:
                files[pointer.path] = {
                    "sha256": pointer.sha256,
                    "bytes": pointer.size,
                }
        updated: Dict[str, object] = {
            "format_version": origin_version,
            "quantizer": manifest["quantizer"],
            "fill_color": manifest["fill_color"],
            "binary_ids": manifest["binary_ids"],
            "edited_ids": manifest["edited_ids"],
            "files": files,
        }
        if origin_version >= 2:
            updated["manifest_checksum"] = manifest_checksum(updated)
        else:
            del updated["files"]
        self._swap_manifest(updated)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _pointers(
        manifest: Dict[str, object], version: int
    ) -> Dict[str, RecordPointer]:
        if version >= 3:
            return pointers_from_v3_manifest(manifest)
        return pointers_from_v2_manifest(manifest, version)

    @staticmethod
    def _begin_entry(entries: Iterable[Dict[str, object]]) -> Dict[str, object]:
        for entry in entries:
            if entry.get("event") == "begin":
                return entry
        raise CorruptionError(
            "migration journal has no begin entry (damaged beyond a torn "
            "tail); restore from backup or salvage-load and re-save"
        )

    def _set_phase(self, phase: str) -> None:
        self.metrics.set_gauge("migration.phase", PHASES[phase])


def _chunks(
    items: Sequence[RecordPointer], size: int
) -> Iterable[Tuple[RecordPointer, ...]]:
    for start in range(0, len(items), size):
        yield tuple(items[start:start + size])


# ----------------------------------------------------------------------
# Convenience entry points (the CLI's spellings)
# ----------------------------------------------------------------------
def migrate_database(
    root,
    *,
    batch_size: int = 16,
    resume: bool = False,
    faults: Optional[NoFaults] = None,
    service=None,
    metrics: Optional[MetricsRegistry] = None,
) -> MigrationReport:
    """Run (or resume) a full v1/v2 → v3 migration of ``root``."""
    migrator = Migrator(
        root, batch_size=batch_size, faults=faults, service=service,
        metrics=metrics,
    )
    return migrator.run(resume=resume)


def rollback_migration(
    root, *, faults: Optional[NoFaults] = None, service=None,
    metrics: Optional[MetricsRegistry] = None,
) -> MigrationReport:
    """Abandon an unfinished migration of ``root``."""
    migrator = Migrator(root, faults=faults, service=service, metrics=metrics)
    return migrator.rollback()


def migration_status(root) -> MigrationStatus:
    """The migration state of ``root`` (``repro migrate --status``)."""
    return Migrator(root).status()
