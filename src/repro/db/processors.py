"""Additional query processors: ground truth and similarity search.

* :class:`InstantiateProcessor` — the naive method both papers argue
  against: materialize every edited image, extract its histogram, check
  exactly.  It is the ground truth for accuracy tests (RBM/BWM may return
  supersets — "this approach may increase the number of false positives
  ... it will decrease the number of false negatives", §2) and the cost
  ceiling for benchmarks.

* :class:`SimilaritySearch` — kNN over the augmented database (§6 future
  work, experiment A5) with three strategies: binary-only via the
  multidimensional index, exhaustive instantiation, and bounds-based
  pruning that instantiates only edited images whose BOUNDS intervals
  cannot be excluded.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.color.histogram import ColorHistogram
from repro.color.similarity import l1_distance, l1_lower_bound
from repro.core.bounds import BoundsEngine
from repro.core.query import QueryResult, QueryStats, RangeQuery
from repro.db.catalog import Catalog
from repro.errors import QueryError
from repro.images.raster import Image

#: Instantiates an edited image id into a raster.
Instantiator = Callable[[str], Image]


class _MaxItem:
    """Inverts tuple ordering so :mod:`heapq` acts as a max-heap.

    ``(distance, image_id)`` tuples cannot be negated wholesale (the id
    is a string), so the k-best sets below wrap entries in this instead.
    """

    __slots__ = ("item",)

    def __init__(self, item: Tuple[float, str]) -> None:
        self.item = item

    def __lt__(self, other: "_MaxItem") -> bool:
        return other.item < self.item


class _KBest:
    """The k smallest ``(score, image_id)`` tuples seen so far.

    Replaces the re-sort-per-insertion pattern: each push is O(log k)
    against a max-heap whose root is the current k-th best, which is also
    the pruning threshold.
    """

    __slots__ = ("_k", "_heap")

    def __init__(self, k: int) -> None:
        self._k = k
        self._heap: List[_MaxItem] = []

    def push(self, item: Tuple[float, str]) -> None:
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, _MaxItem(item))
        elif item < self._heap[0].item:
            heapq.heapreplace(self._heap, _MaxItem(item))

    @property
    def threshold(self) -> float:
        """The k-th best score, or ``+inf`` while fewer than k are held."""
        if len(self._heap) < self._k:
            return float("inf")
        return self._heap[0].item[0]

    def sorted_items(self) -> List[Tuple[float, str]]:
        """Held entries ascending by ``(score, image_id)``."""
        return sorted(entry.item for entry in self._heap)


class InstantiateProcessor:
    """Ground-truth range-query processor (materializes edited images)."""

    #: Identifier used by reports and the method registry.
    name = "instantiate"

    def __init__(self, catalog: Catalog, instantiate: Instantiator) -> None:
        self._catalog = catalog
        self._instantiate = instantiate

    def process(self, query: RangeQuery) -> QueryResult:
        """Execute ``query`` exactly, instantiating every edited image."""
        stats = QueryStats()
        matches = set()
        quantizer = None

        for image_id in self._catalog.binary_ids():
            histogram = self._catalog.histogram_of(image_id)
            quantizer = histogram.quantizer
            stats.histograms_checked += 1
            if query.matches_histogram(histogram):
                matches.add(image_id)

        for image_id in self._catalog.edited_ids():
            if quantizer is None:
                raise QueryError("cannot instantiate-query a database with no binary images")
            image = self._instantiate(image_id)
            histogram = ColorHistogram.of_image(image, quantizer)
            stats.histograms_checked += 1
            if query.matches_histogram(histogram):
                matches.add(image_id)

        return QueryResult(frozenset(matches), stats)


@dataclass
class KNNStats:
    """Work counters for one kNN execution."""

    candidates_considered: int = 0
    edited_pruned: int = 0
    edited_instantiated: int = 0


@dataclass(frozen=True)
class KNNResult:
    """Ranked ``(distance, image_id)`` pairs plus work counters."""

    neighbors: Tuple[Tuple[float, str], ...]
    stats: KNNStats = field(default_factory=KNNStats)

    def ids(self) -> Tuple[str, ...]:
        """Neighbor ids in ascending distance order."""
        return tuple(image_id for _, image_id in self.neighbors)


class SimilaritySearch:
    """kNN by L1 distance over normalized histograms."""

    def __init__(
        self,
        catalog: Catalog,
        engine: BoundsEngine,
        instantiate: Instantiator,
    ) -> None:
        self._catalog = catalog
        self._engine = engine
        self._instantiate = instantiate

    # ------------------------------------------------------------------
    def knn_binary(self, query: ColorHistogram, k: int) -> KNNResult:
        """kNN over binary images only (the conventional CBIR path)."""
        self._validate_k(k)
        stats = KNNStats()
        heap: List[Tuple[float, str]] = []
        for image_id in self._catalog.binary_ids():
            stats.candidates_considered += 1
            distance = l1_distance(query, self._catalog.histogram_of(image_id))
            heap.append((distance, image_id))
        return KNNResult(tuple(sorted(heap)[:k]), stats)

    def knn_exact(self, query: ColorHistogram, k: int) -> KNNResult:
        """Exhaustive kNN over the full augmented database."""
        self._validate_k(k)
        stats = KNNStats()
        scored: List[Tuple[float, str]] = []
        for image_id in self._catalog.binary_ids():
            stats.candidates_considered += 1
            scored.append(
                (l1_distance(query, self._catalog.histogram_of(image_id)), image_id)
            )
        for image_id in self._catalog.edited_ids():
            stats.candidates_considered += 1
            stats.edited_instantiated += 1
            histogram = ColorHistogram.of_image(
                self._instantiate(image_id), query.quantizer
            )
            scored.append((l1_distance(query, histogram), image_id))
        return KNNResult(tuple(sorted(scored)[:k]), stats)

    def knn_bounded(self, query: ColorHistogram, k: int) -> KNNResult:
        """kNN instantiating only edited images the bounds cannot exclude.

        Strategy (the A5 extension):

        1. rank all binary images exactly (cheap — histograms stored);
        2. per edited image, compute every bin's BOUNDS interval in one
           vectorized sequence walk and an L1 *lower bound* on its
           distance to the query;
        3. process edited images in ascending lower-bound order,
           instantiating one at a time; stop as soon as the next lower
           bound exceeds the current k-th best distance — no remaining
           image can improve the result.
        """
        self._validate_k(k)
        stats = KNNStats()
        query_fractions = query.fractions()

        best = _KBest(k)
        for image_id in self._catalog.binary_ids():
            stats.candidates_considered += 1
            best.push(
                (l1_distance(query, self._catalog.histogram_of(image_id)), image_id)
            )

        candidates: List[Tuple[float, str]] = []
        edited_ids = list(self._catalog.edited_ids())
        for image_id, (lower, upper) in zip(
            edited_ids, self._engine.fraction_bounds_all_bins_batch(edited_ids)
        ):
            stats.candidates_considered += 1
            candidates.append(
                (l1_lower_bound(query_fractions, lower, upper), image_id)
            )
        heapq.heapify(candidates)

        while candidates:
            bound, image_id = heapq.heappop(candidates)
            if bound > best.threshold:
                stats.edited_pruned += 1 + len(candidates)
                break
            stats.edited_instantiated += 1
            histogram = ColorHistogram.of_image(
                self._instantiate(image_id), query.quantizer
            )
            best.push((l1_distance(query, histogram), image_id))
        return KNNResult(tuple(best.sorted_items()), stats)

    def range_search(
        self, query: ColorHistogram, epsilon: float
    ) -> KNNResult:
        """All images within L1 distance ``epsilon`` of ``query``.

        The similarity-range companion to kNN: binary images are checked
        exactly; an edited image is instantiated only when its per-bin
        BOUNDS intervals admit a distance at or below ``epsilon`` (its
        L1 lower bound does not exceed the threshold).  Returns matches
        ascending by distance.
        """
        if epsilon < 0:
            raise QueryError(f"epsilon must be non-negative, got {epsilon}")
        stats = KNNStats()
        query_fractions = query.fractions()

        matches: List[Tuple[float, str]] = []
        for image_id in self._catalog.binary_ids():
            stats.candidates_considered += 1
            distance = l1_distance(query, self._catalog.histogram_of(image_id))
            if distance <= epsilon:
                matches.append((distance, image_id))

        edited_ids = list(self._catalog.edited_ids())
        for image_id, (lower, upper) in zip(
            edited_ids, self._engine.fraction_bounds_all_bins_batch(edited_ids)
        ):
            stats.candidates_considered += 1
            if l1_lower_bound(query_fractions, lower, upper) > epsilon:
                stats.edited_pruned += 1
                continue
            stats.edited_instantiated += 1
            histogram = ColorHistogram.of_image(
                self._instantiate(image_id), query.quantizer
            )
            distance = l1_distance(query, histogram)
            if distance <= epsilon:
                matches.append((distance, image_id))

        return KNNResult(tuple(sorted(matches)), stats)

    def knn_intersection(self, query: ColorHistogram, k: int) -> KNNResult:
        """kNN ranked by histogram *intersection* (paper eq. 1), pruned.

        Ranking by the Swain-Ballard intersection instead of L1 distance
        (the two orders coincide for equal-total normalized histograms,
        but intersection is the paper's primary similarity).  Pruning
        mirrors :meth:`knn_bounded` with the sign flipped: an edited
        image whose intersection *upper bound* (from per-bin fraction
        upper bounds) is below the current k-th best similarity cannot
        enter the result.
        """
        from repro.color.similarity import (
            histogram_intersection,
            intersection_upper_bound,
        )

        self._validate_k(k)
        stats = KNNStats()
        query_fractions = query.fractions()

        best = _KBest(k)
        for image_id in self._catalog.binary_ids():
            stats.candidates_considered += 1
            similarity = histogram_intersection(
                query, self._catalog.histogram_of(image_id)
            )
            best.push((-similarity, image_id))

        candidates: List[Tuple[float, str]] = []
        edited_ids = list(self._catalog.edited_ids())
        for image_id, (_, upper) in zip(
            edited_ids, self._engine.fraction_bounds_all_bins_batch(edited_ids)
        ):
            stats.candidates_considered += 1
            bound = intersection_upper_bound(query_fractions, upper)
            candidates.append((-bound, image_id))
        heapq.heapify(candidates)

        while candidates:
            negative_bound, image_id = heapq.heappop(candidates)
            kth_similarity = -best.threshold
            if -negative_bound < kth_similarity:
                stats.edited_pruned += 1 + len(candidates)
                break
            stats.edited_instantiated += 1
            histogram = ColorHistogram.of_image(
                self._instantiate(image_id), query.quantizer
            )
            similarity = histogram_intersection(query, histogram)
            best.push((-similarity, image_id))

        neighbors = tuple(
            (-negative, image_id) for negative, image_id in best.sorted_items()
        )
        return KNNResult(neighbors, stats)

    @staticmethod
    def _validate_k(k: int) -> None:
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
