"""Versioned on-disk record formats and the reader registry.

The persistence layer is on its third on-disk format, and ROADMAP items
1–2 (columnar op tables, sharding) will bring a fourth.  This module is
the seam that lets those land incrementally: every stored record carries
its own **segment version stamp**, loaders resolve each stamp through a
**registry** of per-version readers, and a catalog may legally hold a
*mixture* of versions — which is exactly what a catalog looks like while
the online migrator (:mod:`repro.db.migration`) is halfway through
rewriting it.

Format versions
---------------
``1``
    PR-0 era.  ``catalog.json`` without checksums; content files under
    ``binary/<id>.ppm`` and ``edited/<id>.eseq``.  Read-only.
``2``
    PR 1.  Same layout plus per-file SHA-256 checksums and a
    whole-manifest checksum; atomic rename commits.  The default save
    format until items 1–2 land.
``3``
    This PR.  Per-record **segments** under ``segments/<id>.seg``: a
    one-line JSON header (version stamp, kind, payload checksum and
    size) followed by the raw payload bytes.  The manifest carries a
    ``records`` table of :class:`RecordPointer` entries, each with its
    *own* ``segment_version`` — so a v3 manifest can point some records
    at v2-layout files and others at v3 segments.  Future formats add a
    reader here and a rewrite rule to the migrator; old catalogs keep
    loading.

Nothing in this module touches a lock or a service; it is pure
format knowledge shared by :mod:`repro.db.persistence` (save/load) and
:mod:`repro.db.migration` (background rewrite).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import CorruptionError, PersistenceError

#: The newest format this build can read *and* write.
CURRENT_VERSION = 3
#: What :func:`repro.db.persistence.save_database` writes by default.
#: Stays at 2 until the columnar/sharded formats (ROADMAP 1–2) make v3
#: segments the universal carrier; ``format_version=3`` opts in today.
DEFAULT_SAVE_VERSION = 2
#: Every manifest version a loader in this build understands.
SUPPORTED_VERSIONS: Tuple[int, ...] = (1, 2, 3)
#: Record-level stamps that may appear inside a v3 ``records`` table.
SUPPORTED_SEGMENT_VERSIONS: Tuple[int, ...] = (1, 2, 3)

#: Record kinds and the v1/v2 layout conventions for each.
KIND_BINARY = "binary"
KIND_EDITED = "edited"
_V2_LAYOUT = {
    KIND_BINARY: ("binary", ".ppm"),
    KIND_EDITED: ("edited", ".eseq"),
}


def sha256_hex(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def v2_relpath(kind: str, image_id: str) -> str:
    """The v1/v2 layout path of a record (``binary/<id>.ppm`` etc.)."""
    directory, suffix = _V2_LAYOUT[kind]
    return f"{directory}/{image_id}{suffix}"


def segment_relpath(image_id: str) -> str:
    """The v3 layout path of a record's segment file."""
    return f"segments/{image_id}.seg"


# ----------------------------------------------------------------------
# Record pointers — one manifest row per stored record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordPointer:
    """Where one record lives on disk and how to read it.

    ``segment_version`` selects the reader; ``sha256`` is ``None`` only
    for v1 records (the pre-checksum era), in which case loading skips
    verification exactly as the v1 manifest reader always has.
    """

    image_id: str
    kind: str  # KIND_BINARY | KIND_EDITED
    segment_version: int
    path: str  # relative to the database root
    sha256: Optional[str] = None
    size: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "kind": self.kind,
            "segment_version": self.segment_version,
            "path": self.path,
        }
        if self.sha256 is not None:
            row["sha256"] = self.sha256
        if self.size is not None:
            row["bytes"] = self.size
        return row

    @staticmethod
    def from_json(image_id: str, row: Dict[str, object]) -> "RecordPointer":
        try:
            kind = str(row["kind"])
            version = int(row["segment_version"])  # type: ignore[arg-type]
            path = str(row["path"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(
                f"malformed record pointer for {image_id!r}: {exc}"
            ) from exc
        if kind not in _V2_LAYOUT:
            raise PersistenceError(
                f"record {image_id!r} has unknown kind {kind!r}"
            )
        sha = row.get("sha256")
        size = row.get("bytes")
        return RecordPointer(
            image_id=image_id,
            kind=kind,
            segment_version=version,
            path=path,
            sha256=str(sha) if sha is not None else None,
            size=int(size) if size is not None else None,  # type: ignore[arg-type]
        )


def pointers_from_v2_manifest(
    manifest: Dict[str, object], format_version: int
) -> Dict[str, RecordPointer]:
    """Normalize a v1/v2 manifest into the pointer table v3 loaders use.

    v1 manifests have no ``files`` block, so their pointers carry no
    checksum (``segment_version=1``); v2 pointers carry the recorded
    SHA-256 and byte size.
    """
    files = manifest.get("files")
    if not isinstance(files, dict):
        files = {}
    pointers: Dict[str, RecordPointer] = {}
    for kind, key in ((KIND_BINARY, "binary_ids"), (KIND_EDITED, "edited_ids")):
        for image_id in manifest.get(key, ()):  # type: ignore[union-attr]
            image_id = str(image_id)
            relative = v2_relpath(kind, image_id)
            recorded = files.get(relative)
            sha = size = None
            if isinstance(recorded, dict):
                sha = recorded.get("sha256")
                size = recorded.get("bytes")
            pointers[image_id] = RecordPointer(
                image_id=image_id,
                kind=kind,
                segment_version=2 if format_version >= 2 and sha else 1,
                path=relative,
                sha256=str(sha) if sha else None,
                size=int(size) if size is not None else None,
            )
    return pointers


def pointers_from_v3_manifest(
    manifest: Dict[str, object]
) -> Dict[str, RecordPointer]:
    """The pointer table of a v3 manifest (possibly mixed-version)."""
    records = manifest.get("records")
    if not isinstance(records, dict):
        raise PersistenceError("v3 manifest has no records table")
    pointers: Dict[str, RecordPointer] = {}
    for image_id, row in records.items():
        if not isinstance(row, dict):
            raise PersistenceError(
                f"malformed record pointer for {image_id!r}: not an object"
            )
        pointers[str(image_id)] = RecordPointer.from_json(str(image_id), row)
    return pointers


# ----------------------------------------------------------------------
# v3 segment envelope
# ----------------------------------------------------------------------
_HEADER_KEYS = ("segment_version", "kind", "image_id", "payload_sha256",
                "payload_bytes")


def encode_segment(image_id: str, kind: str, payload: bytes) -> bytes:
    """A v3 segment blob: one JSON header line, then the raw payload.

    The header carries the record's own version stamp and payload
    checksum, so a segment file is self-verifying even when found
    without its manifest (salvage, forensic tooling).
    """
    if kind not in _V2_LAYOUT:
        raise PersistenceError(f"unknown record kind {kind!r}")
    header = {
        "segment_version": 3,
        "kind": kind,
        "image_id": image_id,
        "payload_sha256": sha256_hex(payload),
        "payload_bytes": len(payload),
    }
    line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    return line.encode("utf-8") + b"\n" + payload


def decode_segment(blob: bytes, path: str = "<segment>") -> Tuple[Dict[str, object], bytes]:
    """Parse and verify a v3 segment blob into ``(header, payload)``.

    Raises :class:`CorruptionError` naming ``path`` on any damage: a
    missing or unparseable header line, a header without the required
    keys, a payload shorter than declared (torn write), or a payload
    checksum mismatch.
    """
    newline = blob.find(b"\n")
    if newline < 0:
        raise CorruptionError(f"{path}: segment has no header line")
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptionError(f"{path}: unparseable segment header: {exc}") from exc
    if not isinstance(header, dict) or any(k not in header for k in _HEADER_KEYS):
        raise CorruptionError(f"{path}: segment header missing required keys")
    payload = blob[newline + 1:]
    declared = header["payload_bytes"]
    if not isinstance(declared, int) or len(payload) != declared:
        raise CorruptionError(
            f"{path}: segment payload is {len(payload)} bytes, "
            f"header declares {declared!r} (torn write)"
        )
    if sha256_hex(payload) != header["payload_sha256"]:
        raise CorruptionError(f"{path}: segment payload checksum mismatch")
    return header, payload


# ----------------------------------------------------------------------
# The reader registry
# ----------------------------------------------------------------------
#: A segment reader takes (database root, pointer) and returns the raw
#: record payload, fully verified for its version's guarantees.
SegmentReader = Callable[[object, RecordPointer], bytes]

_SEGMENT_READERS: Dict[int, SegmentReader] = {}


def register_segment_reader(version: int):
    """Class of decorators registering a reader for one version stamp.

    Future formats (columnar op tables, sharded segments) register here;
    :func:`read_record` then resolves their stamps with no change to
    ``load_database``.
    """

    def deco(reader: SegmentReader) -> SegmentReader:
        _SEGMENT_READERS[version] = reader
        return reader

    return deco


def supported_segment_versions() -> Tuple[int, ...]:
    return tuple(sorted(_SEGMENT_READERS))


def _read_file(base, pointer: RecordPointer) -> bytes:
    path = base / pointer.path
    if not path.is_file():
        raise PersistenceError(f"missing file {path}")
    try:
        return path.read_bytes()
    except OSError as exc:
        raise CorruptionError(f"unreadable file {path}: {exc}") from exc


@register_segment_reader(1)
def _read_record_v1(base, pointer: RecordPointer) -> bytes:
    """v1: raw payload file, nothing to verify against (pre-checksum)."""
    return _read_file(base, pointer)


@register_segment_reader(2)
def _read_record_v2(base, pointer: RecordPointer) -> bytes:
    """v2: raw payload file verified against the manifest's SHA-256."""
    payload = _read_file(base, pointer)
    if pointer.sha256 is not None and sha256_hex(payload) != pointer.sha256:
        raise CorruptionError(
            f"checksum mismatch for {base / pointer.path} "
            f"({len(payload)} bytes on disk; file is damaged)"
        )
    return payload


@register_segment_reader(3)
def _read_record_v3(base, pointer: RecordPointer) -> bytes:
    """v3: self-verifying segment envelope, cross-checked with the manifest."""
    blob = _read_file(base, pointer)
    header, payload = decode_segment(blob, str(base / pointer.path))
    if header["image_id"] != pointer.image_id or header["kind"] != pointer.kind:
        raise CorruptionError(
            f"{base / pointer.path}: segment header names "
            f"{header['kind']}/{header['image_id']}, manifest expects "
            f"{pointer.kind}/{pointer.image_id} (files swapped?)"
        )
    if pointer.sha256 is not None and header["payload_sha256"] != pointer.sha256:
        raise CorruptionError(
            f"{base / pointer.path}: segment checksum disagrees with the "
            "manifest (stale segment)"
        )
    return payload


def read_record(base, pointer: RecordPointer) -> bytes:
    """Read one record's payload through the versioned reader registry."""
    reader = _SEGMENT_READERS.get(pointer.segment_version)
    if reader is None:
        known = ", ".join(str(v) for v in supported_segment_versions())
        raise PersistenceError(
            f"record {pointer.image_id!r} has segment version "
            f"{pointer.segment_version}, but this build only reads "
            f"versions {known} — upgrade the library or migrate the "
            "catalog down"
        )
    return reader(base, pointer)


def ordered_pointers(
    pointers: Dict[str, RecordPointer],
    binary_ids: Iterable[str],
    edited_ids: Iterable[str],
) -> List[RecordPointer]:
    """Pointers in insertion-replay order (bases before derivations)."""
    ordered: List[RecordPointer] = []
    for image_id in list(binary_ids) + list(edited_ids):
        pointer = pointers.get(str(image_id))
        if pointer is None:
            raise PersistenceError(
                f"manifest lists {image_id!r} but has no record pointer for it"
            )
        ordered.append(pointer)
    return ordered
