"""Database statistics and query explanation.

A production MMDBMS fronts its query processor with two things this
module provides over the reproduction's machinery:

* **Selectivity statistics** — per-bin summaries of the binary images'
  histogram fractions (min/max/mean and a small equi-width histogram of
  fractions), maintained from the catalog on demand.  They estimate how
  many binary images a range query will match without touching the data.
* **EXPLAIN** — a dry-run of the BWM Figure 2 algorithm for one query:
  how many clusters would short-circuit, how many edited images would
  need full BOUNDS walks, and the rule-application count both methods
  would pay.  The estimate uses only base histograms plus the stored
  operation counts, so explaining is far cheaper than executing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.query import RangeQuery
from repro.errors import QueryError

#: Buckets of the per-bin fraction distribution summary.
_BUCKETS = 10


@dataclass(frozen=True)
class BinStatistics:
    """Distribution of one bin's fraction across binary images."""

    bin_index: int
    minimum: float
    maximum: float
    mean: float
    bucket_counts: np.ndarray  # equi-width over [0, 1]

    def estimate_selectivity(self, pct_min: float, pct_max: float) -> float:
        """Estimated fraction of binary images with fraction in range.

        Uses the bucket histogram with uniform-within-bucket assumption —
        the textbook equi-width estimator.
        """
        if pct_min > pct_max:
            raise QueryError(f"empty range [{pct_min}, {pct_max}]")
        total = float(self.bucket_counts.sum())
        if total == 0:
            return 0.0
        width = 1.0 / _BUCKETS
        covered = 0.0
        for bucket, count in enumerate(self.bucket_counts):
            lo = bucket * width
            hi = lo + width
            overlap = max(0.0, min(hi, pct_max) - max(lo, pct_min))
            if hi > 1.0 - 1e-12 and pct_max >= 1.0:
                overlap = max(overlap, hi - max(lo, pct_min))
            covered += count * min(1.0, overlap / width)
        return covered / total


@dataclass(frozen=True)
class QueryExplanation:
    """Dry-run summary of how BWM would process one query."""

    query: RangeQuery
    binary_images: int
    estimated_binary_matches: int
    clusters_short_circuited: int
    edited_accepted_without_rules: int
    edited_needing_bounds: int
    rules_rbm_would_apply: int
    rules_bwm_would_apply: int

    @property
    def rules_saved(self) -> int:
        """Rule applications BWM avoids versus RBM."""
        return self.rules_rbm_would_apply - self.rules_bwm_would_apply

    def describe(self) -> str:
        """Human-readable EXPLAIN output."""
        lines = [
            f"EXPLAIN {self.query!r}",
            f"  binary images: {self.binary_images} "
            f"(~{self.estimated_binary_matches} match)",
            f"  Main clusters short-circuited: {self.clusters_short_circuited} "
            f"({self.edited_accepted_without_rules} edited accepted rule-free)",
            f"  edited images needing BOUNDS: {self.edited_needing_bounds}",
            f"  rule applications: RBM {self.rules_rbm_would_apply}, "
            f"BWM {self.rules_bwm_would_apply} "
            f"(saves {self.rules_saved})",
        ]
        return "\n".join(lines)


class DatabaseStatistics:
    """Statistics collector over one database's catalog."""

    def __init__(self, database: "MultimediaDatabase") -> None:  # noqa: F821
        self._database = database
        self._bin_stats: Dict[int, BinStatistics] = {}
        self._version = -1

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute all per-bin statistics from the catalog."""
        catalog = self._database.catalog
        fractions: List[np.ndarray] = [
            catalog.histogram_of(image_id).fractions()
            for image_id in catalog.binary_ids()
        ]
        self._bin_stats.clear()
        if not fractions:
            return
        matrix = np.stack(fractions)  # images x bins
        for bin_index in range(self._database.quantizer.bin_count):
            column = matrix[:, bin_index]
            buckets = np.clip(
                (column * _BUCKETS).astype(np.int64), 0, _BUCKETS - 1
            )
            self._bin_stats[bin_index] = BinStatistics(
                bin_index=bin_index,
                minimum=float(column.min()),
                maximum=float(column.max()),
                mean=float(column.mean()),
                bucket_counts=np.bincount(buckets, minlength=_BUCKETS),
            )

    def bin_statistics(self, bin_index: int) -> BinStatistics:
        """Statistics for one bin (refreshing lazily on first use)."""
        self._database.quantizer.validate_bin(bin_index)
        if not self._bin_stats:
            self.refresh()
        if bin_index not in self._bin_stats:
            raise QueryError("statistics unavailable: no binary images stored")
        return self._bin_stats[bin_index]

    # ------------------------------------------------------------------
    def explain(self, query: RangeQuery) -> QueryExplanation:
        """Dry-run the Figure 2 algorithm for ``query`` (no BOUNDS walks)."""
        database = self._database
        database.quantizer.validate_bin(query.bin_index)
        catalog = database.catalog
        structure = database.bwm_structure

        op_count = {
            edited_id: len(catalog.sequence_of(edited_id))
            for edited_id in catalog.edited_ids()
        }
        rules_rbm = sum(op_count.values())

        short_circuited = 0
        accepted_free = 0
        needing_bounds = 0
        rules_bwm = 0
        binary_matches = 0
        for base_id, cluster in structure.clusters():
            histogram = catalog.histogram_of(base_id)
            if query.matches_histogram(histogram):
                binary_matches += 1
                short_circuited += 1
                accepted_free += len(cluster)
            else:
                needing_bounds += len(cluster)
                rules_bwm += sum(op_count[edited_id] for edited_id in cluster)
        needing_bounds += len(structure.unclassified)
        rules_bwm += sum(
            op_count[edited_id] for edited_id in structure.unclassified
        )

        stats = self.bin_statistics(query.bin_index) if catalog.binary_count else None
        estimated = (
            int(round(stats.estimate_selectivity(query.pct_min, query.pct_max)
                      * catalog.binary_count))
            if stats is not None
            else 0
        )
        return QueryExplanation(
            query=query,
            binary_images=catalog.binary_count,
            estimated_binary_matches=estimated,
            clusters_short_circuited=short_circuited,
            edited_accepted_without_rules=accepted_free,
            edited_needing_bounds=needing_bounds,
            rules_rbm_would_apply=rules_rbm,
            rules_bwm_would_apply=rules_bwm,
        )
