"""Database augmentation: inserting edited versions of base images (§2).

"For each image object z in the database, the system will store z along
with a set of images created by transforming z using sequences of editing
operations."  :func:`augment_image` builds that set for one base image
from the recipe pool, controlling the bound-widening mix — the knob the
paper's Table 2 reports and the A1 ablation sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.editing.recipes import build_variant
from repro.editing.sequence import EditSequence
from repro.errors import WorkloadError
from repro.images.raster import ColorTuple


def plan_variant_sequences(
    rng: np.random.Generator,
    base_id: str,
    height: int,
    width: int,
    palette: Sequence[ColorTuple],
    variants: int,
    bound_widening_fraction: float = 0.8,
    merge_target_pool: Sequence[str] = (),
) -> List[EditSequence]:
    """Edit sequences for ``variants`` derived versions of one base image.

    ``bound_widening_fraction`` of the variants (rounded) use only
    bound-widening operations; the remainder contain at least one
    non-widening operation (a general warp, or a Merge onto a random
    image from ``merge_target_pool`` when one is supplied).
    """
    if variants < 0:
        raise WorkloadError("variant count must be non-negative")
    if not 0.0 <= bound_widening_fraction <= 1.0:
        raise WorkloadError(
            f"bound_widening_fraction must be in [0, 1], got {bound_widening_fraction}"
        )
    widening_count = int(round(variants * bound_widening_fraction))
    sequences: List[EditSequence] = []
    for index in range(variants):
        wants_widening = index < widening_count
        target: Optional[str] = None
        if not wants_widening and merge_target_pool:
            target = merge_target_pool[int(rng.integers(len(merge_target_pool)))]
        operations = build_variant(
            rng, height, width, palette, bound_widening=wants_widening,
            merge_target=target,
        )
        sequences.append(EditSequence(base_id, tuple(operations)))
    return sequences


def darkened_color(color: ColorTuple, factor: float) -> ColorTuple:
    """The color a lighting change of ``factor`` maps ``color`` to."""
    return tuple(int(round(component * factor)) for component in color)  # type: ignore[return-value]


def plan_distortion_sequences(
    image: "Image",  # noqa: F821 - raster type, imported lazily below
    base_id: str,
    darken_factor: float = 0.55,
) -> List[EditSequence]:
    """Edit sequences simulating the §2 matching failures for one base.

    The paper's motivating example is an object photographed "under
    varying lighting conditions or under varying settings": augmenting
    with variants that *mimic those distortions* is what lets a distorted
    query match.  Three targeted variants per base:

    * **darkened** — every distinct color Modify-ed to its darkened value
      (a global lighting change expressed in the operation algebra);
    * **blurred** — two whole-image Combines (defocus);
    * **cropped** — the central region via Define + NULL Merge.

    A color is skipped when its darkened value collides with another
    color still awaiting translation (a later Modify would double-map the
    already-darkened pixels); with photographic palettes this is rare.
    """
    from repro.editing.operations import Combine, Define, Merge, Modify
    from repro.images.geometry import Rect

    if not 0.0 < darken_factor <= 1.0:
        raise WorkloadError(f"darken factor must be in (0, 1], got {darken_factor}")
    full = Define(Rect(0, 0, image.height, image.width))

    colors = list(image.distinct_colors())
    pending = set(colors)
    darken_ops: List[object] = [full]
    for color in colors:
        pending.discard(color)
        target = darkened_color(color, darken_factor)
        if target in pending:
            continue
        if target != color:
            darken_ops.append(Modify(color, target))

    blur_ops = [full, Combine.box(), Combine.box()]

    margin_x = max(1, image.height // 5)
    margin_y = max(1, image.width // 5)
    crop_ops = [
        Define(Rect(margin_x, margin_y, image.height, image.width)),
        Merge(None),
    ]

    return [
        EditSequence(base_id, tuple(darken_ops)),
        EditSequence(base_id, tuple(blur_ops)),
        EditSequence(base_id, tuple(crop_ops)),
    ]


def augment_with_distortions(
    database: "MultimediaDatabase",  # noqa: F821 - facade type, avoids import cycle
    base_id: str,
    darken_factors: Sequence[float] = (0.55,),
) -> List[str]:
    """Insert distortion variants of ``base_id``; returns their ids.

    One darkened variant per factor (covering the range of lighting
    changes the application expects), plus one blurred and one cropped
    variant.
    """
    base = database.catalog.binary_record(base_id)
    if not darken_factors:
        raise WorkloadError("at least one darken factor is required")
    inserted: List[str] = []
    for index, factor in enumerate(darken_factors):
        sequences = plan_distortion_sequences(base.image, base_id, factor)
        if index == 0:
            chosen = sequences  # darken + blur + crop
        else:
            chosen = sequences[:1]  # only the darken variant differs
        inserted.extend(database.insert_edited(s) for s in chosen)
    return inserted


def augment_image(
    database: "MultimediaDatabase",  # noqa: F821 - facade type, avoids import cycle
    base_id: str,
    rng: np.random.Generator,
    variants: int,
    palette: Sequence[ColorTuple],
    bound_widening_fraction: float = 0.8,
    merge_target_pool: Sequence[str] = (),
) -> List[str]:
    """Insert ``variants`` edited versions of ``base_id``; returns their ids.

    The Merge target pool is filtered to exclude the base itself so the
    derivation graph stays acyclic.
    """
    base = database.catalog.binary_record(base_id)
    targets = [t for t in merge_target_pool if t != base_id]
    sequences = plan_variant_sequences(
        rng,
        base_id,
        base.image.height,
        base.image.width,
        palette,
        variants,
        bound_widening_fraction=bound_widening_fraction,
        merge_target_pool=targets,
    )
    return [database.insert_edited(sequence) for sequence in sequences]
