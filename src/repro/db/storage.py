"""Storage accounting: the §2 space-saving argument, quantified.

"an image stored as a set of editing operations will consume much less
space than the same image stored in a conventional binary format."  A
:class:`StorageReport` measures exactly that over a catalog: bytes used
by the binary rasters, bytes used by edit sequences, and the bytes the
same edited images *would* occupy if instantiated and stored as rasters
(experiment A3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.db.catalog import Catalog
from repro.images.ppm import binary_size_bytes
from repro.images.raster import Image

#: Instantiates an edited image id (provided by the database facade).
Instantiator = Callable[[str], Image]


@dataclass(frozen=True)
class StorageReport:
    """Byte-level accounting of a catalog's storage."""

    binary_images: int
    edited_images: int
    binary_bytes: int
    edited_sequence_bytes: int
    edited_if_instantiated_bytes: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        """Bytes actually stored (rasters + sequences)."""
        return self.binary_bytes + self.edited_sequence_bytes

    @property
    def bytes_saved(self) -> Optional[int]:
        """Bytes saved by edit-sequence storage vs. storing rasters."""
        if self.edited_if_instantiated_bytes is None:
            return None
        return self.edited_if_instantiated_bytes - self.edited_sequence_bytes

    @property
    def savings_ratio(self) -> Optional[float]:
        """Sequence bytes as a fraction of the raster bytes they replace."""
        if self.edited_if_instantiated_bytes in (None, 0):
            return None
        return self.edited_sequence_bytes / self.edited_if_instantiated_bytes

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"binary images:  {self.binary_images:6d}  ({self.binary_bytes:,} bytes)",
            f"edited images:  {self.edited_images:6d}  "
            f"({self.edited_sequence_bytes:,} bytes as sequences)",
        ]
        if self.edited_if_instantiated_bytes is not None:
            lines.append(
                f"same edited images as rasters: "
                f"{self.edited_if_instantiated_bytes:,} bytes "
                f"(sequences use {100.0 * (self.savings_ratio or 0):.2f}%)"
            )
        lines.append(f"total stored: {self.total_bytes:,} bytes")
        return "\n".join(lines)


def measure_storage(
    catalog: Catalog, instantiate: Optional[Instantiator] = None
) -> StorageReport:
    """Account the catalog's storage.

    With ``instantiate`` provided, also materializes every edited image to
    measure the raster bytes that edit-sequence storage avoids (this is
    the expensive half and is only done for the A3 experiment).
    """
    binary_bytes = sum(
        catalog.binary_record(image_id).storage_size_bytes()
        for image_id in catalog.binary_ids()
    )
    sequence_bytes = sum(
        catalog.edited_record(image_id).storage_size_bytes()
        for image_id in catalog.edited_ids()
    )
    instantiated_bytes: Optional[int] = None
    if instantiate is not None:
        instantiated_bytes = sum(
            binary_size_bytes(instantiate(image_id))
            for image_id in catalog.edited_ids()
        )
    return StorageReport(
        binary_images=catalog.binary_count,
        edited_images=catalog.edited_count,
        binary_bytes=binary_bytes,
        edited_sequence_bytes=sequence_bytes,
        edited_if_instantiated_bytes=instantiated_bytes,
    )
