"""`MultimediaDatabase` — the MMDBMS facade tying every subsystem together.

One object owns the catalog, the histogram quantizer, the edit executor,
the bounds engine, the BWM structure (maintained incrementally on every
insert, per Figure 1), and the conventional multidimensional index over
binary-image histograms.  Everything the examples and benchmarks do goes
through this API.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.color.histogram import ColorHistogram
from repro.color.names import color_by_name
from repro.color.quantization import UniformQuantizer
from repro.core.bounds import BoundsEngine, PixelBounds
from repro.core.bwm import BWMProcessor, BWMStructure
from repro.core.query import ConjunctiveQuery, QueryResult, RangeQuery
from repro.core.rbm import RBMProcessor
from repro.db.augmentation import augment_image
from repro.db.catalog import Catalog
from repro.db.processors import (
    InstantiateProcessor,
    KNNResult,
    SimilaritySearch,
)
from repro.db.records import BinaryImageRecord, EditedImageRecord
from repro.db.storage import StorageReport, measure_storage
from repro.editing.executor import EditExecutor
from repro.editing.sequence import EditSequence
from repro.errors import QueryError
from repro.images.raster import ColorTuple, Image, validate_color
from repro.index.linear import LinearIndex
from repro.index.mbr import MBR
from repro.index.rtree import RTree
from repro.index.vafile import VAFile

#: Supported range-query processing methods.
RANGE_METHODS = ("bwm", "rbm", "instantiate")

#: Supported kNN strategies.
KNN_METHODS = ("binary", "exact", "bounded", "intersection")


class MultimediaDatabase:
    """An augmented MMDBMS storing rasters and edit sequences.

    Parameters
    ----------
    quantizer:
        Histogram quantizer shared by all features; defaults to the
        paper-scale RGB quantizer with 4 divisions per channel (64 bins).
    fill_color:
        Fill used by Mutate/Merge semantics (executor *and* rules).
    index_kind:
        ``"rtree"`` (default), ``"vafile"``, or ``"linear"`` — the
        conventional access method over binary-image histograms.
    bounds_cache:
        Memoize BOUNDS intervals per image with dependency-aware
        invalidation: a catalog change drops only entries reachable from
        the changed image through base/Merge references.  Off by default
        so benchmarks measure the algorithms themselves.
    """

    def __init__(
        self,
        quantizer: Optional[UniformQuantizer] = None,
        fill_color: Sequence[int] = (0, 0, 0),
        index_kind: str = "rtree",
        bounds_cache: bool = False,
    ) -> None:
        self.quantizer = quantizer if quantizer is not None else UniformQuantizer(4, "rgb")
        self.fill_color: ColorTuple = validate_color(fill_color)
        self.catalog = Catalog()
        self.executor = EditExecutor(resolve=self.instantiate, fill_color=self.fill_color)
        self.engine = BoundsEngine(
            self.catalog,
            self.quantizer,
            fill_color=self.fill_color,
            cache_enabled=bounds_cache,
        )
        self.bwm_structure = BWMStructure()
        if index_kind == "rtree":
            self.histogram_index: Union[RTree, LinearIndex, VAFile] = RTree(
                max_entries=8
            )
        elif index_kind == "vafile":
            self.histogram_index = VAFile(bits=4)
        elif index_kind == "linear":
            self.histogram_index = LinearIndex()
        else:
            raise QueryError(f"unknown index kind {index_kind!r}")

        self._rbm = RBMProcessor(self.catalog, self.engine)
        self._bwm = BWMProcessor(self.bwm_structure, self.catalog, self.engine)
        self._instantiate_processor = InstantiateProcessor(
            self.catalog, self.instantiate
        )
        self._similarity = SimilaritySearch(
            self.catalog, self.engine, self.instantiate
        )

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert_image(self, image: Image, image_id: Optional[str] = None) -> str:
        """Store a binary image: extract features, index, open a BWM cluster.

        Exception-safe: a failure at any step rolls back the earlier
        steps, so the catalog, BWM structure, and histogram index never
        diverge on a failed insert.
        """
        assigned = image_id if image_id is not None else self.catalog.allocate_id("img")
        histogram = ColorHistogram.of_image(image, self.quantizer)
        self.catalog.add_binary(BinaryImageRecord(assigned, image.copy(), histogram))
        try:
            self.bwm_structure.insert_binary(assigned)
        except BaseException:
            self.catalog.remove_binary(assigned)
            raise
        try:
            self.histogram_index.insert_point(histogram.fractions(), assigned)
        except BaseException:
            self.bwm_structure.remove_binary(assigned)
            self.catalog.remove_binary(assigned)
            raise
        # A fresh id has no cached entries to drop, but the invalidation
        # still fires the engine's listeners so serving-layer structures
        # (result cache, statistics, indexes) learn the catalog changed.
        self.engine.invalidate(assigned)
        return assigned

    def insert_edited(
        self, sequence: EditSequence, image_id: Optional[str] = None
    ) -> str:
        """Store an edited image as its sequence; file it per Figure 1.

        Exception-safe: if the BWM filing fails the catalog insert is
        rolled back.
        """
        assigned = image_id if image_id is not None else self.catalog.allocate_id("edit")
        self.catalog.add_edited(EditedImageRecord(assigned, sequence))
        try:
            self.bwm_structure.insert_edited(assigned, sequence)
        except BaseException:
            self.catalog.remove_edited(assigned)
            raise
        self.engine.invalidate(assigned)
        return assigned

    def delete_edited(self, image_id: str) -> None:
        """Remove an edited image from the catalog and BWM structure."""
        record = self.catalog.remove_edited(image_id)
        try:
            self.bwm_structure.remove_edited(image_id)
        except BaseException:
            self.catalog.add_edited(record)
            raise
        self.engine.invalidate(image_id)

    def delete_image(self, image_id: str) -> None:
        """Remove a binary image.

        Fails (leaving everything intact) while derived images or Merge
        targets still reference it — delete those first.  Exception-safe:
        a failure in the BWM or index removal restores the catalog
        record.
        """
        record = self.catalog.binary_record(image_id)
        self.catalog.remove_binary(image_id)
        try:
            self.bwm_structure.remove_binary(image_id)
        except BaseException:
            self.catalog.add_binary(record)
            raise
        try:
            self.histogram_index.delete(
                MBR.point(record.histogram.fractions()), image_id
            )
        except BaseException:
            self.bwm_structure.insert_binary(image_id)
            self.catalog.add_binary(record)
            raise
        self.engine.invalidate(image_id)

    def update_image(self, image_id: str, image: Image) -> None:
        """Replace a binary image's raster in place.

        Features are re-extracted, the histogram index entry is moved,
        and cached bounds are invalidated; derived edit sequences keep
        referencing the id and now instantiate against the new raster
        (the §2 links are by identity, not content).  Exception-safe:
        the index entry and the record mutate together or not at all.
        """
        old = self.catalog.binary_record(image_id)
        histogram = ColorHistogram.of_image(image, self.quantizer)
        old_point = MBR.point(old.histogram.fractions())

        self.histogram_index.delete(old_point, image_id)
        try:
            self.histogram_index.insert_point(histogram.fractions(), image_id)
        except BaseException:
            self.histogram_index.insert(old_point, image_id)
            raise
        old.image = image.copy()
        old.histogram = histogram
        self.engine.invalidate(image_id)

    def augment(
        self,
        base_id: str,
        rng: np.random.Generator,
        variants: int,
        palette: Sequence[ColorTuple],
        bound_widening_fraction: float = 0.8,
        merge_target_pool: Sequence[str] = (),
    ) -> List[str]:
        """§2 augmentation: insert ``variants`` edited versions of a base."""
        return augment_image(
            self,
            base_id,
            rng,
            variants,
            palette,
            bound_widening_fraction=bound_widening_fraction,
            merge_target_pool=merge_target_pool,
        )

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------
    def instantiate(self, image_id: str) -> Image:
        """Materialize any stored image (copy for binary, executed for edited)."""
        record = self.catalog.record(image_id)
        if isinstance(record, BinaryImageRecord):
            return record.image.copy()
        base = self.instantiate(record.sequence.base_id)
        return self.executor.instantiate(base, record.sequence)

    def exact_histogram(self, image_id: str) -> ColorHistogram:
        """Exact histogram (instantiates edited images — expensive)."""
        record = self.catalog.record(image_id)
        if isinstance(record, BinaryImageRecord):
            return record.histogram
        return ColorHistogram.of_image(self.instantiate(image_id), self.quantizer)

    def bounds(self, image_id: str, bin_index: int) -> PixelBounds:
        """BOUNDS interval for any stored image and bin."""
        return self.engine.bounds(image_id, bin_index)

    def edited_versions_of(self, base_id: str) -> Tuple[str, ...]:
        """The §2 derivation links from a base image."""
        return self.catalog.derived_from(base_id)

    def base_of(self, edited_id: str) -> str:
        """The referenced base image of an edited image."""
        return self.catalog.edited_record(edited_id).base_id

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------
    def range_query(
        self,
        query: RangeQuery,
        method: str = "bwm",
        expand_to_bases: bool = False,
    ) -> QueryResult:
        """Process a color range query with the chosen method.

        ``expand_to_bases`` applies the §2 connection: when an edited
        image matches, its base image joins the result even if the base's
        own features do not match.
        """
        processor = {
            "bwm": self._bwm,
            "rbm": self._rbm,
            "instantiate": self._instantiate_processor,
        }.get(method)
        if processor is None:
            raise QueryError(f"unknown method {method!r}; expected one of {RANGE_METHODS}")
        self.quantizer.validate_bin(query.bin_index)
        result = processor.process(query)
        if not expand_to_bases:
            return result
        expanded = set(result.matches)
        for image_id in result.matches:
            record = self.catalog.record(image_id)
            if isinstance(record, EditedImageRecord):
                expanded.add(record.base_id)
        return QueryResult(frozenset(expanded), result.stats)

    def range_query_color(
        self,
        color: Union[str, Sequence[int]],
        pct_min: float,
        pct_max: float = 1.0,
        method: str = "bwm",
        expand_to_bases: bool = False,
    ) -> QueryResult:
        """Range query by color name or RGB triple ("at least 25% blue")."""
        rgb = color_by_name(color) if isinstance(color, str) else validate_color(color)
        query = RangeQuery(self.quantizer.bin_of(rgb), pct_min, pct_max)
        return self.range_query(query, method=method, expand_to_bases=expand_to_bases)

    def range_query_batch(
        self, queries: Sequence[RangeQuery], method: str = "bwm"
    ) -> List[QueryResult]:
        """Process many range queries in one catalog pass.

        Results (in query order) are identical to per-query processing;
        BOUNDS walks are shared across queries on the same bin, so a
        front-end submitting a burst of queries pays each edited image's
        rules at most once per distinct bin.
        """
        from repro.core.batch import BatchBWMProcessor, BatchRBMProcessor

        for query in queries:
            self.quantizer.validate_bin(query.bin_index)
        if method == "bwm":
            processor = BatchBWMProcessor(
                self.bwm_structure, self.catalog, self.engine
            )
        elif method == "rbm":
            processor = BatchRBMProcessor(self.catalog, self.engine)
        else:
            raise QueryError(
                f"batch processing supports 'bwm' and 'rbm', not {method!r}"
            )
        return processor.process_batch(queries)

    def conjunctive_query(
        self,
        query: ConjunctiveQuery,
        method: str = "bwm",
        expand_to_bases: bool = False,
    ) -> QueryResult:
        """Process a conjunction of range constraints (AND semantics).

        Conservative composition: the per-constraint conservative result
        sets are intersected, which preserves the no-false-negative
        guarantee (see :class:`repro.core.query.ConjunctiveQuery`).
        """
        if method in ("bwm", "rbm"):
            results = self.range_query_batch(list(query.constraints), method=method)
        else:
            results = [
                self.range_query(constraint, method=method)
                for constraint in query.constraints
            ]
        matches = set(results[0].matches)
        stats = results[0].stats
        for result in results[1:]:
            matches &= result.matches
        combined = QueryResult(frozenset(matches), stats)
        if not expand_to_bases:
            return combined
        expanded = set(combined.matches)
        for image_id in combined.matches:
            record = self.catalog.record(image_id)
            if isinstance(record, EditedImageRecord):
                expanded.add(record.base_id)
        return QueryResult(frozenset(expanded), stats)

    def text_query(
        self,
        text: str,
        method: str = "bwm",
        expand_to_bases: bool = False,
    ) -> QueryResult:
        """Process a natural-language query like the paper's example
        "Retrieve all images that are at least 25% blue".

        Conjunctions are supported: "at least 20% red and at most 10%
        blue" intersects the constraints (no false negatives preserved).
        """
        from repro.querylang.parser import parse_conjunctive_query

        parsed_constraints = parse_conjunctive_query(text)
        constraints = tuple(
            RangeQuery(self.quantizer.bin_of(p.rgb), p.pct_min, p.pct_max)
            for p in parsed_constraints
        )
        if len(constraints) == 1:
            return self.range_query(
                constraints[0], method=method, expand_to_bases=expand_to_bases
            )
        return self.conjunctive_query(
            ConjunctiveQuery(constraints),
            method=method,
            expand_to_bases=expand_to_bases,
        )

    def indexed_binary_range_query(
        self, query: RangeQuery
    ) -> List[str]:
        """Conventional path: binary images only, via the histogram index.

        A single-bin range query is a slab in histogram space (§3.1's
        "sections of the multidimensional data space").
        """
        self.quantizer.validate_bin(query.bin_index)
        slab = MBR.slab(
            self.quantizer.bin_count,
            query.bin_index,
            query.pct_min,
            query.pct_max,
            domain_lo=0.0,
            domain_hi=1.0,
        )
        return sorted(self.histogram_index.search(slab))  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Similarity queries (A5 extension)
    # ------------------------------------------------------------------
    def knn(
        self,
        query: Union[Image, ColorHistogram],
        k: int,
        method: str = "bounded",
    ) -> KNNResult:
        """k nearest neighbors by L1 histogram distance."""
        histogram = (
            ColorHistogram.of_image(query, self.quantizer)
            if isinstance(query, Image)
            else query
        )
        if histogram.quantizer != self.quantizer:
            raise QueryError("query histogram uses a different quantizer")
        strategy = {
            "binary": self._similarity.knn_binary,
            "exact": self._similarity.knn_exact,
            "bounded": self._similarity.knn_bounded,
            "intersection": self._similarity.knn_intersection,
        }.get(method)
        if strategy is None:
            raise QueryError(f"unknown method {method!r}; expected one of {KNN_METHODS}")
        return strategy(histogram, k)

    def similarity_range(
        self,
        query: Union[Image, ColorHistogram],
        epsilon: float,
    ) -> KNNResult:
        """All images within L1 distance ``epsilon`` of the query.

        Edited images are instantiated only when their BOUNDS intervals
        cannot exclude them (same pruning idea as the bounded kNN).
        """
        histogram = (
            ColorHistogram.of_image(query, self.quantizer)
            if isinstance(query, Image)
            else query
        )
        if histogram.quantizer != self.quantizer:
            raise QueryError("query histogram uses a different quantizer")
        return self._similarity.range_search(histogram, epsilon)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def explain(self, query: RangeQuery) -> "QueryExplanation":
        """Dry-run EXPLAIN of how BWM would process ``query`` (no rules run)."""
        from repro.db.statistics import DatabaseStatistics

        statistics = DatabaseStatistics(self)
        return statistics.explain(query)

    def verify_integrity(self, recompute_histograms: bool = True):
        """Cross-check catalog/BWM/index/histogram consistency.

        Returns a list of problem descriptions (empty when healthy).
        """
        from repro.db.integrity import verify_integrity

        return verify_integrity(self, recompute_histograms=recompute_histograms)

    def repair(self, recompute_histograms: bool = True):
        """Fix every reparable integrity problem; returns a RepairReport.

        See :func:`repro.db.integrity.repair` for the action classes.
        """
        from repro.db.integrity import repair

        return repair(self, recompute_histograms=recompute_histograms)

    def storage_report(self, include_instantiated: bool = False) -> StorageReport:
        """Byte-level storage accounting (A3)."""
        instantiate = self.instantiate if include_instantiated else None
        return measure_storage(self.catalog, instantiate)

    def structure_summary(self) -> Dict[str, int]:
        """Counts describing the BWM structure (Table 2's bottom rows)."""
        return {
            "binary_images": self.catalog.binary_count,
            "edited_images": self.catalog.edited_count,
            "main_clusters": len(self.bwm_structure.main),
            "main_edited": self.bwm_structure.main_edited_count,
            "unclassified": self.bwm_structure.unclassified_count,
        }

    def __len__(self) -> int:
        return len(self.catalog)

    def ids(self) -> Iterable[str]:
        """Every stored image id (binary first, then edited)."""
        yield from self.catalog.binary_ids()
        yield from self.catalog.edited_ids()
