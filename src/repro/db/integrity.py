"""Integrity checking — the MMDBMS's CHECK utility.

A database is spread over four structures that must stay mutually
consistent: the catalog (records and derivation links), the BWM
structure (Main clusters + Unclassified), the histogram index, and the
stored histograms themselves.  :func:`verify_integrity` cross-checks all
of them and returns a list of human-readable problems (empty when the
database is healthy).

Checks performed:

1. every catalog edited image appears in exactly one BWM component, and
   its placement matches its classification (bound-widening with a
   binary base -> Main; anything else -> Unclassified);
2. every BWM entry refers to a catalog record of the right format;
3. derivation links agree with the stored sequences' base references;
4. every referenced id (bases, Merge targets) exists, and the reference
   graph is acyclic;
5. the histogram index holds exactly the binary images;
6. stored histograms match their raster (full recomputation — the
   expensive check, skippable).
"""

from __future__ import annotations

from typing import List, Set

from repro.color.histogram import ColorHistogram
from repro.errors import DatabaseError


def verify_integrity(
    database: "MultimediaDatabase",  # noqa: F821 - facade type, avoids import cycle
    recompute_histograms: bool = True,
) -> List[str]:
    """Cross-check the database's structures; returns found problems."""
    problems: List[str] = []
    catalog = database.catalog
    structure = database.bwm_structure

    binary_ids = set(catalog.binary_ids())
    edited_ids = set(catalog.edited_ids())

    # --- 1 & 2: BWM component placement matches classification --------
    main_members: Set[str] = set()
    for base_id, cluster in structure.clusters():
        if base_id not in binary_ids:
            problems.append(f"BWM Main cluster key {base_id!r} is not a binary image")
        for edited_id in cluster:
            if edited_id in main_members:
                problems.append(f"edited image {edited_id!r} in two Main clusters")
            main_members.add(edited_id)
            if edited_id not in edited_ids:
                problems.append(
                    f"BWM Main member {edited_id!r} is not a catalog edited image"
                )
    unclassified = set(structure.unclassified)
    if main_members & unclassified:
        problems.append(
            f"images in both components: {sorted(main_members & unclassified)}"
        )
    placed = main_members | unclassified
    for edited_id in edited_ids - placed:
        problems.append(f"edited image {edited_id!r} missing from the BWM structure")
    for edited_id in unclassified - edited_ids:
        problems.append(
            f"BWM Unclassified member {edited_id!r} is not a catalog edited image"
        )

    from repro.core.classify import sequence_is_bound_widening

    for edited_id in edited_ids & placed:
        sequence = catalog.sequence_of(edited_id)
        should_be_main = (
            sequence_is_bound_widening(sequence) and sequence.base_id in binary_ids
        )
        is_main = edited_id in main_members
        if should_be_main != is_main:
            where = "Main" if is_main else "Unclassified"
            problems.append(
                f"edited image {edited_id!r} misplaced in {where} "
                f"(classification says {'Main' if should_be_main else 'Unclassified'})"
            )
        if is_main and edited_id in main_members:
            expected_cluster = sequence.base_id
            if edited_id not in structure.main.get(expected_cluster, []):
                problems.append(
                    f"edited image {edited_id!r} filed under the wrong cluster"
                )

    # --- 3: derivation links match sequences ---------------------------
    for base_id in binary_ids | edited_ids:
        for child_id in catalog.derived_from(base_id):
            if child_id not in edited_ids:
                problems.append(
                    f"derivation link {base_id!r} -> {child_id!r} dangles"
                )
            elif catalog.sequence_of(child_id).base_id != base_id:
                problems.append(
                    f"derivation link {base_id!r} -> {child_id!r} disagrees "
                    "with the stored sequence"
                )
    for edited_id in edited_ids:
        base_id = catalog.sequence_of(edited_id).base_id
        if edited_id not in catalog.derived_from(base_id):
            problems.append(
                f"sequence of {edited_id!r} references {base_id!r} but the "
                "derivation link is missing"
            )

    # --- 4: references exist and the graph is acyclic ------------------
    for edited_id in edited_ids:
        for referenced in catalog.sequence_of(edited_id).referenced_ids():
            if not catalog.contains(referenced):
                problems.append(
                    f"edited image {edited_id!r} references missing {referenced!r}"
                )
    problems.extend(_find_cycles(catalog, edited_ids))

    # --- 5: histogram index coverage -----------------------------------
    index_size = len(database.histogram_index)
    if index_size != len(binary_ids):
        problems.append(
            f"histogram index holds {index_size} entries for "
            f"{len(binary_ids)} binary images"
        )

    # --- 6: histograms match rasters ------------------------------------
    if recompute_histograms:
        for image_id in binary_ids:
            record = catalog.binary_record(image_id)
            recomputed = ColorHistogram.of_image(record.image, database.quantizer)
            if recomputed != record.histogram:
                problems.append(
                    f"stored histogram of {image_id!r} does not match its raster"
                )

    return problems


def _find_cycles(catalog, edited_ids: Set[str]) -> List[str]:
    problems: List[str] = []
    WHITE, GRAY, BLACK = 0, 1, 2
    state = {image_id: WHITE for image_id in edited_ids}

    def visit(image_id: str, path: List[str]) -> None:
        state[image_id] = GRAY
        for referenced in catalog.sequence_of(image_id).referenced_ids():
            if referenced not in state:
                continue  # binary images terminate every path
            if state[referenced] == GRAY:
                cycle = path + [image_id, referenced]
                problems.append(f"reference cycle: {' -> '.join(cycle)}")
            elif state[referenced] == WHITE:
                visit(referenced, path + [image_id])
        state[image_id] = BLACK

    for image_id in edited_ids:
        if state[image_id] == WHITE:
            visit(image_id, [])
    return problems


def require_integrity(database: "MultimediaDatabase") -> None:  # noqa: F821
    """Raise :class:`DatabaseError` listing problems, if any."""
    problems = verify_integrity(database)
    if problems:
        raise DatabaseError(
            "integrity check failed:\n  " + "\n  ".join(problems)
        )
