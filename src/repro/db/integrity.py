"""Integrity checking and self-healing — the MMDBMS's CHECK and REPAIR
utilities.

A database is spread over four structures that must stay mutually
consistent: the catalog (records and derivation links), the BWM
structure (Main clusters + Unclassified), the histogram index, and the
stored histograms themselves.  :func:`verify_integrity` cross-checks all
of them and returns a list of human-readable problems (empty when the
database is healthy).

Checks performed:

1. every catalog edited image appears in exactly one BWM component, and
   its placement matches its classification (bound-widening with a
   binary base -> Main; anything else -> Unclassified);
2. every BWM entry refers to a catalog record of the right format;
3. derivation links agree with the stored sequences' base references;
4. every referenced id (bases, Merge targets) exists, and the reference
   graph is acyclic;
5. the histogram index holds exactly the binary images;
6. stored histograms match their raster (full recomputation — the
   expensive check, skippable).

:func:`repair` fixes the reparable subset of those problems by
reconciling the derived structures (BWM, histogram index, stored
histograms) against the catalog; see its docstring for the action
classes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Set

from repro.color.histogram import ColorHistogram
from repro.errors import DatabaseError
from repro.index.mbr import MBR

logger = logging.getLogger(__name__)


def verify_integrity(
    database: "MultimediaDatabase",  # noqa: F821 - facade type, avoids import cycle
    recompute_histograms: bool = True,
) -> List[str]:
    """Cross-check the database's structures; returns found problems."""
    problems: List[str] = []
    catalog = database.catalog
    structure = database.bwm_structure

    binary_ids = set(catalog.binary_ids())
    edited_ids = set(catalog.edited_ids())

    # --- 1 & 2: BWM component placement matches classification --------
    main_members: Set[str] = set()
    for base_id, cluster in structure.clusters():
        if base_id not in binary_ids:
            problems.append(f"BWM Main cluster key {base_id!r} is not a binary image")
        for edited_id in cluster:
            if edited_id in main_members:
                problems.append(f"edited image {edited_id!r} in two Main clusters")
            main_members.add(edited_id)
            if edited_id not in edited_ids:
                problems.append(
                    f"BWM Main member {edited_id!r} is not a catalog edited image"
                )
    unclassified = set(structure.unclassified)
    if main_members & unclassified:
        problems.append(
            f"images in both components: {sorted(main_members & unclassified)}"
        )
    placed = main_members | unclassified
    for edited_id in edited_ids - placed:
        problems.append(f"edited image {edited_id!r} missing from the BWM structure")
    for edited_id in unclassified - edited_ids:
        problems.append(
            f"BWM Unclassified member {edited_id!r} is not a catalog edited image"
        )

    from repro.core.classify import sequence_is_bound_widening

    for edited_id in edited_ids & placed:
        sequence = catalog.sequence_of(edited_id)
        should_be_main = (
            sequence_is_bound_widening(sequence) and sequence.base_id in binary_ids
        )
        is_main = edited_id in main_members
        if should_be_main != is_main:
            where = "Main" if is_main else "Unclassified"
            problems.append(
                f"edited image {edited_id!r} misplaced in {where} "
                f"(classification says {'Main' if should_be_main else 'Unclassified'})"
            )
        if is_main and edited_id in main_members:
            expected_cluster = sequence.base_id
            if edited_id not in structure.main.get(expected_cluster, []):
                problems.append(
                    f"edited image {edited_id!r} filed under the wrong cluster"
                )

    # --- 3: derivation links match sequences ---------------------------
    for base_id in binary_ids | edited_ids:
        for child_id in catalog.derived_from(base_id):
            if child_id not in edited_ids:
                problems.append(
                    f"derivation link {base_id!r} -> {child_id!r} dangles"
                )
            elif catalog.sequence_of(child_id).base_id != base_id:
                problems.append(
                    f"derivation link {base_id!r} -> {child_id!r} disagrees "
                    "with the stored sequence"
                )
    for edited_id in edited_ids:
        base_id = catalog.sequence_of(edited_id).base_id
        if edited_id not in catalog.derived_from(base_id):
            problems.append(
                f"sequence of {edited_id!r} references {base_id!r} but the "
                "derivation link is missing"
            )

    # --- 4: references exist and the graph is acyclic ------------------
    for edited_id in edited_ids:
        for referenced in catalog.sequence_of(edited_id).referenced_ids():
            if not catalog.contains(referenced):
                problems.append(
                    f"edited image {edited_id!r} references missing {referenced!r}"
                )
    problems.extend(_find_cycles(catalog, edited_ids))

    # --- 5: histogram index coverage -----------------------------------
    index_size = len(database.histogram_index)
    if index_size != len(binary_ids):
        problems.append(
            f"histogram index holds {index_size} entries for "
            f"{len(binary_ids)} binary images"
        )

    # --- 6: histograms match rasters ------------------------------------
    if recompute_histograms:
        for image_id in binary_ids:
            record = catalog.binary_record(image_id)
            recomputed = ColorHistogram.of_image(record.image, database.quantizer)
            if recomputed != record.histogram:
                problems.append(
                    f"stored histogram of {image_id!r} does not match its raster"
                )

    return problems


def _find_cycles(catalog, edited_ids: Set[str]) -> List[str]:
    problems: List[str] = []
    WHITE, GRAY, BLACK = 0, 1, 2
    state = {image_id: WHITE for image_id in edited_ids}

    def visit(image_id: str, path: List[str]) -> None:
        state[image_id] = GRAY
        for referenced in catalog.sequence_of(image_id).referenced_ids():
            if referenced not in state:
                continue  # binary images terminate every path
            if state[referenced] == GRAY:
                cycle = path + [image_id, referenced]
                problems.append(f"reference cycle: {' -> '.join(cycle)}")
            elif state[referenced] == WHITE:
                visit(referenced, path + [image_id])
        state[image_id] = BLACK

    for image_id in edited_ids:
        if state[image_id] == WHITE:
            visit(image_id, [])
    return problems


def require_integrity(database: "MultimediaDatabase") -> None:  # noqa: F821
    """Raise :class:`DatabaseError` listing problems, if any."""
    problems = verify_integrity(database)
    if problems:
        raise DatabaseError(
            "integrity check failed:\n  " + "\n  ".join(problems)
        )


# ----------------------------------------------------------------------
# Self-healing — the REPAIR companion to CHECK
# ----------------------------------------------------------------------
@dataclass
class RepairReport:
    """What :func:`repair` changed, and what it could not fix.

    ``actions`` lists every applied fix; ``remaining`` is the
    post-repair :func:`verify_integrity` output — non-empty only for
    irreparable damage (catalog-level inconsistencies such as broken
    derivation links, missing references, or reference cycles, which
    have no safe automatic fix).
    """

    actions: List[str] = field(default_factory=list)
    remaining: List[str] = field(default_factory=list)

    def note(self, action: str) -> None:
        """Record one applied fix (and warn: repairs mean prior damage)."""
        logger.warning("repair: %s", action)
        self.actions.append(action)

    @property
    def clean(self) -> bool:
        """True when the database verifies clean after the repair."""
        return not self.remaining

    def describe(self) -> str:
        lines = [f"repair applied {len(self.actions)} fix(es)"]
        for action in self.actions:
            lines.append(f"  {action}")
        if self.remaining:
            lines.append(f"{len(self.remaining)} problem(s) not auto-fixable:")
            for problem in self.remaining:
                lines.append(f"  {problem}")
        return "\n".join(lines)


def repair(
    database: "MultimediaDatabase",  # noqa: F821 - facade type, avoids import cycle
    recompute_histograms: bool = True,
) -> RepairReport:
    """Fix the reparable problem classes :func:`verify_integrity` finds.

    The catalog is treated as the source of truth (it holds the primary
    data: rasters and sequences); the derived structures — stored
    histograms, the BWM structure, and the histogram index — are
    reconciled against it:

    * stale stored histograms are recomputed from their rasters (and
      their index entries moved along);
    * the BWM structure is reconciled with the catalog's classification:
      dangling members evicted, missing entries inserted, misfiled or
      duplicated entries re-filed between Main and Unclassified;
    * the histogram index is reconciled: entries for deleted images
      evicted, missing entries reinserted, mispositioned or duplicated
      entries reindexed at the correct histogram point.

    Catalog-level damage (broken derivation links, references to missing
    images, cycles) is *not* touched — inventing or deleting primary
    data is an operator decision — and shows up in ``remaining``.
    """
    report = RepairReport()
    catalog = database.catalog
    binary_ids = set(catalog.binary_ids())

    if recompute_histograms:
        _repair_histograms(database, report)
    _repair_bwm_structure(database, report)
    _repair_histogram_index(database, report)

    if report.actions:
        database.engine.invalidate_cache()
    report.remaining = verify_integrity(
        database, recompute_histograms=recompute_histograms
    )
    assert binary_ids == set(catalog.binary_ids()), "repair must not drop records"
    return report


def _repair_histograms(database: "MultimediaDatabase", report: RepairReport) -> None:  # noqa: F821
    """Recompute stored histograms that disagree with their rasters."""
    for image_id in database.catalog.binary_ids():
        record = database.catalog.binary_record(image_id)
        recomputed = ColorHistogram.of_image(record.image, database.quantizer)
        if recomputed != record.histogram:
            record.histogram = recomputed
            report.note(
                f"recomputed stale histogram of {image_id!r}"
            )
            # The index entry (if any) sits at the stale point; the index
            # reconciliation pass that follows moves it.


def _repair_bwm_structure(database: "MultimediaDatabase", report: RepairReport) -> None:  # noqa: F821
    """Reconcile the BWM structure with the catalog's classification."""
    from repro.core.classify import sequence_is_bound_widening

    catalog = database.catalog
    structure = database.bwm_structure
    binary_ids = set(catalog.binary_ids())
    edited_ids = set(catalog.edited_ids())

    desired = {}
    for edited_id in catalog.edited_ids():
        sequence = catalog.sequence_of(edited_id)
        main = sequence_is_bound_widening(sequence) and sequence.base_id in binary_ids
        desired[edited_id] = sequence.base_id if main else ""

    # Observe every current placement, including duplicates.
    placements = {}
    for base_id, cluster in structure.clusters():
        if base_id not in binary_ids:
            report.note(
                f"removed BWM cluster keyed by non-binary {base_id!r}"
            )
        for edited_id in cluster:
            placements.setdefault(edited_id, []).append(f"Main[{base_id}]")
    for edited_id in structure.unclassified:
        placements.setdefault(edited_id, []).append("Unclassified")
    for binary_id in binary_ids - set(structure.main):
        report.note(f"opened missing BWM cluster for {binary_id!r}")

    for edited_id in sorted(set(placements) - edited_ids):
        report.note(f"evicted dangling BWM member {edited_id!r}")
    for edited_id in sorted(edited_ids):
        target = desired[edited_id]
        want = f"Main[{target}]" if target else "Unclassified"
        have = placements.get(edited_id, [])
        if not have:
            report.note(
                f"inserted missing BWM entry for {edited_id!r} ({want})"
            )
        elif len(have) > 1:
            report.note(
                f"removed duplicate BWM entries for {edited_id!r} "
                f"({', '.join(sorted(have))}; kept {want})"
            )
        elif have[0] != want:
            report.note(
                f"reclassified {edited_id!r} from {have[0]} to {want}"
            )

    # Rebuild in place (the BWM processor aliases these containers).
    structure.main.clear()
    structure.unclassified.clear()
    structure._edited_location.clear()
    for binary_id in catalog.binary_ids():
        structure.insert_binary(binary_id)
    for edited_id in catalog.edited_ids():
        structure.insert_edited(edited_id, catalog.sequence_of(edited_id))


def _repair_histogram_index(database: "MultimediaDatabase", report: RepairReport) -> None:  # noqa: F821
    """Reconcile the histogram index with the catalog's binary images."""
    catalog = database.catalog
    index = database.histogram_index
    binary_ids = set(catalog.binary_ids())

    entries = list(index.items())
    for box, payload in entries:
        if payload not in binary_ids:
            index.delete(box, payload)
            report.note(
                f"evicted histogram-index entry for unknown image {payload!r}"
            )
    for image_id in sorted(binary_ids):
        correct = MBR.point(catalog.binary_record(image_id).histogram.fractions())
        mine = [box for box, payload in entries if payload == image_id]
        if not mine:
            index.insert(correct, image_id)
            report.note(
                f"reinserted missing histogram-index entry for {image_id!r}"
            )
        elif len(mine) > 1 or mine[0] != correct:
            for box in mine:
                index.delete(box, image_id)
            index.insert(correct, image_id)
            report.note(
                f"reindexed {image_id!r} at its correct histogram point"
            )
