"""The MMDBMS catalog: id allocation, records, and derivation links.

The catalog is the single source of truth for what is stored.  It
implements two protocols consumed by the core algorithms:

* :class:`repro.core.query.CatalogView` — iteration and per-id access for
  the RBM/BWM processors;
* :class:`repro.core.bounds.BoundsStore` — the lookup the bounds engine
  uses to start walks and resolve Merge targets.

It also maintains the §2 "connection between images x and op(x)" — the
derivation links used to expand query results with base images.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple, Union

from repro.color.histogram import ColorHistogram
from repro.db.records import BinaryImageRecord, EditedImageRecord, ImageRecord
from repro.editing.sequence import EditSequence
from repro.errors import DatabaseError, DuplicateObjectError, UnknownObjectError


class Catalog:
    """In-memory catalog of binary and edited image records."""

    def __init__(self) -> None:
        self._binary: Dict[str, BinaryImageRecord] = {}
        self._edited: Dict[str, EditedImageRecord] = {}
        self._children: Dict[str, List[str]] = {}
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Id allocation
    # ------------------------------------------------------------------
    def allocate_id(self, prefix: str) -> str:
        """A fresh unique id with a readable prefix (``img-17``)."""
        while True:
            candidate = f"{prefix}-{next(self._counter)}"
            if candidate not in self._binary and candidate not in self._edited:
                return candidate

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_binary(self, record: BinaryImageRecord) -> None:
        """Register a binary image record."""
        self._require_fresh(record.image_id)
        self._binary[record.image_id] = record
        self._children.setdefault(record.image_id, [])

    def add_edited(self, record: EditedImageRecord) -> None:
        """Register an edited image; every referenced id must exist."""
        self._require_fresh(record.image_id)
        for referenced in record.sequence.referenced_ids():
            if not self.contains(referenced):
                raise UnknownObjectError(
                    f"edited image {record.image_id!r} references unknown "
                    f"image {referenced!r}"
                )
        self._edited[record.image_id] = record
        self._children.setdefault(record.base_id, []).append(record.image_id)

    def remove_edited(self, image_id: str) -> EditedImageRecord:
        """Drop an edited image, returning its record."""
        record = self._edited.pop(image_id, None)
        if record is None:
            raise UnknownObjectError(f"edited image {image_id!r} not in catalog")
        self._children[record.base_id].remove(image_id)
        return record

    def remove_binary(self, image_id: str) -> BinaryImageRecord:
        """Drop a binary image; fails while derived images reference it."""
        if image_id not in self._binary:
            raise UnknownObjectError(f"binary image {image_id!r} not in catalog")
        if self._children.get(image_id):
            raise DatabaseError(
                f"binary image {image_id!r} still has "
                f"{len(self._children[image_id])} derived images"
            )
        referencing = [
            edited_id
            for edited_id, record in self._edited.items()
            if image_id in record.sequence.referenced_ids()
        ]
        if referencing:
            raise DatabaseError(
                f"binary image {image_id!r} is a Merge target of {referencing}"
            )
        self._children.pop(image_id, None)
        return self._binary.pop(image_id)

    def _require_fresh(self, image_id: str) -> None:
        if self.contains(image_id):
            raise DuplicateObjectError(f"image id {image_id!r} already in catalog")

    # ------------------------------------------------------------------
    # CatalogView protocol (core query processors)
    # ------------------------------------------------------------------
    def binary_ids(self) -> Iterator[str]:
        """Ids of conventionally stored images, in insertion order."""
        return iter(self._binary)

    def edited_ids(self) -> Iterator[str]:
        """Ids of edit-sequence images, in insertion order."""
        return iter(self._edited)

    def histogram_of(self, image_id: str) -> ColorHistogram:
        """Exact histogram of a binary image."""
        return self.binary_record(image_id).histogram

    def sequence_of(self, image_id: str) -> EditSequence:
        """Edit sequence of an edited image."""
        return self.edited_record(image_id).sequence

    # ------------------------------------------------------------------
    # BoundsStore protocol (bounds engine)
    # ------------------------------------------------------------------
    def lookup_for_bounds(
        self, image_id: str
    ) -> Union[Tuple[ColorHistogram, int, int], EditSequence]:
        """``(histogram, h, w)`` for binary images, sequence for edited."""
        record = self._binary.get(image_id)
        if record is not None:
            return (record.histogram, record.image.height, record.image.width)
        edited = self._edited.get(image_id)
        if edited is not None:
            return edited.sequence
        raise UnknownObjectError(f"image {image_id!r} not in catalog")

    # ------------------------------------------------------------------
    # General access
    # ------------------------------------------------------------------
    def contains(self, image_id: str) -> bool:
        """True when the id names a stored image of either format."""
        return image_id in self._binary or image_id in self._edited

    def record(self, image_id: str) -> ImageRecord:
        """The record of either format."""
        found = self._binary.get(image_id) or self._edited.get(image_id)
        if found is None:
            raise UnknownObjectError(f"image {image_id!r} not in catalog")
        return found

    def binary_record(self, image_id: str) -> BinaryImageRecord:
        """The record of a binary image (raises for edited ids)."""
        record = self._binary.get(image_id)
        if record is None:
            raise UnknownObjectError(f"binary image {image_id!r} not in catalog")
        return record

    def edited_record(self, image_id: str) -> EditedImageRecord:
        """The record of an edited image (raises for binary ids)."""
        record = self._edited.get(image_id)
        if record is None:
            raise UnknownObjectError(f"edited image {image_id!r} not in catalog")
        return record

    def derived_from(self, base_id: str) -> Tuple[str, ...]:
        """Edited images whose sequence references ``base_id`` as base."""
        if not self.contains(base_id):
            raise UnknownObjectError(f"image {base_id!r} not in catalog")
        return tuple(self._children.get(base_id, ()))

    @property
    def binary_count(self) -> int:
        """Number of binary images."""
        return len(self._binary)

    @property
    def edited_count(self) -> int:
        """Number of edited images."""
        return len(self._edited)

    def __len__(self) -> int:
        return self.binary_count + self.edited_count

    def __contains__(self, image_id: object) -> bool:
        return isinstance(image_id, str) and self.contains(image_id)
