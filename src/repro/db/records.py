"""Catalog records for the two storage formats.

§2: the MMDBMS "will store images conventionally and as sequences of
editing operations".  A :class:`BinaryImageRecord` holds a raster plus
its extracted histogram (features are extracted at insertion time, §1);
an :class:`EditedImageRecord` holds only the edit sequence — instantiating
it is deliberately *not* free, which is the entire premise of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.color.histogram import ColorHistogram
from repro.editing.sequence import EditSequence
from repro.errors import DatabaseError
from repro.images.ppm import binary_size_bytes
from repro.images.raster import Image

#: Storage format tags.
BINARY_FORMAT = "binary"
EDITED_FORMAT = "edited"


@dataclass
class BinaryImageRecord:
    """An image stored in the conventional binary (raster) format."""

    image_id: str
    image: Image
    histogram: ColorHistogram

    format = BINARY_FORMAT

    def __post_init__(self) -> None:
        if not self.image_id:
            raise DatabaseError("image ids must be non-empty")
        if self.histogram.total != self.image.size:
            raise DatabaseError(
                f"histogram total {self.histogram.total} does not match image "
                f"size {self.image.size} for {self.image_id!r}"
            )

    def storage_size_bytes(self) -> int:
        """Bytes the raster occupies in its binary storage format (P6 ppm)."""
        return binary_size_bytes(self.image)


@dataclass
class EditedImageRecord:
    """An image stored as a sequence of editing operations."""

    image_id: str
    sequence: EditSequence

    format = EDITED_FORMAT

    def __post_init__(self) -> None:
        if not self.image_id:
            raise DatabaseError("image ids must be non-empty")

    @property
    def base_id(self) -> str:
        """The referenced base image id."""
        return self.sequence.base_id

    def storage_size_bytes(self) -> int:
        """Bytes of the serialized edit sequence."""
        return self.sequence.storage_size_bytes()


#: Union of the two record types.
ImageRecord = Union[BinaryImageRecord, EditedImageRecord]
