"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the workflow of the paper's prototype:

``build``     generate a flag/helmet database and save it to a directory
``info``      structure summary and storage accounting of a saved database
``query``     run a text query ("at least 25% blue") against a saved database
``knn``       nearest neighbors of a ppm image against a saved database
``check``     integrity verification of a saved database
``repair``    fix reparable integrity problems and re-save
``salvage``   recover the undamaged records of a corrupted database
``migrate``   migrate a saved database to the v3 segment format in
              journaled batches (``--resume`` after a crash,
              ``--rollback`` to abandon, ``--status`` to inspect)
``evaluate``  regenerate Table 2 and the Figure 3/4 series
``explain``   EXPLAIN (and with ``--analyze``, EXPLAIN ANALYZE) a query:
              costed plan alternatives, executed actuals, prune
              attribution, and the span tree
``serve-stats`` drive a query workload through the concurrent service
              and report planner choices plus service metrics
              (``--prometheus`` for text exposition, ``--slow`` for the
              slow-query log, ``--trace-out`` for a Chrome trace file)
``lint``      run the concurrency/numeric-discipline AST linter plus
              the interprocedural lock-order analysis (CC001 cycles,
              CC002 lock-held-across-fsync) over a source tree
              (default: the installed ``repro`` package)
``race-check`` drive the instrumented concurrency scenarios (metrics,
              events, sharded) under the Eraser-style lockset race
              detector and report CC004 data races
``check-protocols`` exhaustively model-check the WAL, compactor, and
              migration crash protocols over every interleaving and
              crash point up to ``--bound``; CC003 findings carry the
              minimal refuting schedule
``analyze-db`` static soundness checks over a saved database: dangling
              references, Merge cycles, size underflow, BWM placement,
              cache-dependency agreement, vacuous-bounds diagnostics;
              a sharded root (``shards.json`` present) is analyzed
              per shard plus the DB007 cross-shard routing check
``shards``    inspect a sharded catalog root (``--status``) or run one
              synchronous compaction cycle first (``--compact-now``)
``top``       live fleet dashboard over a sharded root: per-shard
              health verdicts, hottest shards, slowest recent queries
              (with trace ids), and recent compactions
              (``--queries N`` to drive a warmup workload first,
              ``--json`` for the payload, ``--prometheus`` for the
              validated unified exposition)
``events``    dump or follow the structured wide-event log
              (``events.jsonl``) of a sharded root
``prove-rules`` prove every classified bound-widening rule monotone on
              the percentage interval and scalar/vectorized kernels
              byte-identical (``--mode full`` for the larger corpus)

Exit codes are uniform across the integrity-facing commands (``check``,
``repair``, ``salvage``, ``lint``, ``race-check``, ``check-protocols``,
``analyze-db``, ``prove-rules``):
**0** clean (or fully healed/recovered), **2** problems remain or the
input is unrecoverably corrupt, **1** any other library or usage error.

The global ``-v/--verbose`` flag attaches a stderr handler to the
``repro`` logger (once for INFO, twice for DEBUG), surfacing salvage,
repair, load-shedding, and slow-query warnings that are otherwise
silent under the library's ``NullHandler``.

All commands are plain functions over the public API, so they double as
integration smoke tests (see ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

import numpy as np

from repro.bench.reporting import render_figure, render_table2
from repro.bench.runner import run_figure_sweep
from repro.db.persistence import load_database, save_database
from repro.errors import CorruptionError, ReproError, SalvageError
from repro.images.ppm import read_ppm
from repro.workloads.datasets import build_database
from repro.workloads.table2 import FLAG_PARAMETERS, HELMET_PARAMETERS

_DATASETS = {"flag": FLAG_PARAMETERS, "helmet": HELMET_PARAMETERS}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Color-based retrieval over edit-sequence image storage "
        "(Brown & Gruenwald, ICDE 2006 reproduction)",
    )
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="log library warnings/info to stderr (-vv for debug)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="generate and save a database")
    build.add_argument("directory", help="output directory")
    build.add_argument("--dataset", choices=sorted(_DATASETS), default="flag")
    build.add_argument("--scale", type=float, default=0.2,
                       help="Table 2 scale factor (default 0.2)")
    build.add_argument("--seed", type=int, default=2006)
    build.add_argument("--edited-percentage", type=float, default=None,
                       help="override the binary/edited split (0-100)")
    build.add_argument("--format", type=int, choices=(2, 3), default=None,
                       dest="format_version",
                       help="on-disk format version (default 2; 3 stores "
                       "each record as a self-verifying segment)")

    info = commands.add_parser("info", help="summarize a saved database")
    info.add_argument("directory")
    info.add_argument("--storage", action="store_true",
                      help="include the instantiated-raster comparison (slow)")

    query = commands.add_parser("query", help="run a text query")
    query.add_argument("directory")
    query.add_argument("text", help='e.g. "at least 25%% blue"')
    query.add_argument("--method", choices=("bwm", "rbm", "instantiate"),
                       default="bwm")
    query.add_argument("--expand", action="store_true",
                       help="also return bases of matching edited images")

    knn = commands.add_parser("knn", help="nearest neighbors of a ppm image")
    knn.add_argument("directory")
    knn.add_argument("image", help="query image (ppm/pgm file)")
    knn.add_argument("-k", type=int, default=5)
    knn.add_argument("--method", choices=("binary", "exact", "bounded", "intersection"),
                     default="bounded")

    check = commands.add_parser("check", help="verify database integrity")
    check.add_argument("directory")
    check.add_argument("--fast", action="store_true",
                       help="skip histogram recomputation")

    repair = commands.add_parser(
        "repair", help="fix reparable integrity problems and re-save"
    )
    repair.add_argument("directory")
    repair.add_argument("--fast", action="store_true",
                        help="skip histogram recomputation")
    repair.add_argument("--dry-run", action="store_true",
                        help="report fixes without writing anything")

    salvage = commands.add_parser(
        "salvage", help="recover the undamaged records of a corrupted database"
    )
    salvage.add_argument("directory")
    salvage.add_argument("--output", "-o", default=None,
                         help="write the recovered database here instead of "
                         "back into the source directory")

    migrate = commands.add_parser(
        "migrate",
        help="migrate a saved database to the v3 segment format in "
        "journaled, crash-resumable batches",
    )
    migrate.add_argument("directory")
    migrate.add_argument("--batch-size", type=int, default=16,
                         help="records rewritten per journal/swap cycle "
                         "(default 16)")
    migrate_action = migrate.add_mutually_exclusive_group()
    migrate_action.add_argument("--resume", action="store_true",
                                help="continue a migration interrupted by "
                                "a crash or I/O error")
    migrate_action.add_argument("--rollback", action="store_true",
                                help="abandon an unfinished migration, "
                                "restoring the original format")
    migrate_action.add_argument("--status", action="store_true",
                                help="report migration progress without "
                                "changing anything")
    migrate.add_argument("--json", action="store_true",
                         help="emit the report/status as JSON")

    evaluate = commands.add_parser(
        "evaluate", help="regenerate Table 2 and the Figure 3/4 series"
    )
    evaluate.add_argument("--scale", type=float, default=0.25)
    evaluate.add_argument("--queries", type=int, default=12)
    evaluate.add_argument("--seed", type=int, default=2006)

    explain = commands.add_parser(
        "explain",
        help="show the costed plan for a query; --analyze also executes "
        "it and reports actuals, prune attribution, and the trace",
    )
    explain.add_argument("directory")
    explain.add_argument("text", help='e.g. "at least 25%% blue"')
    explain.add_argument("--analyze", action="store_true",
                         help="execute the plan and attach actuals "
                         "(EXPLAIN ANALYZE)")
    explain.add_argument("--strategy",
                         choices=("linear_rbm", "bwm", "vectorized_batch",
                                  "index_assisted"),
                         default=None,
                         help="force a strategy instead of the planner's pick")
    explain.add_argument("--no-attribution", action="store_true",
                         help="skip the per-image prune attribution pass")
    explain.add_argument("--json", action="store_true",
                         help="emit the plan (and actuals/trace) as JSON")

    serve = commands.add_parser(
        "serve-stats",
        help="run a query workload through the concurrent query service "
        "and print planner choices plus service metrics",
    )
    serve.add_argument("directory")
    serve.add_argument("--queries", type=int, default=24,
                       help="workload size (default 24)")
    serve.add_argument("--workers", type=int, default=4,
                       help="thread-pool size (default 4)")
    serve.add_argument("--seed", type=int, default=2006)
    serve.add_argument("--json", action="store_true",
                       help="emit the metrics snapshot as JSON "
                       "(deterministic: keys are sorted)")
    serve.add_argument("--prometheus", action="store_true",
                       help="emit the metrics in Prometheus text "
                       "exposition format instead")
    serve.add_argument("--slow", action="store_true",
                       help="dump the slow-query log after the workload")
    serve.add_argument("--slow-threshold", type=float, default=None,
                       metavar="SECONDS",
                       help="record queries at or over this many seconds "
                       "into the slow-query log")
    serve.add_argument("--trace", action="store_true",
                       help="enable span tracing for the workload")
    serve.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the collected traces as a Chrome "
                       "trace_event JSON file (implies --trace)")

    lint = commands.add_parser(
        "lint",
        help="run the concurrency/numeric-discipline AST linter",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: the "
                      "installed repro package)")
    lint.add_argument("--rule", action="append", default=None, metavar="CODE",
                      help="restrict to specific rule codes (repeatable)")
    lint.add_argument("--json", action="store_true",
                      help="emit the findings as JSON")

    race = commands.add_parser(
        "race-check",
        help="run the lockset race detector over instrumented scenarios",
    )
    race.add_argument("scenarios", nargs="*", default=None,
                      help="scenario names to run (default: all of "
                      "metrics, events, sharded)")
    race.add_argument("--json", action="store_true",
                      help="emit the findings as JSON")

    protocols = commands.add_parser(
        "check-protocols",
        help="model-check the WAL/compactor/migration crash protocols",
    )
    protocols.add_argument("models", nargs="*", default=None,
                           help="model names to check (default: all of "
                           "wal, compactor, migration)")
    protocols.add_argument("--bound", type=int, default=None, metavar="N",
                           help="interleaving depth bound (default 64); "
                           "hitting it is reported as a warning, never "
                           "silently treated as a proof")
    protocols.add_argument("--json", action="store_true",
                           help="emit the findings as JSON")

    analyze = commands.add_parser(
        "analyze-db",
        help="static soundness checks over a saved database",
    )
    analyze.add_argument("directory")
    analyze.add_argument("--no-prune-power", action="store_true",
                         help="skip the vacuous-bounds diagnostics (the "
                         "only check that walks bounds)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the findings as JSON")

    shards = commands.add_parser(
        "shards",
        help="inspect or compact a sharded catalog root",
    )
    shards.add_argument("directory")
    shards.add_argument("--status", action="store_true",
                        help="report per-shard record counts, versions, "
                        "served queries, and materializations (default "
                        "action)")
    shards.add_argument("--compact-now", action="store_true",
                        help="run one synchronous compaction cycle before "
                        "reporting")
    shards.add_argument("--min-ops", type=int, default=2, metavar="N",
                        help="compaction policy: minimum sequence length "
                        "worth materializing (default 2)")
    shards.add_argument("--max-per-cycle", type=int, default=4, metavar="N",
                        help="compaction policy: materializations per "
                        "cycle (default 4)")
    shards.add_argument("--json", action="store_true",
                        help="emit the status (and compaction report) as "
                        "JSON")

    top = commands.add_parser(
        "top",
        help="live fleet dashboard over a sharded catalog root: health "
        "verdicts, hottest shards, slowest queries, recent compactions",
    )
    top.add_argument("directory")
    top.add_argument("--queries", type=int, default=0, metavar="N",
                     help="drive N warmup text queries through the "
                     "catalog first, so a freshly opened root has "
                     "latency and work-unit distributions to show")
    top.add_argument("--iterations", type=int, default=1, metavar="N",
                     help="dashboard frames to render (default 1; "
                     "pair with --interval to watch live)")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="seconds between frames (default 2)")
    top.add_argument("--json", action="store_true",
                     help="emit the dashboard payload as JSON instead "
                     "of the rendered table")
    top.add_argument("--prometheus", action="store_true",
                     help="emit (and validate) the unified Prometheus "
                     "exposition for the whole fleet instead; exit 2 "
                     "if the exposition fails validation")

    events = commands.add_parser(
        "events",
        help="dump or follow the structured wide-event log of a "
        "sharded catalog root",
    )
    events.add_argument("directory")
    events.add_argument("--limit", type=int, default=None, metavar="N",
                        help="show only the most recent N events")
    events.add_argument("--kind", default=None, metavar="KIND",
                        help="show only events of this kind "
                        "(e.g. wal.append, compaction.materialized)")
    events.add_argument("--json", action="store_true",
                        help="emit the events as a JSON array")
    events.add_argument("--follow", action="store_true",
                        help="keep polling the log and print events as "
                        "they are appended (Ctrl-C to stop)")
    events.add_argument("--poll", type=float, default=0.5,
                        metavar="SECONDS",
                        help="polling interval for --follow "
                        "(default 0.5)")
    events.add_argument("--max-polls", type=int, default=None,
                        metavar="N",
                        help="stop --follow after N polls (default: "
                        "run until interrupted)")

    prove = commands.add_parser(
        "prove-rules",
        help="prove the Table 1 bound-widening rules monotone and the "
        "scalar/vectorized kernels identical",
    )
    prove.add_argument("--mode", choices=("fast", "full"), default="fast",
                       help="corpus size (full adds more random states and "
                       "operation variants)")
    prove.add_argument("--seed", type=int, default=2006)
    prove.add_argument("--json", action="store_true",
                       help="emit verdicts and findings as JSON")
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_build(args: argparse.Namespace, out) -> int:
    params = _DATASETS[args.dataset].scaled(args.scale)
    rng = np.random.default_rng(args.seed)
    database = build_database(
        params, rng, edited_percentage=args.edited_percentage
    )
    root = save_database(
        database, args.directory, format_version=args.format_version
    )
    summary = database.structure_summary()
    print(f"built {args.dataset} database at {root}", file=out)
    for key, value in summary.items():
        print(f"  {key}: {value}", file=out)
    return 0


def _cmd_info(args: argparse.Namespace, out) -> int:
    database = load_database(args.directory)
    print(f"quantizer: {database.quantizer.describe()}", file=out)
    for key, value in database.structure_summary().items():
        print(f"  {key}: {value}", file=out)
    report = database.storage_report(include_instantiated=args.storage)
    print(report.describe(), file=out)
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    database = load_database(args.directory)
    result = database.text_query(
        args.text, method=args.method, expand_to_bases=args.expand
    )
    print(f"{len(result)} matches ({args.method}):", file=out)
    for image_id in result.sorted_ids():
        print(f"  {image_id}", file=out)
    print(
        f"work: {result.stats.histograms_checked} histograms, "
        f"{result.stats.bounds_computed} BOUNDS, "
        f"{result.stats.rules_applied} rules",
        file=out,
    )
    return 0


def _cmd_knn(args: argparse.Namespace, out) -> int:
    database = load_database(args.directory)
    query_image = read_ppm(args.image)
    result = database.knn(query_image, args.k, method=args.method)
    print(f"{len(result.neighbors)} nearest neighbors ({args.method}):", file=out)
    for score, image_id in result.neighbors:
        print(f"  {image_id}  {score:.4f}", file=out)
    return 0


def _cmd_check(args: argparse.Namespace, out) -> int:
    database = load_database(args.directory)
    problems = database.verify_integrity(recompute_histograms=not args.fast)
    if problems:
        print(f"{len(problems)} integrity problems:", file=out)
        for problem in problems:
            print(f"  {problem}", file=out)
        return 2
    print("integrity check passed", file=out)
    return 0


def _cmd_repair(args: argparse.Namespace, out) -> int:
    try:
        database = load_database(args.directory)
    except CorruptionError as exc:
        # repair fixes *catalog-level* problems in a loadable database;
        # damaged files are salvage's job.  Exit 2 = unrecoverable here.
        print(f"unrecoverable corruption: {exc}", file=sys.stderr)
        print("hint: try `repro salvage` to recover undamaged records",
              file=sys.stderr)
        return 2
    report = database.repair(recompute_histograms=not args.fast)
    print(report.describe(), file=out)
    if report.actions and not args.dry_run:
        save_database(database, args.directory)
        print(f"re-saved repaired database at {args.directory}", file=out)
    return 0 if report.clean else 2


def _cmd_salvage(args: argparse.Namespace, out) -> int:
    try:
        database, report = load_database(args.directory, salvage=True)
    except SalvageError as exc:
        print(f"unrecoverable corruption: {exc}", file=sys.stderr)
        return 2
    print(report.describe(), file=out)
    target = args.output if args.output is not None else args.directory
    save_database(database, target)
    print(
        f"saved salvaged database ({database.catalog.binary_count} binary + "
        f"{database.catalog.edited_count} edited images) at {target}",
        file=out,
    )
    return 0 if report.clean else 2


def _cmd_migrate(args: argparse.Namespace, out) -> int:
    import json

    from repro.db.migration import Migrator

    migrator = Migrator(args.directory, batch_size=args.batch_size)
    if args.status:
        status = migrator.status()
        if args.json:
            print(json.dumps(status.to_dict(), indent=2, sort_keys=True),
                  file=out)
        else:
            print(status.describe(), file=out)
        return 0
    if args.rollback:
        report = migrator.rollback()
    else:
        report = migrator.run(resume=args.resume)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.describe(), file=out)
    return 0


def _cmd_evaluate(args: argparse.Namespace, out) -> int:
    helmet = HELMET_PARAMETERS.scaled(args.scale)
    flag = FLAG_PARAMETERS.scaled(args.scale)
    print(render_table2(helmet, flag), file=out)
    print(file=out)
    helmet_sweep = run_figure_sweep(
        HELMET_PARAMETERS, seed=args.seed, scale=args.scale,
        queries_per_point=args.queries, repeats=3,
    )
    print(render_figure(helmet_sweep, 3), file=out)
    print(file=out)
    flag_sweep = run_figure_sweep(
        FLAG_PARAMETERS, seed=args.seed + 1, scale=args.scale,
        queries_per_point=args.queries, repeats=3,
    )
    print(render_figure(flag_sweep, 4), file=out)
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    import json

    from repro.service import QueryService

    database = load_database(args.directory)
    database.engine.cache_enabled = True
    with QueryService(database, max_workers=1) as service:
        if not args.analyze:
            plans = service.explain(args.text, strategy=args.strategy)
            if args.json:
                payload = [plan.to_dict() for plan in plans]
                print(json.dumps(payload, indent=2, sort_keys=True), file=out)
            else:
                for plan in plans:
                    print(plan.describe(), file=out)
            return 0
        analyzed = service.explain_analyze(
            args.text,
            strategy=args.strategy,
            with_attribution=not args.no_attribution,
        )
    if args.json:
        print(
            json.dumps(analyzed.to_dict(), indent=2, sort_keys=True), file=out
        )
    else:
        print(analyzed.describe(), file=out)
    return 0


def _cmd_serve_stats(args: argparse.Namespace, out) -> int:
    import json

    from repro.obs import to_chrome_trace, tracing
    from repro.service import QueryService
    from repro.workloads.queries import make_query_workload

    database = load_database(args.directory)
    # The serving tier runs with the dependency-aware bounds cache on;
    # the planner's vectorized/index strategies feed off it.
    database.engine.cache_enabled = True
    rng = np.random.default_rng(args.seed)
    queries = make_query_workload(database, rng, args.queries)
    trace_on = args.trace or args.trace_out is not None
    with QueryService(
        database,
        max_workers=args.workers,
        prebuild_indexes=True,
        slow_query_threshold=args.slow_threshold,
    ) as service:
        with tracing(trace_on):
            futures = [service.submit(query) for query in queries]
            outcomes = [future.result() for future in futures]
        plan_counts = service.planner.plan_counts(
            plan for outcome in outcomes for plan in outcome.plans
        )
        snapshot = service.metrics_snapshot()
        exposition = service.prometheus_metrics() if args.prometheus else None
        slow_dump = service.slow_log.describe() if args.slow else None
    if args.trace_out is not None:
        traces = [o.trace for o in outcomes if o.trace is not None]
        with open(args.trace_out, "w") as handle:
            json.dump(to_chrome_trace(traces), handle)
        print(
            f"wrote {len(traces)} query traces to {args.trace_out}", file=out
        )
    if exposition is not None:
        print(exposition, file=out, end="")
        if slow_dump is not None:
            print(slow_dump, file=out)
        return 0
    snapshot["plan_counts"] = dict(sorted(plan_counts.items()))
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True), file=out)
        if slow_dump is not None:
            print(slow_dump, file=out)
        return 0
    print(
        f"served {len(outcomes)} queries on {args.workers} workers "
        f"({sum(1 for o in outcomes if o.cache_hit)} cache hits)",
        file=out,
    )
    print("plans chosen:", file=out)
    for strategy, count in sorted(plan_counts.items()):
        print(f"  {strategy}: {count}", file=out)
    latency = snapshot["histograms"].get("query_seconds")
    if latency:
        print(
            f"latency: mean {latency['mean'] * 1e3:.2f}ms  "
            f"p50 {latency['p50'] * 1e3:.2f}ms  "
            f"p95 {latency['p95'] * 1e3:.2f}ms  "
            f"p99 {latency['p99'] * 1e3:.2f}ms",
            file=out,
        )
    for group in ("counters", "result_cache", "bounds_cache", "slow_queries"):
        print(f"{group}:", file=out)
        for key, value in sorted(snapshot[group].items()):
            print(f"  {key}: {value}", file=out)
    if slow_dump is not None:
        print(slow_dump, file=out)
    return 0


def _cmd_lint(args: argparse.Namespace, out) -> int:
    import json
    from pathlib import Path

    from repro.analysis import AnalysisReport, check_lock_order, lint_paths

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        import repro

        paths = [Path(repro.__file__).parent]
    lint_report = lint_paths(paths, rules=args.rule)
    lock_report = check_lock_order(paths, rules=args.rule)
    # One merged report: the per-line AL rules and the interprocedural
    # CC lock-order pass walk the same files, share the pragma syntax,
    # and gate CI together.  Both honour --rule, so filtering to an AL
    # code silently yields an empty lockgraph half (and vice versa).
    report = AnalysisReport(pass_name="lint")
    report.extend(lint_report)
    report.extend(lock_report)
    report.subjects_examined = lint_report.subjects_examined
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.describe(), file=out)
    return 0 if report.ok else 2


def _cmd_race_check(args: argparse.Namespace, out) -> int:
    import json

    from repro.testing.racecheck import run_race_check

    try:
        report = run_race_check(args.scenarios or None)
    except ValueError as exc:  # unknown scenario name: usage error
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.describe(), file=out)
    return 0 if report.ok else 2


def _cmd_check_protocols(args: argparse.Namespace, out) -> int:
    import json

    from repro.analysis.protocol import DEFAULT_BOUND, check_protocols

    bound = args.bound if args.bound is not None else DEFAULT_BOUND
    try:
        report = check_protocols(args.models or None, max_depth=bound)
    except ValueError as exc:  # unknown model name: usage error
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.describe(), file=out)
    return 0 if report.ok else 2


def _cmd_analyze_db(args: argparse.Namespace, out) -> int:
    import json
    from pathlib import Path

    from repro.analysis import analyze_database

    if (Path(args.directory) / "shards.json").is_file():
        report = _analyze_sharded_root(args)
    else:
        database = load_database(args.directory)
        # The dependency-graph check needs the engine to learn edges, and
        # the prune-power check walks bounds anyway: turn the cache on.
        database.engine.cache_enabled = True
        report = analyze_database(
            database, with_prune_power=not args.no_prune_power
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.describe(), file=out)
    return 0 if report.ok else 2


def _analyze_sharded_root(args: argparse.Namespace):
    """Sharded-root analyze-db: per-shard checks plus DB007 routing."""
    from repro.analysis import analyze_database, check_shard_routing
    from repro.analysis.findings import AnalysisReport
    from repro.shard import ShardedCatalog

    combined = AnalysisReport(pass_name="sharded-catalog")
    with ShardedCatalog.open(args.directory) as sharded:
        for index in range(sharded.shard_count):
            shard_report = analyze_database(
                sharded.shard_database(index),
                with_prune_power=not args.no_prune_power,
            )
            combined.extend(shard_report.findings)
            combined.subjects_examined += shard_report.subjects_examined
        routing = check_shard_routing(sharded)
        combined.extend(routing.findings)
    return combined


def _cmd_shards(args: argparse.Namespace, out) -> int:
    import json

    from repro.shard import CompactionPolicy, Compactor, ShardedCatalog

    with ShardedCatalog.open(args.directory) as sharded:
        compaction_report = None
        if args.compact_now:
            compactor = Compactor(
                sharded,
                CompactionPolicy(
                    min_ops=args.min_ops,
                    max_per_cycle=args.max_per_cycle,
                    min_score=0.0,
                    require_demand=False,
                ),
            )
            report = compactor.run_once()
            compaction_report = {
                "candidates_considered": report.candidates_considered,
                "materialized": list(report.materialized),
                "skipped_stale": report.skipped_stale,
                "projected_saving": report.projected_saving,
            }
        status = sharded.status()
        if args.json:
            payload = dict(status)
            if compaction_report is not None:
                payload["compaction"] = compaction_report
            print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        else:
            print(sharded.describe_status(), file=out)
            if compaction_report is not None:
                print(
                    f"compaction: {len(compaction_report['materialized'])} "
                    f"materialized of "
                    f"{compaction_report['candidates_considered']} "
                    f"candidate(s), {compaction_report['skipped_stale']} "
                    f"stale",
                    file=out,
                )
    return 0


#: Text queries `repro top --queries N` cycles through to warm a root.
_TOP_WARMUP_QUERIES = (
    "at least 10% red",
    "at least 25% blue",
    "at least 10% green",
    "at least 50% red",
)


def _cmd_top(args: argparse.Namespace, out) -> int:
    import json
    import time as _time

    from repro.obs import (
        HealthMonitor,
        render_top,
        top_payload,
        validate_exposition,
    )
    from repro.shard import ShardedCatalog

    with ShardedCatalog.open(args.directory) as sharded:
        for index in range(max(0, args.queries)):
            text = _TOP_WARMUP_QUERIES[index % len(_TOP_WARMUP_QUERIES)]
            sharded.text_query(text)
        monitor = HealthMonitor(sharded)
        for iteration in range(max(1, args.iterations)):
            if iteration:
                _time.sleep(args.interval)
            report = monitor.report()
            if args.prometheus:
                exposition = sharded.prometheus_metrics()
                print(exposition, file=out, end="")
                problems = validate_exposition(exposition)
                if problems:
                    for problem in problems:
                        print(f"invalid exposition: {problem}",
                              file=sys.stderr)
                    return 2
            elif args.json:
                print(
                    json.dumps(
                        top_payload(sharded, report),
                        indent=2,
                        sort_keys=True,
                    ),
                    file=out,
                )
            else:
                print(render_top(sharded, report), file=out, end="")
    return 0


def _cmd_events(args: argparse.Namespace, out) -> int:
    import json
    import time as _time
    from pathlib import Path

    from repro.obs.events import EVENTS_NAME, Event, read_events_jsonl

    path = Path(args.directory)
    if path.is_dir():
        path = path / EVENTS_NAME

    def emit(event: Event) -> None:
        if args.json:
            print(json.dumps(event.to_dict(), sort_keys=True), file=out)
        else:
            print(event.describe(), file=out)

    events = read_events_jsonl(path)
    if args.kind is not None:
        events = [event for event in events if event.kind == args.kind]
    if args.limit is not None:
        events = events[-max(0, args.limit):]
    if args.json and not args.follow:
        payload = [event.to_dict() for event in events]
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        for event in events:
            emit(event)
    if not args.follow:
        return 0
    # Follow mode: poll for appended events by sequence number — seq is
    # monotone per log, so a reopened file never replays old lines.
    last_seq = events[-1].seq if events else 0
    polls = 0
    try:
        while args.max_polls is None or polls < args.max_polls:
            _time.sleep(max(0.01, args.poll))
            polls += 1
            for event in read_events_jsonl(path):
                if event.seq <= last_seq:
                    continue
                if args.kind is None or event.kind == args.kind:
                    emit(event)
                last_seq = event.seq
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_prove_rules(args: argparse.Namespace, out) -> int:
    import json

    from repro.analysis import prove_rules

    result = prove_rules(mode=args.mode, seed=args.seed)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(result.verdict_table(), file=out)
        print(file=out)
        print(result.report.describe(), file=out)
    return 0 if result.ok else 2


_COMMANDS = {
    "build": _cmd_build,
    "check": _cmd_check,
    "repair": _cmd_repair,
    "salvage": _cmd_salvage,
    "migrate": _cmd_migrate,
    "info": _cmd_info,
    "query": _cmd_query,
    "knn": _cmd_knn,
    "evaluate": _cmd_evaluate,
    "explain": _cmd_explain,
    "serve-stats": _cmd_serve_stats,
    "lint": _cmd_lint,
    "race-check": _cmd_race_check,
    "check-protocols": _cmd_check_protocols,
    "analyze-db": _cmd_analyze_db,
    "prove-rules": _cmd_prove_rules,
    "shards": _cmd_shards,
    "top": _cmd_top,
    "events": _cmd_events,
}


def _configure_logging(verbosity: int) -> None:
    """Attach a stderr handler to the package logger for ``-v``.

    The library itself only ever adds a ``NullHandler`` (standard
    library etiquette); the CLI is the application, so it decides where
    log output goes.  Idempotent: re-entry (tests call ``main`` many
    times) only adjusts the level.
    """
    if not verbosity:
        return
    logger = logging.getLogger("repro")
    logger.setLevel(logging.DEBUG if verbosity > 1 else logging.INFO)
    if not any(
        isinstance(h, logging.StreamHandler)
        and not isinstance(h, logging.NullHandler)
        for h in logger.handlers
    ):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g.
        # ``| head``): the Unix convention is to exit quietly.  Redirect
        # stdout to devnull so the interpreter's shutdown flush does not
        # trip over the closed pipe.
        import os

        try:
            sys.stdout = open(os.devnull, "w")  # noqa: SIM115 - lives to exit
        except OSError:
            pass
        return 0
