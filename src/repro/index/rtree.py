"""A Guttman R-tree over histogram space (the conventional access path).

§3.1: "to reduce the query processing time, the histograms can be
organized in multidimensional indexes such as the R-tree [13] and its
numerous variants."  §4 models BWM on the same pruning idea: "quickly
identifying sections of the multidimensional space that cannot contain
any histograms of images that satisfy the given query."

This is a from-scratch dynamic R-tree with Guttman's quadratic split:

* entries are ``(MBR, payload)`` pairs; point data uses degenerate boxes;
* ``search(box)`` returns payloads whose MBRs intersect the query box —
  a single-bin range query is an :meth:`repro.index.mbr.MBR.slab`;
* ``nearest(point, k)`` is best-first kNN with the MINDIST bound.

Deletion uses the classic condense-and-reinsert strategy.  The linear
scan in :mod:`repro.index.linear` shares the interface for the A4 bench.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import IndexError_
from repro.index.mbr import MBR


class _Node:
    """An internal or leaf R-tree node."""

    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        #: Leaf entries are ``(MBR, payload)``; internal are ``(MBR, _Node)``.
        self.entries: List[Tuple[MBR, object]] = []
        self.parent: Optional["_Node"] = None

    def mbr(self) -> Optional[MBR]:
        return MBR.union_all(box for box, _ in self.entries)


class RTree:
    """Dynamic R-tree with quadratic split.

    Parameters
    ----------
    max_entries:
        Node capacity ``M`` (>= 4); nodes split when they exceed it.
    min_entries:
        Underflow threshold ``m``; defaults to ``max_entries // 2``.
    """

    def __init__(self, max_entries: int = 8, min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        self._max = max_entries
        self._min = min_entries if min_entries is not None else max_entries // 2
        if not 1 <= self._min <= self._max // 2:
            raise IndexError_(
                f"min_entries must be in [1, {self._max // 2}], got {self._min}"
            )
        self._root = _Node(leaf=True)
        self._size = 0
        self._dimensions: Optional[int] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (1 for a lone leaf root)."""
        node, levels = self._root, 1
        while not node.leaf:
            node = node.entries[0][1]  # type: ignore[assignment]
            levels += 1
        return levels

    def insert(self, box: MBR, payload: object) -> None:
        """Insert one ``(box, payload)`` entry."""
        if self._dimensions is None:
            self._dimensions = box.dimensions
        elif box.dimensions != self._dimensions:
            raise IndexError_(
                f"dimension mismatch: tree is {self._dimensions}-d, box is "
                f"{box.dimensions}-d"
            )
        leaf = self._choose_leaf(self._root, box)
        leaf.entries.append((box, payload))
        self._size += 1
        self._handle_overflow(leaf)

    def insert_point(self, coords: Sequence[float], payload: object) -> None:
        """Insert a point datum (degenerate box)."""
        self.insert(MBR.point(coords), payload)

    @classmethod
    def bulk_load(
        cls,
        points,
        payloads: Sequence[object],
        max_entries: int = 8,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive (STR) bulk loading.

        STR sorts the points by the first coordinate, tiles them into
        vertical slabs of ``~sqrt(n/M)`` leaves each, sorts each slab by
        the second coordinate, and packs runs of ``M`` entries per leaf;
        upper levels pack the same way over child MBR centers.  The
        result answers queries identically to one-at-a-time insertion
        but with near-100% node utilization (fewer nodes, tighter boxes).
        """
        import numpy as np

        matrix = np.asarray(points, dtype=np.float64)
        if matrix.ndim != 2:
            raise IndexError_(f"expected (n, d) points, got shape {matrix.shape}")
        if matrix.shape[0] != len(payloads):
            raise IndexError_(
                f"{matrix.shape[0]} points but {len(payloads)} payloads"
            )
        tree = cls(max_entries=max_entries)
        if matrix.shape[0] == 0:
            return tree
        tree._dimensions = int(matrix.shape[1])

        entries: List[Tuple[MBR, object]] = [
            (MBR.point(matrix[i]), payloads[i]) for i in range(matrix.shape[0])
        ]
        nodes = tree._pack_level(entries, leaf=True)
        while len(nodes) > 1:
            level_entries = [(node.mbr(), node) for node in nodes]
            nodes = tree._pack_level(level_entries, leaf=False)
        tree._root = nodes[0]
        tree._size = matrix.shape[0]
        return tree

    def _pack_level(
        self, entries: List[Tuple[MBR, object]], leaf: bool
    ) -> List["_Node"]:
        """Pack one STR level into nodes of up to ``max_entries``."""
        import math

        capacity = self._max
        leaf_count = math.ceil(len(entries) / capacity)
        slab_count = max(1, math.ceil(math.sqrt(leaf_count)))
        per_slab = math.ceil(len(entries) / slab_count) if entries else 0

        def center(box: MBR, axis: int) -> float:
            return float(box.lo[axis] + box.hi[axis]) / 2.0

        ordered = sorted(entries, key=lambda entry: center(entry[0], 0))
        nodes: List[_Node] = []
        for slab_start in range(0, len(ordered), max(1, per_slab)):
            slab = sorted(
                ordered[slab_start:slab_start + per_slab],
                key=lambda entry: center(entry[0], 1 % entry[0].dimensions),
            )
            for start in range(0, len(slab), capacity):
                node = _Node(leaf=leaf)
                node.entries = list(slab[start:start + capacity])
                if not leaf:
                    for _, child in node.entries:
                        child.parent = node  # type: ignore[union-attr]
                nodes.append(node)
        return nodes

    def delete(self, box: MBR, payload: object) -> bool:
        """Remove the entry matching ``payload`` (and box); True if found."""
        found = self._find_leaf(self._root, box, payload)
        if found is None:
            return False
        leaf, position = found
        del leaf.entries[position]
        self._size -= 1
        self._condense(leaf)
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]  # type: ignore[assignment]
            self._root.parent = None
        return True

    def search(self, box: MBR) -> List[object]:
        """Payloads of all entries whose MBR intersects ``box``."""
        results: List[object] = []
        if self._size:
            self._search_node(self._root, box, results)
        return results

    def nearest(self, coords: Sequence[float], k: int = 1) -> List[Tuple[float, object]]:
        """The ``k`` nearest point/box payloads by Euclidean MINDIST.

        Returns ``(distance, payload)`` pairs in ascending distance,
        using best-first traversal so only promising subtrees are opened.
        """
        if k <= 0:
            raise IndexError_("k must be positive")
        if not self._size:
            return []
        counter = itertools.count()
        heap: List[Tuple[float, int, bool, object]] = [
            (0.0, next(counter), False, self._root)
        ]
        results: List[Tuple[float, object]] = []
        while heap and len(results) < k:
            distance, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                results.append((distance, item))
                continue
            node: _Node = item  # type: ignore[assignment]
            for box, child in node.entries:
                child_distance = box.min_distance_to_point(coords)
                heapq.heappush(
                    heap, (child_distance, next(counter), node.leaf, child)
                )
        return results

    def items(self) -> Iterator[Tuple[MBR, object]]:
        """Iterate every stored ``(box, payload)`` entry."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(child for _, child in node.entries)  # type: ignore[misc]

    def check_invariants(self) -> None:
        """Validate structure (tests): MBM containment, fanout, balance."""
        depths = set()
        self._check_node(self._root, 0, depths, is_root=True)
        if len(depths) > 1:
            raise IndexError_(f"leaves at multiple depths: {sorted(depths)}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _choose_leaf(self, node: _Node, box: MBR) -> _Node:
        while not node.leaf:
            best = min(
                node.entries,
                key=lambda entry: (
                    entry[0].enlargement(box),
                    entry[0].margin_volume(),
                ),
            )
            node = best[1]  # type: ignore[assignment]
        return node

    def _handle_overflow(self, node: _Node) -> None:
        while len(node.entries) > self._max:
            sibling = self._split(node)
            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                new_root.entries = [
                    (node.mbr(), node),  # type: ignore[list-item]
                    (sibling.mbr(), sibling),  # type: ignore[list-item]
                ]
                node.parent = new_root
                sibling.parent = new_root
                self._root = new_root
                return
            self._replace_child_box(parent, node)
            parent.entries.append((sibling.mbr(), sibling))  # type: ignore[arg-type]
            sibling.parent = parent
            node = parent
        self._refresh_ancestor_boxes(node)

    def _split(self, node: _Node) -> _Node:
        """Guttman's quadratic split; ``node`` keeps one group, returns the other."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = entries[seed_a][0]
        box_b = entries[seed_b][0]
        remaining = [
            entry for index, entry in enumerate(entries) if index not in (seed_a, seed_b)
        ]

        while remaining:
            # Force assignment when one group must take everything left.
            if len(group_a) + len(remaining) == self._min:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min:
                group_b.extend(remaining)
                remaining = []
                break
            # Pick the entry with the greatest preference difference.
            best_index, best_diff, prefer_a = 0, -1.0, True
            for index, (box, _) in enumerate(remaining):
                d_a = box_a.enlargement(box)
                d_b = box_b.enlargement(box)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_index, best_diff, prefer_a = index, diff, d_a < d_b
            box, payload = remaining.pop(best_index)
            if prefer_a:
                group_a.append((box, payload))
                box_a = box_a.union(box)
            else:
                group_b.append((box, payload))
                box_b = box_b.union(box)

        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        if not node.leaf:
            for _, child in group_b:
                child.parent = sibling  # type: ignore[union-attr]
        return sibling

    @staticmethod
    def _pick_seeds(entries: List[Tuple[MBR, object]]) -> Tuple[int, int]:
        """The pair wasting the most volume if grouped together."""
        worst_pair = (0, 1)
        worst_waste = -float("inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i][0].union(entries[j][0])
                waste = (
                    combined.margin_volume()
                    - entries[i][0].margin_volume()
                    - entries[j][0].margin_volume()
                )
                if waste > worst_waste:
                    worst_pair, worst_waste = (i, j), waste
        return worst_pair

    def _replace_child_box(self, parent: _Node, child: _Node) -> None:
        for index, (_, node) in enumerate(parent.entries):
            if node is child:
                parent.entries[index] = (child.mbr(), child)  # type: ignore[assignment]
                return
        raise IndexError_("corrupt tree: child missing from parent")

    def _refresh_ancestor_boxes(self, node: _Node) -> None:
        while node.parent is not None:
            self._replace_child_box(node.parent, node)
            node = node.parent

    def _search_node(self, node: _Node, box: MBR, results: List[object]) -> None:
        for entry_box, item in node.entries:
            if entry_box.intersects(box):
                if node.leaf:
                    results.append(item)
                else:
                    self._search_node(item, box, results)  # type: ignore[arg-type]

    def _find_leaf(
        self, node: _Node, box: MBR, payload: object
    ) -> Optional[Tuple[_Node, int]]:
        if node.leaf:
            for index, (entry_box, item) in enumerate(node.entries):
                if item == payload and entry_box == box:
                    return (node, index)
            return None
        for entry_box, child in node.entries:
            if entry_box.intersects(box):
                found = self._find_leaf(child, box, payload)  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: List[Tuple[MBR, object]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self._min:
                for index, (_, child) in enumerate(parent.entries):
                    if child is node:
                        del parent.entries[index]
                        break
                if node.leaf:
                    orphans.extend(node.entries)
                else:
                    for _, child in node.entries:
                        stack = [child]
                        while stack:
                            current = stack.pop()
                            if current.leaf:  # type: ignore[union-attr]
                                orphans.extend(current.entries)  # type: ignore[union-attr]
                            else:
                                stack.extend(
                                    grandchild
                                    for _, grandchild in current.entries  # type: ignore[union-attr]
                                )
            else:
                self._replace_child_box(parent, node)
            node = parent
        for box, payload in orphans:
            self._size -= 1
            self.insert(box, payload)

    def _check_node(
        self, node: _Node, depth: int, depths: set, is_root: bool
    ) -> None:
        if not is_root and not self._min <= len(node.entries) <= self._max:
            raise IndexError_(
                f"node fanout {len(node.entries)} outside [{self._min}, {self._max}]"
            )
        if len(node.entries) > self._max:
            raise IndexError_(f"node overflow: {len(node.entries)}")
        if node.leaf:
            depths.add(depth)
            return
        for box, child in node.entries:
            child_box = child.mbr()  # type: ignore[union-attr]
            if child_box is None or not (
                (box.lo <= child_box.lo).all() and (child_box.hi <= box.hi).all()
            ):
                raise IndexError_("parent MBR does not contain child MBR")
            if child.parent is not node:  # type: ignore[union-attr]
                raise IndexError_("broken parent pointer")
            self._check_node(child, depth + 1, depths, is_root=False)  # type: ignore[arg-type]
