"""VA-file: vector-approximation index for high-dimensional histograms.

The paper points at multidimensional access methods through the Gaede &
Günther survey [10].  R-trees degrade as dimensionality grows (histogram
spaces are 64-d and up); the vector-approximation file is the classic
answer: store a compact quantized *approximation* of every vector,
sequentially scan the approximations (cheap — a few bits per dimension),
and touch the exact vectors only for candidates the approximation cannot
rule out.

This implementation follows the original design:

* per dimension, ``bits`` bits split ``[lo, hi]`` into ``2^bits`` equal
  cells; an approximation is the tuple of cell indices;
* range search: compare the query box against each approximation's cell
  box; cells entirely outside exclude the vector, cells entirely inside
  accept it, straddling cells fall back to the exact vector;
* kNN: a first pass computes per-approximation lower/upper distance
  bounds; vectors whose lower bound exceeds the running k-th upper bound
  are pruned, the rest are refined in ascending lower-bound order.

Interface-compatible with :class:`repro.index.rtree.RTree` for point
data, so the A4 bench can compare all three access methods.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.mbr import MBR


class VAFile:
    """Vector-approximation file over points in ``[lo, hi]^d``.

    Parameters
    ----------
    bits:
        Bits per dimension (2-8); ``2^bits`` cells per dimension.
    lo, hi:
        The data domain per dimension (histogram fractions live in
        ``[0, 1]``, the default).
    """

    def __init__(self, bits: int = 4, lo: float = 0.0, hi: float = 1.0) -> None:
        if not 1 <= bits <= 8:
            raise IndexError_(f"bits must be in [1, 8], got {bits}")
        if hi <= lo:
            raise IndexError_(f"empty domain [{lo}, {hi}]")
        self._bits = bits
        self._cells = 1 << bits
        self._lo = float(lo)
        self._hi = float(hi)
        self._vectors: List[np.ndarray] = []
        self._approximations: List[np.ndarray] = []
        self._payloads: List[object] = []
        self._dimensions: Optional[int] = None
        #: Exact vectors touched by the most recent query (the VA-file's
        #: figure of merit: approximations answer most of the question).
        self.last_refinements = 0
        self._approx_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def bits_per_dimension(self) -> int:
        """Approximation precision."""
        return self._bits

    def _cell_of(self, values: np.ndarray) -> np.ndarray:
        scaled = (values - self._lo) / (self._hi - self._lo) * self._cells
        return np.clip(scaled.astype(np.int64), 0, self._cells - 1)

    def _cell_bounds(self, cells: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        width = (self._hi - self._lo) / self._cells
        lows = self._lo + cells * width
        return lows, lows + width

    # ------------------------------------------------------------------
    def insert_point(self, coords: Sequence[float], payload: object) -> None:
        """Insert one vector with its payload."""
        vector = np.asarray(coords, dtype=np.float64)
        if vector.ndim != 1:
            raise IndexError_(f"expected a flat vector, got shape {vector.shape}")
        if (vector < self._lo - 1e-12).any() or (vector > self._hi + 1e-12).any():
            raise IndexError_(
                f"vector outside the domain [{self._lo}, {self._hi}]"
            )
        if self._dimensions is None:
            self._dimensions = int(vector.shape[0])
        elif vector.shape[0] != self._dimensions:
            raise IndexError_(
                f"dimension mismatch: file is {self._dimensions}-d, "
                f"vector is {vector.shape[0]}-d"
            )
        self._vectors.append(vector)
        self._approximations.append(self._cell_of(vector))
        self._payloads.append(payload)
        self._approx_matrix = None

    def insert(self, box: MBR, payload: object) -> None:
        """Insert a degenerate (point) box — interface parity with RTree."""
        if not np.array_equal(box.lo, box.hi):
            raise IndexError_("VA-files index points, not extended boxes")
        self.insert_point(box.lo, payload)

    def delete(self, box: MBR, payload: object) -> bool:
        """Remove the first matching (point, payload) entry."""
        for index, (vector, existing) in enumerate(
            zip(self._vectors, self._payloads)
        ):
            if existing == payload and np.array_equal(vector, box.lo):
                del self._vectors[index]
                del self._approximations[index]
                del self._payloads[index]
                self._approx_matrix = None
                return True
        return False

    def _approximation_matrix(self) -> np.ndarray:
        if self._approx_matrix is None:
            self._approx_matrix = np.stack(self._approximations)
        return self._approx_matrix

    # ------------------------------------------------------------------
    def search(self, box: MBR) -> List[object]:
        """Payloads of all points inside ``box`` (closed).

        The approximation scan is one vectorized pass over the packed
        cell matrix — the sequential-scan-of-tiny-records design that
        makes VA-files competitive; only straddling candidates touch
        their exact vectors.
        """
        if not self._payloads:
            return []
        self.last_refinements = 0
        query_lo = np.maximum(np.asarray(box.lo, dtype=np.float64), self._lo)
        query_hi = np.minimum(np.asarray(box.hi, dtype=np.float64), self._hi)

        cells = self._approximation_matrix()
        width = (self._hi - self._lo) / self._cells
        cell_lo = self._lo + cells * width
        cell_hi = cell_lo + width

        excluded = ((cell_lo > query_hi) | (cell_hi < query_lo)).any(axis=1)
        inside = ((cell_lo >= query_lo) & (cell_hi <= query_hi)).all(axis=1)

        results: List[object] = [
            self._payloads[index] for index in np.nonzero(inside & ~excluded)[0]
        ]
        for index in np.nonzero(~excluded & ~inside)[0]:
            self.last_refinements += 1
            vector = self._vectors[index]
            if ((vector >= box.lo) & (vector <= box.hi)).all():
                results.append(self._payloads[int(index)])
        return results

    def nearest(self, coords: Sequence[float], k: int = 1) -> List[Tuple[float, object]]:
        """The ``k`` nearest points by Euclidean distance, ascending.

        Two-phase VA-file search: bound distances from approximations,
        then refine candidates in ascending lower-bound order, stopping
        when the next lower bound exceeds the k-th best exact distance.
        """
        if k <= 0:
            raise IndexError_("k must be positive")
        if not self._payloads:
            return []
        query = np.asarray(coords, dtype=np.float64)
        self.last_refinements = 0

        cells = self._approximation_matrix()
        width = (self._hi - self._lo) / self._cells
        cell_lo = self._lo + cells * width
        cell_hi = cell_lo + width
        gaps = np.maximum(np.maximum(cell_lo - query, query - cell_hi), 0.0)
        lower_bounds = np.sqrt((gaps * gaps).sum(axis=1))
        candidates: List[Tuple[float, int]] = [
            (float(lower), index) for index, lower in enumerate(lower_bounds)
        ]
        heapq.heapify(candidates)

        best: List[Tuple[float, object]] = []
        while candidates:
            lower, index = heapq.heappop(candidates)
            if len(best) >= k and lower > best[k - 1][0]:
                break
            self.last_refinements += 1
            distance = float(np.linalg.norm(self._vectors[index] - query))
            best.append((distance, self._payloads[index]))
            best.sort(key=lambda item: item[0])
        return best[:k]

    def items(self) -> Iterator[Tuple[MBR, object]]:
        """Iterate every stored entry as (point box, payload)."""
        for vector, payload in zip(self._vectors, self._payloads):
            yield (MBR.point(vector), payload)

    def approximation_bytes(self) -> int:
        """Bytes the approximations occupy (the VA-file's selling point)."""
        if self._dimensions is None:
            return 0
        return len(self._payloads) * self._dimensions * self._bits // 8
