"""Minimum bounding (hyper-)rectangles for the R-tree.

The paper (§3.1, §4) motivates its data structure by analogy with
multidimensional access methods over histogram space — Guttman's R-tree
[13] and its variants [3, 10].  Histograms are points in ``n``-dim
fraction space, so the boxes here are axis-aligned hyper-rectangles over
float coordinates of any dimensionality.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import IndexError_


class MBR:
    """An axis-aligned hyper-rectangle ``[lo_i, hi_i]`` per dimension."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        lo_arr = np.asarray(lo, dtype=np.float64)
        hi_arr = np.asarray(hi, dtype=np.float64)
        if lo_arr.shape != hi_arr.shape or lo_arr.ndim != 1:
            raise IndexError_(f"bad MBR shape: {lo_arr.shape} vs {hi_arr.shape}")
        if (lo_arr > hi_arr).any():
            raise IndexError_("MBR lower bound exceeds upper bound")
        self.lo = lo_arr
        self.hi = hi_arr

    # ------------------------------------------------------------------
    @staticmethod
    def point(coords: Sequence[float]) -> "MBR":
        """Degenerate box around a single point."""
        arr = np.asarray(coords, dtype=np.float64)
        return MBR(arr, arr.copy())

    @staticmethod
    def slab(
        dimensions: int, axis: int, lo: float, hi: float,
        domain_lo: float = -np.inf, domain_hi: float = np.inf,
    ) -> "MBR":
        """A box constraining one axis and leaving the rest unbounded.

        This is the shape of a single-bin range query over histogram
        space: ``fraction(bin) in [lo, hi]``, other bins unconstrained.
        """
        if not 0 <= axis < dimensions:
            raise IndexError_(f"axis {axis} outside {dimensions} dimensions")
        lows = np.full(dimensions, domain_lo)
        highs = np.full(dimensions, domain_hi)
        lows[axis] = lo
        highs[axis] = hi
        return MBR(lows, highs)

    @property
    def dimensions(self) -> int:
        """Dimensionality of the box."""
        return int(self.lo.shape[0])

    # ------------------------------------------------------------------
    def intersects(self, other: "MBR") -> bool:
        """True when the boxes share at least one point."""
        return bool((self.lo <= other.hi).all() and (other.lo <= self.hi).all())

    def contains_point(self, coords: Sequence[float]) -> bool:
        """True when the point lies inside the box (boundaries included)."""
        arr = np.asarray(coords, dtype=np.float64)
        return bool((self.lo <= arr).all() and (arr <= self.hi).all())

    def union(self, other: "MBR") -> "MBR":
        """Smallest box covering both operands."""
        return MBR(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def margin_volume(self) -> float:
        """Product of side lengths (the R-tree 'area' heuristic)."""
        return float(np.prod(self.hi - self.lo))

    def enlargement(self, other: "MBR") -> float:
        """Volume growth needed to absorb ``other`` (Guttman's criterion)."""
        return self.union(other).margin_volume() - self.margin_volume()

    def min_distance_to_point(self, coords: Sequence[float]) -> float:
        """Euclidean distance from a point to the box (0 when inside).

        The standard MINDIST bound used by best-first kNN search.
        """
        arr = np.asarray(coords, dtype=np.float64)
        gaps = np.maximum(np.maximum(self.lo - arr, arr - self.hi), 0.0)
        return float(np.sqrt((gaps * gaps).sum()))

    @staticmethod
    def union_all(boxes: Iterable["MBR"]) -> Optional["MBR"]:
        """Union of any number of boxes; ``None`` for an empty iterable."""
        result: Optional[MBR] = None
        for box in boxes:
            result = box if result is None else result.union(box)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(
            np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi)
        )

    def __repr__(self) -> str:
        return f"MBR(dims={self.dimensions})"
