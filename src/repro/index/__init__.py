"""Multidimensional access methods: R-tree, VA-file, linear baseline.

:mod:`repro.index.builders` adds catalog-level builders: bulk-loaded
point indexes over binary histograms and interval indexes over edited
images' vectorized BOUNDS boxes.
"""

from repro.index.builders import (
    build_binary_histogram_index,
    build_edited_bounds_index,
    edited_range_candidates,
)
from repro.index.linear import LinearIndex
from repro.index.mbr import MBR
from repro.index.rtree import RTree
from repro.index.vafile import VAFile

__all__ = [
    "LinearIndex",
    "MBR",
    "RTree",
    "VAFile",
    "build_binary_histogram_index",
    "build_edited_bounds_index",
    "edited_range_candidates",
]
