"""Multidimensional access methods: R-tree, VA-file, linear baseline."""

from repro.index.linear import LinearIndex
from repro.index.mbr import MBR
from repro.index.rtree import RTree
from repro.index.vafile import VAFile

__all__ = ["LinearIndex", "MBR", "RTree", "VAFile"]
