"""Linear-scan index with the R-tree interface (the A4 baseline).

Sharing the interface lets the database swap access methods and lets the
A4 bench compare "index or not" for the conventional binary-image path
exactly as §3.1 frames it.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.mbr import MBR


class LinearIndex:
    """Stores ``(MBR, payload)`` pairs in a list; every query scans all."""

    def __init__(self) -> None:
        self._entries: List[Tuple[MBR, object]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, box: MBR, payload: object) -> None:
        """Append one entry."""
        self._entries.append((box, payload))

    def insert_point(self, coords: Sequence[float], payload: object) -> None:
        """Append a point datum."""
        self.insert(MBR.point(coords), payload)

    def delete(self, box: MBR, payload: object) -> bool:
        """Remove the first entry matching ``(box, payload)``."""
        for index, (entry_box, entry_payload) in enumerate(self._entries):
            if entry_payload == payload and entry_box == box:
                del self._entries[index]
                return True
        return False

    def search(self, box: MBR) -> List[object]:
        """Payloads of all entries intersecting ``box``."""
        return [payload for entry_box, payload in self._entries if entry_box.intersects(box)]

    def nearest(self, coords: Sequence[float], k: int = 1) -> List[Tuple[float, object]]:
        """The ``k`` nearest entries by Euclidean MINDIST, ascending."""
        if k <= 0:
            raise IndexError_("k must be positive")
        point = np.asarray(coords, dtype=np.float64)
        scored = sorted(
            (box.min_distance_to_point(point), index)
            for index, (box, _) in enumerate(self._entries)
        )
        return [
            (distance, self._entries[index][1])
            for distance, index in scored[: min(k, len(scored))]
            if math.isfinite(distance)
        ]

    def items(self) -> Iterator[Tuple[MBR, object]]:
        """Iterate every stored entry."""
        return iter(self._entries)
