"""Index builders over catalog contents, fed by the vectorized kernel.

Two families:

* :func:`build_binary_histogram_index` — the conventional §3.1 access
  method over binary-image histogram points (R-tree via STR bulk load,
  VA-file, or the linear baseline).
* :func:`build_edited_bounds_index` — an *interval* index over edited
  images: each image contributes the box
  ``[fraction_lo, fraction_hi]^bins`` from one vectorized BOUNDS walk
  (:meth:`repro.core.bounds.BoundsEngine.fraction_bounds_all_bins`).
  Searching it with a query slab returns exactly the edited images RBM
  would accept for that range — the pruning test becomes a spatial
  lookup.  VA-files approximate points only, so interval indexes support
  ``"rtree"`` and ``"linear"``.

Rebuild rather than maintain: these builders snapshot the catalog (e.g.
for a read-mostly serving tier or the benchmark harness); incremental
maintenance stays with :class:`repro.db.database.MultimediaDatabase`.
"""

from __future__ import annotations

from typing import List, Union

from repro.core.bounds import BoundsEngine
from repro.core.query import RangeQuery
from repro.db.catalog import Catalog
from repro.errors import IndexError_
from repro.index.linear import LinearIndex
from repro.index.mbr import MBR
from repro.index.rtree import RTree
from repro.index.vafile import VAFile

#: Index kinds usable for binary histogram points.
POINT_INDEX_KINDS = ("rtree", "vafile", "linear")

#: Index kinds usable for edited-image bounds intervals (boxes).
INTERVAL_INDEX_KINDS = ("rtree", "linear")

AnyIndex = Union[RTree, VAFile, LinearIndex]
IntervalIndex = Union[RTree, LinearIndex]


def build_binary_histogram_index(
    catalog: Catalog,
    kind: str = "rtree",
    *,
    max_entries: int = 8,
    bits: int = 4,
) -> AnyIndex:
    """Index every binary image's histogram fractions as a point.

    The R-tree path uses STR bulk loading (one packed build instead of
    n root-to-leaf insertions); VA-file and linear insert point by point,
    which is already linear time for those structures.
    """
    ids = list(catalog.binary_ids())
    if kind == "rtree":
        if not ids:
            return RTree(max_entries=max_entries)
        points = [catalog.histogram_of(image_id).fractions() for image_id in ids]
        return RTree.bulk_load(points, ids, max_entries=max_entries)
    if kind == "vafile":
        index: AnyIndex = VAFile(bits=bits)
    elif kind == "linear":
        index = LinearIndex()
    else:
        raise IndexError_(
            f"unknown point index kind {kind!r}; expected one of {POINT_INDEX_KINDS}"
        )
    for image_id in ids:
        index.insert_point(catalog.histogram_of(image_id).fractions(), image_id)
    return index


def build_edited_bounds_index(
    catalog: Catalog,
    engine: BoundsEngine,
    kind: str = "rtree",
    *,
    max_entries: int = 8,
) -> IntervalIndex:
    """Index every edited image's BOUNDS box from one columnar sweep.

    The box for image ``E`` spans ``[BOUND_min/size, BOUND_max/size]``
    in every bin dimension, so a single-bin query slab intersects it iff
    the §3.2 pruning test accepts ``E`` — see
    :func:`edited_range_candidates`.
    """
    if kind == "rtree":
        index: IntervalIndex = RTree(max_entries=max_entries)
    elif kind == "linear":
        index = LinearIndex()
    else:
        raise IndexError_(
            f"unknown interval index kind {kind!r}; "
            f"expected one of {INTERVAL_INDEX_KINDS}"
        )
    edited_ids = list(catalog.edited_ids())
    for image_id, (lower, upper) in zip(
        edited_ids, engine.fraction_bounds_all_bins_batch(edited_ids)
    ):
        index.insert(MBR(lower, upper), image_id)
    return index


def edited_range_candidates(
    index: IntervalIndex, bin_count: int, query: RangeQuery
) -> List[str]:
    """Edited images a bounds-interval index cannot exclude for ``query``.

    Sorted ids whose boxes intersect the query slab — identical to the
    set of edited images RBM's per-image BOUNDS test would accept
    (property-tested against :class:`repro.core.rbm.RBMProcessor`).
    """
    slab = MBR.slab(
        bin_count,
        query.bin_index,
        query.pct_min,
        query.pct_max,
        domain_lo=0.0,
        domain_hi=1.0,
    )
    return sorted(index.search(slab))  # type: ignore[arg-type]
