"""Generic synthetic image generators.

The flag and helmet dataset builders in ``repro.workloads`` compose these
primitives.  Everything is deterministic given a ``numpy.random.Generator``
so experiments are reproducible from a seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.images.geometry import Rect
from repro.images.raster import ColorTuple, Image, validate_color


def solid(height: int, width: int, color: Sequence[int]) -> Image:
    """A single-color image."""
    return Image.filled(height, width, color)


def horizontal_bands(
    height: int, width: int, colors: Sequence[Sequence[int]]
) -> Image:
    """Stack equal-height horizontal bands of the given colors.

    The last band absorbs any rounding remainder so the image is exactly
    ``height`` rows tall.
    """
    if not colors:
        raise WorkloadError("at least one band color is required")
    image = Image.filled(height, width, colors[0])
    band_height = height // len(colors)
    if band_height == 0:
        raise WorkloadError(f"{len(colors)} bands do not fit in height {height}")
    for index, color in enumerate(colors):
        x1 = index * band_height
        x2 = height if index == len(colors) - 1 else (index + 1) * band_height
        image.pixels[x1:x2, :] = validate_color(color)
    return image


def vertical_bands(height: int, width: int, colors: Sequence[Sequence[int]]) -> Image:
    """Equal-width vertical bands; the last band absorbs the remainder."""
    if not colors:
        raise WorkloadError("at least one band color is required")
    image = Image.filled(height, width, colors[0])
    band_width = width // len(colors)
    if band_width == 0:
        raise WorkloadError(f"{len(colors)} bands do not fit in width {width}")
    for index, color in enumerate(colors):
        y1 = index * band_width
        y2 = width if index == len(colors) - 1 else (index + 1) * band_width
        image.pixels[:, y1:y2] = validate_color(color)
    return image


def checkerboard(
    height: int,
    width: int,
    cell: int,
    color_a: Sequence[int],
    color_b: Sequence[int],
) -> Image:
    """A checkerboard with ``cell x cell`` squares."""
    if cell <= 0:
        raise WorkloadError("cell size must be positive")
    rows = (np.arange(height) // cell)[:, None]
    cols = (np.arange(width) // cell)[None, :]
    mask = ((rows + cols) % 2).astype(bool)
    arr = np.empty((height, width, 3), dtype=np.uint8)
    arr[~mask] = validate_color(color_a)
    arr[mask] = validate_color(color_b)
    return Image(arr, copy=False)


def draw_rect(image: Image, rect: Rect, color: Sequence[int]) -> Image:
    """Fill ``rect`` (clipped) with ``color``, in place."""
    r = rect.clip(image.height, image.width)
    if not r.is_empty:
        image.pixels[r.x1:r.x2, r.y1:r.y2] = validate_color(color)
    return image


def draw_disc(
    image: Image, cx: int, cy: int, radius: int, color: Sequence[int]
) -> Image:
    """Fill a disc of ``radius`` centered at ``(cx, cy)``, in place."""
    if radius < 0:
        raise WorkloadError("radius must be non-negative")
    xs = np.arange(image.height)[:, None] - cx
    ys = np.arange(image.width)[None, :] - cy
    mask = xs * xs + ys * ys <= radius * radius
    image.pixels[mask] = validate_color(color)
    return image


def draw_cross(
    image: Image,
    center_x: int,
    center_y: int,
    thickness: int,
    color: Sequence[int],
) -> Image:
    """Draw a full-bleed Nordic-style cross, in place."""
    if thickness <= 0:
        raise WorkloadError("cross thickness must be positive")
    half = thickness // 2
    draw_rect(
        image,
        Rect(max(0, center_x - half), 0, min(image.height, center_x + half + 1), image.width),
        color,
    )
    draw_rect(
        image,
        Rect(0, max(0, center_y - half), image.height, min(image.width, center_y + half + 1)),
        color,
    )
    return image


def random_palette_image(
    rng: np.random.Generator,
    height: int,
    width: int,
    palette: Sequence[Sequence[int]],
    region_count: int = 6,
) -> Image:
    """A random image of rectangular regions drawn from a palette.

    Produces the flat-color, few-distinct-colors histograms typical of
    flags and logos, which is the regime the paper evaluates.
    """
    if not palette:
        raise WorkloadError("palette must not be empty")
    colors: List[ColorTuple] = [validate_color(c) for c in palette]
    base = colors[int(rng.integers(len(colors)))]
    image = Image.filled(height, width, base)
    for _ in range(region_count):
        x1 = int(rng.integers(0, height))
        y1 = int(rng.integers(0, width))
        x2 = int(rng.integers(x1 + 1, height + 1))
        y2 = int(rng.integers(y1 + 1, width + 1))
        color = colors[int(rng.integers(len(colors)))]
        draw_rect(image, Rect(x1, y1, x2, y2), color)
    return image


def random_noise_image(
    rng: np.random.Generator,
    height: int,
    width: int,
    levels: int = 256,
) -> Image:
    """Uniform random noise, optionally quantized to ``levels`` per channel.

    Used by property tests as the adversarial opposite of flat-color
    images: histograms are spread across many bins.
    """
    if not 2 <= levels <= 256:
        raise WorkloadError("levels must be in [2, 256]")
    raw = rng.integers(0, levels, size=(height, width, 3))
    if levels != 256:
        raw = raw * 255 // (levels - 1)
    return Image(raw.astype(np.uint8), copy=False)


def darken(image: Image, factor: float) -> Image:
    """A darkened copy (lighting-change distortion for experiment A6)."""
    if not 0.0 <= factor <= 1.0:
        raise WorkloadError("darken factor must be in [0, 1]")
    arr = (image.pixels.astype(np.float64) * factor).round().astype(np.uint8)
    return Image(arr, copy=False)


def box_blur(image: Image, rect: Optional[Rect] = None) -> Image:
    """A 3x3 box-blurred copy (matches Combine-with-equal-weights semantics)."""
    from repro.editing.executor import combine_region  # local import to avoid cycle

    target = rect if rect is not None else image.bounds
    weights = tuple([1.0] * 9)
    return combine_region(image, target, weights)
