"""Raster image substrate: geometry, images, netpbm codecs, generators."""

from repro.images.geometry import EMPTY_RECT, AffineMatrix, Rect, transform_rect_bbox
from repro.images.ppm import binary_size_bytes, read_ppm, write_ppm
from repro.images.raster import ColorTuple, Image, validate_color

__all__ = [
    "AffineMatrix",
    "ColorTuple",
    "EMPTY_RECT",
    "Image",
    "Rect",
    "binary_size_bytes",
    "read_ppm",
    "transform_rect_bbox",
    "validate_color",
    "write_ppm",
]
