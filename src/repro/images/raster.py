"""In-memory raster image substrate.

The paper's prototype stored images as ppm files and shelled out to
pbmplus; here an :class:`Image` wraps a ``(height, width, 3)`` uint8 numpy
array and provides exactly the operations the rest of the system needs:
pixel access, region extraction/pasting, equality, and counting pixels of
a given color.  All editing-operation semantics live in
``repro.editing.executor``; this class stays a dumb raster.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ImageError
from repro.images.geometry import Rect

#: An RGB color as an ``(r, g, b)`` tuple of ints in ``[0, 255]``.
ColorTuple = Tuple[int, int, int]


def validate_color(color: Iterable[int]) -> ColorTuple:
    """Normalize and validate an RGB triple.

    Accepts any iterable of three integers in ``[0, 255]`` and returns a
    plain tuple, raising :class:`ImageError` otherwise.
    """
    values = tuple(int(c) for c in color)
    if len(values) != 3:
        raise ImageError(f"colors are RGB triples, got {len(values)} components")
    for component in values:
        if not 0 <= component <= 255:
            raise ImageError(f"color component {component} outside [0, 255]")
    return values  # type: ignore[return-value]


class Image:
    """An RGB raster image backed by a ``(h, w, 3)`` uint8 numpy array.

    Instances own their pixel buffer; the constructor copies unless
    ``copy=False`` is passed by internal callers that just built the
    array.  Mutating methods operate in place and return ``self`` for
    chaining; value-producing methods never mutate.
    """

    __slots__ = ("pixels",)

    def __init__(self, pixels: np.ndarray, copy: bool = True) -> None:
        arr = np.asarray(pixels)
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ImageError(f"expected (h, w, 3) array, got shape {arr.shape}")
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ImageError("images must have at least one pixel")
        if arr.dtype != np.uint8:
            if np.issubdtype(arr.dtype, np.integer) or np.issubdtype(arr.dtype, np.floating):
                if arr.min() < 0 or arr.max() > 255:
                    raise ImageError("pixel values outside [0, 255]")
                arr = arr.astype(np.uint8)
            else:
                raise ImageError(f"unsupported pixel dtype {arr.dtype}")
        elif copy:
            arr = arr.copy()
        self.pixels = arr

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def filled(height: int, width: int, color: Iterable[int] = (0, 0, 0)) -> "Image":
        """A ``height x width`` image filled with one color."""
        if height <= 0 or width <= 0:
            raise ImageError("images must have positive dimensions")
        rgb = validate_color(color)
        arr = np.empty((height, width, 3), dtype=np.uint8)
        arr[:, :] = rgb
        return Image(arr, copy=False)

    @staticmethod
    def from_rows(rows: Iterable[Iterable[Iterable[int]]]) -> "Image":
        """Build an image from nested ``rows x cols x rgb`` lists."""
        return Image(np.asarray(list(rows), dtype=np.int64))

    def copy(self) -> "Image":
        """Deep copy."""
        return Image(self.pixels, copy=True)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of pixel rows."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Number of pixel columns."""
        return int(self.pixels.shape[1])

    @property
    def size(self) -> int:
        """Total pixel count (``imagesize`` in the paper's formulas)."""
        return self.height * self.width

    @property
    def bounds(self) -> Rect:
        """Rectangle covering the whole image."""
        return Rect(0, 0, self.height, self.width)

    # ------------------------------------------------------------------
    # Pixel access
    # ------------------------------------------------------------------
    def get_pixel(self, x: int, y: int) -> ColorTuple:
        """Color at row ``x``, column ``y``."""
        if not (0 <= x < self.height and 0 <= y < self.width):
            raise ImageError(f"pixel ({x}, {y}) outside {self.height}x{self.width}")
        r, g, b = self.pixels[x, y]
        return (int(r), int(g), int(b))

    def set_pixel(self, x: int, y: int, color: Iterable[int]) -> "Image":
        """Set the color at row ``x``, column ``y`` in place."""
        if not (0 <= x < self.height and 0 <= y < self.width):
            raise ImageError(f"pixel ({x}, {y}) outside {self.height}x{self.width}")
        self.pixels[x, y] = validate_color(color)
        return self

    def region(self, rect: Rect) -> np.ndarray:
        """A *view* of the pixels inside ``rect`` (clipped to the image)."""
        r = rect.clip(self.height, self.width)
        return self.pixels[r.x1:r.x2, r.y1:r.y2]

    def crop(self, rect: Rect) -> "Image":
        """A new image holding a copy of the pixels inside ``rect``."""
        r = rect.clip(self.height, self.width)
        if r.is_empty:
            raise ImageError("cannot crop to an empty region")
        return Image(self.pixels[r.x1:r.x2, r.y1:r.y2], copy=True)

    def paste(self, other: "Image", x: int, y: int) -> "Image":
        """Paste ``other`` with its top-left corner at ``(x, y)``, in place.

        The pasted area is clipped to this image's bounds; negative
        offsets clip the source correspondingly.
        """
        src_x1 = max(0, -x)
        src_y1 = max(0, -y)
        dst_x1 = max(0, x)
        dst_y1 = max(0, y)
        copy_h = min(other.height - src_x1, self.height - dst_x1)
        copy_w = min(other.width - src_y1, self.width - dst_y1)
        if copy_h <= 0 or copy_w <= 0:
            return self
        self.pixels[dst_x1:dst_x1 + copy_h, dst_y1:dst_y1 + copy_w] = (
            other.pixels[src_x1:src_x1 + copy_h, src_y1:src_y1 + copy_w]
        )
        return self

    # ------------------------------------------------------------------
    # Color accounting
    # ------------------------------------------------------------------
    def count_color(self, color: Iterable[int], rect: Optional[Rect] = None) -> int:
        """Number of pixels exactly matching ``color`` (optionally in ``rect``)."""
        rgb = np.array(validate_color(color), dtype=np.uint8)
        area = self.pixels if rect is None else self.region(rect)
        return int(np.count_nonzero((area == rgb).all(axis=2)))

    def distinct_colors(self) -> Iterator[ColorTuple]:
        """Iterate the distinct colors present, in an arbitrary stable order."""
        flat = self.pixels.reshape(-1, 3)
        unique = np.unique(flat, axis=0)
        for row in unique:
            yield (int(row[0]), int(row[1]), int(row[2]))

    def mean_color(self) -> Tuple[float, float, float]:
        """Mean RGB value over all pixels."""
        means = self.pixels.reshape(-1, 3).mean(axis=0)
        return (float(means[0]), float(means[1]), float(means[2]))

    # ------------------------------------------------------------------
    # Equality / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return (
            self.pixels.shape == other.pixels.shape
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def __hash__(self) -> int:  # pragma: no cover - images are mutable
        raise TypeError("Image objects are mutable and unhashable")

    def __repr__(self) -> str:
        return f"Image({self.height}x{self.width})"
