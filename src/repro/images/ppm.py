"""PPM / PGM codecs — the pbmplus substitution.

The paper's prototype used the pbmplus [18] utilities to convert between
the text-based ppm format and gif/jpeg.  This module reads and writes the
same netpbm formats natively:

* ``P3`` — plain (ASCII) PPM, what the prototype manipulated directly;
* ``P6`` — raw (binary) PPM, the compact variant;
* ``P2``/``P5`` — plain/raw PGM grayscale, decoded by replicating the
  gray channel to RGB;
* ``P1``/``P4`` — plain/raw PBM bitmaps (1 = black per the spec),
  decoded to black/white RGB.

Only ``maxval == 255`` is produced; any ``maxval <= 255`` is accepted on
read (values are scaled).  Comments (``#`` to end of line) are honored
anywhere in the header, per the netpbm specification.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, List, Union

import numpy as np

from repro.errors import CodecError
from repro.images.raster import Image

_PLAIN_FORMATS = {b"P1", b"P2", b"P3"}
_RAW_FORMATS = {b"P4", b"P5", b"P6"}
_GRAY_FORMATS = {b"P2", b"P5"}
_BITMAP_FORMATS = {b"P1", b"P4"}


def _tokenize_header(stream: BinaryIO, count: int) -> List[int]:
    """Read ``count`` whitespace-separated integer tokens, skipping comments."""
    tokens: List[int] = []
    current = b""
    while len(tokens) < count:
        char = stream.read(1)
        if not char:
            raise CodecError("unexpected end of file in netpbm header")
        if char == b"#":
            while char and char not in (b"\n", b"\r"):
                char = stream.read(1)
            continue
        if char.isspace():
            if current:
                tokens.append(_parse_int(current))
                current = b""
            continue
        current += char
    return tokens


def _parse_int(token: bytes) -> int:
    try:
        return int(token)
    except ValueError as exc:
        raise CodecError(f"bad integer token {token!r} in netpbm header") from exc


def read_ppm(source: Union[str, Path, bytes, BinaryIO]) -> Image:
    """Decode a PPM/PGM file, path, byte string, or binary stream."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_ppm(handle)
    if isinstance(source, bytes):
        return read_ppm(io.BytesIO(source))

    stream: BinaryIO = source
    magic = stream.read(2)
    if magic not in _PLAIN_FORMATS | _RAW_FORMATS:
        raise CodecError(f"unsupported netpbm magic {magic!r}")
    if magic in _BITMAP_FORMATS:
        return _read_bitmap(stream, magic)
    width, height, maxval = _tokenize_header(stream, 3)
    if width <= 0 or height <= 0:
        raise CodecError(f"invalid dimensions {width}x{height}")
    if not 0 < maxval <= 255:
        raise CodecError(f"unsupported maxval {maxval} (must be 1..255)")

    channels = 1 if magic in _GRAY_FORMATS else 3
    sample_count = width * height * channels

    if magic in _RAW_FORMATS:
        payload = stream.read(sample_count)
        if len(payload) != sample_count:
            raise CodecError(
                f"raw payload truncated: expected {sample_count} bytes, got {len(payload)}"
            )
        samples = np.frombuffer(payload, dtype=np.uint8).astype(np.int64)
    else:
        text = stream.read()
        # Plain formats may still contain comments in the raster per spec
        # extensions; strip them line-wise to be liberal in what we accept.
        lines = [line.split(b"#", 1)[0] for line in text.splitlines()]
        tokens = b" ".join(lines).split()
        if len(tokens) < sample_count:
            raise CodecError(
                f"plain payload truncated: expected {sample_count} samples, got {len(tokens)}"
            )
        samples = np.array([_parse_int(t) for t in tokens[:sample_count]], dtype=np.int64)

    if samples.min() < 0 or samples.max() > maxval:
        raise CodecError(f"sample outside [0, {maxval}]")
    if maxval != 255:
        samples = samples * 255 // maxval

    if channels == 1:
        gray = samples.reshape(height, width)
        rgb = np.stack([gray, gray, gray], axis=2)
    else:
        rgb = samples.reshape(height, width, 3)
    return Image(rgb.astype(np.uint8), copy=False)


def _read_bitmap(stream: BinaryIO, magic: bytes) -> Image:
    """Decode a P1/P4 bitmap to black/white RGB (1 = black per spec)."""
    width, height = _tokenize_header(stream, 2)
    if width <= 0 or height <= 0:
        raise CodecError(f"invalid dimensions {width}x{height}")

    if magic == b"P4":
        row_bytes = (width + 7) // 8
        payload = stream.read(row_bytes * height)
        if len(payload) != row_bytes * height:
            raise CodecError(
                f"raw bitmap truncated: expected {row_bytes * height} bytes, "
                f"got {len(payload)}"
            )
        packed = np.frombuffer(payload, dtype=np.uint8).reshape(height, row_bytes)
        bits = np.unpackbits(packed, axis=1)[:, :width]
    else:
        text = stream.read()
        lines = [line.split(b"#", 1)[0] for line in text.splitlines()]
        # Plain PBM allows digits to be run together; extract 0/1 chars.
        digits = [c for c in b"".join(lines).decode("ascii", "ignore") if c in "01"]
        if len(digits) < width * height:
            raise CodecError(
                f"plain bitmap truncated: expected {width * height} bits, "
                f"got {len(digits)}"
            )
        bits = np.array(
            [int(c) for c in digits[: width * height]], dtype=np.uint8
        ).reshape(height, width)

    # PBM: 1 means black, 0 means white.
    gray = np.where(bits == 1, 0, 255).astype(np.uint8)
    rgb = np.stack([gray, gray, gray], axis=2)
    return Image(rgb, copy=False)


def write_ppm(
    image: Image,
    target: Union[str, Path, BinaryIO, None] = None,
    plain: bool = False,
) -> bytes:
    """Encode ``image`` as PPM.

    ``plain=True`` produces the ASCII ``P3`` variant (what the paper's
    prototype consumed); the default is binary ``P6``.  When ``target`` is
    a path or stream the bytes are also written there; the encoded bytes
    are returned either way.
    """
    if plain:
        header = f"P3\n{image.width} {image.height}\n255\n".encode("ascii")
        body_lines = []
        flat = image.pixels.reshape(-1, 3)
        for start in range(0, flat.shape[0], 4):
            chunk = flat[start:start + 4]
            body_lines.append(
                " ".join(f"{int(r)} {int(g)} {int(b)}" for r, g, b in chunk)
            )
        payload = header + ("\n".join(body_lines) + "\n").encode("ascii")
    else:
        header = f"P6\n{image.width} {image.height}\n255\n".encode("ascii")
        payload = header + image.pixels.tobytes()

    if isinstance(target, (str, Path)):
        with open(target, "wb") as handle:
            handle.write(payload)
    elif target is not None:
        target.write(payload)
    return payload


def binary_size_bytes(image: Image, plain: bool = False) -> int:
    """Size in bytes of the image in its conventional binary storage format.

    Used by the storage-savings experiment (A3) to compare the raster
    format against edit-sequence storage without materializing files.
    """
    if plain:
        return len(write_ppm(image, plain=True))
    header = len(f"P6\n{image.width} {image.height}\n255\n")
    return header + image.size * 3
