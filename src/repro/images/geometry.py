"""Rectangle geometry used for Defined Regions and R-tree bounding boxes.

The editing-operation algebra of the paper manipulates a *Defined Region*
(DR): an axis-aligned rectangle of pixels selected by the ``Define``
operation.  The same rectangle arithmetic (intersection, union, area,
clipping, affine transform of corners) is needed by the Table 1 rules and
by the R-tree index, so it lives in one shared module.

Coordinates follow numpy convention: ``x`` is the row index (top to
bottom), ``y`` is the column index (left to right).  A :class:`Rect` is
*inclusive* of ``x1``/``y1`` and *exclusive* of ``x2``/``y2``, matching
Python slicing, so ``Rect(0, 0, h, w)`` covers an entire ``h x w`` image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from repro.errors import GeometryError


@dataclass(frozen=True, order=True)
class Rect:
    """Half-open axis-aligned rectangle ``[x1, x2) x [y1, y2)``.

    Degenerate (empty) rectangles are permitted and normalize to zero
    area; inverted rectangles (``x2 < x1``) are rejected at construction.
    """

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise GeometryError(
                f"inverted rectangle: ({self.x1},{self.y1})-({self.x2},{self.y2})"
            )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of rows covered."""
        return self.x2 - self.x1

    @property
    def width(self) -> int:
        """Number of columns covered."""
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        """Number of pixels covered."""
        return self.height * self.width

    @property
    def is_empty(self) -> bool:
        """True when the rectangle covers no pixels."""
        return self.area == 0

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Rect") -> "Rect":
        """Return the intersection; empty rectangles normalize to (0,0,0,0)."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return EMPTY_RECT
        return Rect(x1, y1, x2, y2)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle containing both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def union_area_upper_bound(self, other: "Rect") -> int:
        """Exact pixel count of the union of the two rectangles.

        Inclusion-exclusion over two boxes is exact, so despite the name
        (kept for symmetry with rule terminology) this is the true area of
        ``self | other``.
        """
        return self.area + other.area - self.intersect(other).area

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside ``self``."""
        if other.is_empty:
            return True
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def contains_point(self, x: int, y: int) -> bool:
        """True when pixel ``(x, y)`` lies inside the rectangle."""
        return self.x1 <= x < self.x2 and self.y1 <= y < self.y2

    def overlaps(self, other: "Rect") -> bool:
        """True when the rectangles share at least one pixel."""
        return not self.intersect(other).is_empty

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def clip(self, height: int, width: int) -> "Rect":
        """Clip to an image of the given dimensions."""
        return self.intersect(Rect(0, 0, height, width))

    def translate(self, dx: int, dy: int) -> "Rect":
        """Return the rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def corners(self) -> Tuple[Tuple[int, int], ...]:
        """The four corner points, inclusive coordinates."""
        return (
            (self.x1, self.y1),
            (self.x1, max(self.y1, self.y2 - 1)),
            (max(self.x1, self.x2 - 1), self.y1),
            (max(self.x1, self.x2 - 1), max(self.y1, self.y2 - 1)),
        )

    def iter_pixels(self) -> Iterator[Tuple[int, int]]:
        """Yield every ``(x, y)`` pixel coordinate in row-major order."""
        for x in range(self.x1, self.x2):
            for y in range(self.y1, self.y2):
                yield (x, y)

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """Return ``(x1, y1, x2, y2)``."""
        return (self.x1, self.y1, self.x2, self.y2)

    @staticmethod
    def from_tuple(values: Iterable[int]) -> "Rect":
        """Build a rectangle from an ``(x1, y1, x2, y2)`` iterable."""
        vals = list(values)
        if len(vals) != 4:
            raise GeometryError(f"expected 4 coordinates, got {len(vals)}")
        return Rect(*(int(v) for v in vals))

    @staticmethod
    def full(height: int, width: int) -> "Rect":
        """The rectangle covering an entire ``height x width`` image."""
        if height < 0 or width < 0:
            raise GeometryError("image dimensions must be non-negative")
        return Rect(0, 0, height, width)


#: Canonical empty rectangle.  All empty intersections normalize to this.
EMPTY_RECT = Rect(0, 0, 0, 0)


def transform_rect_bbox(rect: Rect, matrix: "AffineMatrix") -> Rect:
    """Bounding box of ``rect`` mapped through an affine matrix.

    Used by the Mutate rule to bound the destination region of moved
    pixels without touching the raster.  The box of the transformed
    corners bounds the transformed set because affine maps preserve
    convexity.
    """
    if rect.is_empty:
        return EMPTY_RECT
    xs = []
    ys = []
    for (x, y) in rect.corners():
        tx, ty = matrix.apply_point(x, y)
        xs.append(tx)
        ys.append(ty)
    import math

    x1 = math.floor(min(xs))
    y1 = math.floor(min(ys))
    x2 = math.ceil(max(xs)) + 1
    y2 = math.ceil(max(ys)) + 1
    return Rect(x1, y1, x2, y2)


class AffineMatrix:
    """A 3x3 homogeneous matrix as used by the Mutate operation.

    The paper's Mutate carries nine parameters ``M11..M33``.  Only affine
    maps are meaningful for pixel rearrangement, so the bottom row is
    required to be ``(0, 0, 1)``; points transform as::

        [x']   [m11 m12 m13] [x]
        [y'] = [m21 m22 m23] [y]
        [1 ]   [ 0   0   1 ] [1]
    """

    __slots__ = ("m11", "m12", "m13", "m21", "m22", "m23")

    def __init__(
        self,
        m11: float,
        m12: float,
        m13: float,
        m21: float,
        m22: float,
        m23: float,
        m31: float = 0.0,
        m32: float = 0.0,
        m33: float = 1.0,
    ) -> None:
        if (m31, m32) != (0.0, 0.0) or m33 != 1.0:
            raise GeometryError(
                "Mutate matrices must be affine: bottom row (0, 0, 1)"
            )
        self.m11 = float(m11)
        self.m12 = float(m12)
        self.m13 = float(m13)
        self.m21 = float(m21)
        self.m22 = float(m22)
        self.m23 = float(m23)

    # ------------------------------------------------------------------
    def apply_point(self, x: float, y: float) -> Tuple[float, float]:
        """Map a point through the matrix."""
        return (
            self.m11 * x + self.m12 * y + self.m13,
            self.m21 * x + self.m22 * y + self.m23,
        )

    @property
    def determinant(self) -> float:
        """Determinant of the linear part; area scale factor."""
        return self.m11 * self.m22 - self.m12 * self.m21

    def is_rigid_body(self, tol: float = 1e-9) -> bool:
        """True for rotations/reflections/translations (``|det| == 1``).

        Rigid-body transforms rearrange pixels without changing how many
        there are, which is the condition under which the paper's Mutate
        rule keeps the image size constant.
        """
        return abs(abs(self.determinant) - 1.0) <= tol

    def is_axis_scale(self, tol: float = 1e-9) -> bool:
        """True for pure axis-aligned scales ``diag(sx, sy)``.

        This is the "DR contains image" row of Table 1, where the rule
        multiplies all three counters by ``M11 * M22``.
        """
        return (
            abs(self.m12) <= tol
            and abs(self.m21) <= tol
            and abs(self.m13) <= tol
            and abs(self.m23) <= tol
            and self.m11 > tol
            and self.m22 > tol
        )

    def is_integer_scale(self, tol: float = 1e-9) -> bool:
        """True for axis scales with integral factors (exact pixel counts)."""
        return (
            self.is_axis_scale(tol)
            and abs(self.m11 - round(self.m11)) <= tol
            and abs(self.m22 - round(self.m22)) <= tol
        )

    def invert(self) -> "AffineMatrix":
        """Return the inverse affine matrix.

        Raises :class:`GeometryError` for singular matrices.
        """
        det = self.determinant
        if abs(det) < 1e-12:
            raise GeometryError("singular Mutate matrix cannot be inverted")
        inv11 = self.m22 / det
        inv12 = -self.m12 / det
        inv21 = -self.m21 / det
        inv22 = self.m11 / det
        inv13 = -(inv11 * self.m13 + inv12 * self.m23)
        inv23 = -(inv21 * self.m13 + inv22 * self.m23)
        return AffineMatrix(inv11, inv12, inv13, inv21, inv22, inv23)

    # ------------------------------------------------------------------
    # Constructors for common transforms
    # ------------------------------------------------------------------
    @staticmethod
    def identity() -> "AffineMatrix":
        """The identity transform."""
        return AffineMatrix(1, 0, 0, 0, 1, 0)

    @staticmethod
    def translation(dx: float, dy: float) -> "AffineMatrix":
        """Translation by ``(dx, dy)``."""
        return AffineMatrix(1, 0, dx, 0, 1, dy)

    @staticmethod
    def scale(sx: float, sy: Optional[float] = None) -> "AffineMatrix":
        """Axis-aligned scale; uniform when ``sy`` is omitted."""
        if sy is None:
            sy = sx
        if sx <= 0 or sy <= 0:
            raise GeometryError("scale factors must be positive")
        return AffineMatrix(sx, 0, 0, 0, sy, 0)

    @staticmethod
    def rotation(radians: float, cx: float = 0.0, cy: float = 0.0) -> "AffineMatrix":
        """Rotation by an arbitrary angle about ``(cx, cy)``.

        Arbitrary-angle rotations are rigid (``|det| = 1``) so they
        classify as bound-widening, but unlike quarter turns they do not
        map the pixel grid to itself: the executor's nearest-neighbor
        resampling leaves small holes, which the union-widening Mutate
        rule soundly covers.  Prefer :meth:`rotation_90` when exactness
        matters.
        """
        import math

        c = math.cos(radians)
        s = math.sin(radians)
        return AffineMatrix(c, -s, cx - c * cx + s * cy, s, c, cy - s * cx - c * cy)

    @staticmethod
    def rotation_90(quarter_turns: int, cx: float = 0.0, cy: float = 0.0) -> "AffineMatrix":
        """Rotation by ``quarter_turns`` * 90 degrees about ``(cx, cy)``.

        Only quarter turns are offered because they map the pixel grid to
        itself exactly, keeping rule soundness testable without sampling
        slack.
        """
        q = quarter_turns % 4
        cos_sin = {0: (1, 0), 1: (0, 1), 2: (-1, 0), 3: (0, -1)}[q]
        c, s = cos_sin
        # x' = c*(x-cx) - s*(y-cy) + cx ; y' = s*(x-cx) + c*(y-cy) + cy
        return AffineMatrix(c, -s, cx - c * cx + s * cy, s, c, cy - s * cx - c * cy)

    def as_tuple(self) -> Tuple[float, ...]:
        """Return the nine matrix entries in row-major order."""
        return (
            self.m11, self.m12, self.m13,
            self.m21, self.m22, self.m23,
            0.0, 0.0, 1.0,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineMatrix):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return (
            f"AffineMatrix({self.m11:g}, {self.m12:g}, {self.m13:g}, "
            f"{self.m21:g}, {self.m22:g}, {self.m23:g})"
        )
