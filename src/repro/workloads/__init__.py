"""Synthetic datasets and query workloads for the evaluation."""

from repro.workloads.datasets import (
    build_database,
    build_flag_database,
    build_helmet_database,
    recipe_palette_for,
)
from repro.workloads.flag_catalog import (
    FLAG_DEFINITIONS,
    flag_names,
    make_real_flag,
    make_world_flags,
)
from repro.workloads.flags import FLAG_STYLES, make_flag, make_flag_collection
from repro.workloads.helmets import make_helmet, make_helmet_collection
from repro.workloads.queries import describe_workload, make_query_workload
from repro.workloads.table2 import (
    FLAG_PARAMETERS,
    HELMET_PARAMETERS,
    DatasetParameters,
    table2_rows,
)

__all__ = [
    "DatasetParameters",
    "FLAG_DEFINITIONS",
    "FLAG_PARAMETERS",
    "FLAG_STYLES",
    "HELMET_PARAMETERS",
    "build_database",
    "build_flag_database",
    "build_helmet_database",
    "describe_workload",
    "flag_names",
    "make_flag",
    "make_flag_collection",
    "make_helmet",
    "make_helmet_collection",
    "make_query_workload",
    "make_real_flag",
    "make_world_flags",
    "recipe_palette_for",
    "table2_rows",
]
