"""Table 2 — default parameters of the performance evaluation.

The scanned paper's Table 2 lists, per dataset (helmet, flag): total
images, binary images, edited images, average operations per edited
image, and the bound-widening / non-bound-widening split.  The numeric
cells did not survive the scrape, so the defaults below are
**[reconstructed]** from the prose (see DESIGN.md §3): flags-of-the-world
is the larger collection, helmets the smaller, and most — but not all —
edited images are bound-widening-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class DatasetParameters:
    """One column of Table 2 plus generator knobs."""

    name: str
    binary_images: int
    edited_per_binary: int
    bound_widening_fraction: float
    image_height: int
    image_width: int
    average_ops_per_edited: int = 5

    def __post_init__(self) -> None:
        if self.binary_images <= 0:
            raise WorkloadError("datasets need at least one binary image")
        if self.edited_per_binary < 0:
            raise WorkloadError("edited_per_binary must be non-negative")
        if not 0.0 <= self.bound_widening_fraction <= 1.0:
            raise WorkloadError("bound_widening_fraction must be in [0, 1]")

    @property
    def edited_images(self) -> int:
        """Number of edited images in the database."""
        return self.binary_images * self.edited_per_binary

    @property
    def total_images(self) -> int:
        """Total images in the database (Table 2 row 1)."""
        return self.binary_images + self.edited_images

    @property
    def expected_bound_widening(self) -> int:
        """Expected edited images containing only bound-widening rules."""
        return int(round(self.edited_images * self.bound_widening_fraction))

    @property
    def expected_non_widening(self) -> int:
        """Expected edited images with a non-bound-widening operation."""
        return self.edited_images - self.expected_bound_widening

    def scaled(self, factor: float) -> "DatasetParameters":
        """A smaller/larger copy (tests use ~0.1, benches use 1.0)."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return DatasetParameters(
            name=self.name,
            binary_images=max(2, int(round(self.binary_images * factor))),
            edited_per_binary=self.edited_per_binary,
            bound_widening_fraction=self.bound_widening_fraction,
            image_height=self.image_height,
            image_width=self.image_width,
            average_ops_per_edited=self.average_ops_per_edited,
        )


#: Helmet column **[reconstructed]**: 120 binary + 360 edited = 480 images.
HELMET_PARAMETERS = DatasetParameters(
    name="helmet",
    binary_images=120,
    edited_per_binary=3,
    bound_widening_fraction=0.8,
    image_height=48,
    image_width=48,
)

#: Flag column **[reconstructed]**: 250 binary + 750 edited = 1000 images.
FLAG_PARAMETERS = DatasetParameters(
    name="flag",
    binary_images=250,
    edited_per_binary=3,
    bound_widening_fraction=0.8,
    image_height=40,
    image_width=60,
)


def table2_rows(helmet: DatasetParameters, flag: DatasetParameters):
    """The Table 2 rows as ``(description, helmet value, flag value)``."""
    return [
        ("Number of images in database", helmet.total_images, flag.total_images),
        ("Number of binary images in database", helmet.binary_images, flag.binary_images),
        ("Number of edited images in database", helmet.edited_images, flag.edited_images),
        (
            "Average number of operations within an edited image",
            helmet.average_ops_per_edited,
            flag.average_ops_per_edited,
        ),
        (
            "Edited images with only bound-widening rules",
            helmet.expected_bound_widening,
            flag.expected_bound_widening,
        ),
        (
            "Edited images with a non-bound-widening rule",
            helmet.expected_non_widening,
            flag.expected_non_widening,
        ),
    ]
