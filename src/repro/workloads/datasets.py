"""Dataset builders: augmented flag/helmet databases per Table 2.

:func:`build_database` turns a :class:`DatasetParameters` column into a
populated :class:`MultimediaDatabase`.  ``edited_percentage`` reproduces
the Figure 3/4 x-axis — the *percentage of database images stored as
editing operations* — by holding the total image count fixed while
shifting the binary/edited split.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.color.quantization import UniformQuantizer
from repro.db.database import MultimediaDatabase
from repro.editing.operations import Operation
from repro.editing.recipes import (
    build_variant,
    recipe_multi_recolor,
    recipe_recolor,
    recipe_regional_blur,
    recipe_shift,
)
from repro.editing.sequence import EditSequence
from repro.errors import WorkloadError
from repro.images.raster import ColorTuple, Image
from repro.workloads.flags import FLAG_RECIPE_PALETTE, make_flag_collection
from repro.workloads.helmets import HELMET_RECIPE_PALETTE, make_helmet_collection
from repro.workloads.table2 import (
    FLAG_PARAMETERS,
    HELMET_PARAMETERS,
    DatasetParameters,
)

#: Recipes that are safe to append after any head recipe: they never
#: change image dimensions and never require a non-empty DR, so chains
#: stay executable no matter what preceded them.  All bound-widening, so
#: appending them preserves the head's classification.
_SAFE_TAIL_RECIPES = (
    recipe_regional_blur,
    recipe_recolor,
    recipe_multi_recolor,
    recipe_shift,
)


def _extend_to_target_ops(
    rng: np.random.Generator,
    operations: List[Operation],
    target_ops: int,
    height: int,
    width: int,
    palette: Sequence[ColorTuple],
) -> List[Operation]:
    """Append safe recipes until the sequence reaches ``target_ops``."""
    while len(operations) < target_ops:
        tail = _SAFE_TAIL_RECIPES[int(rng.integers(len(_SAFE_TAIL_RECIPES)))]
        operations.extend(tail(rng, height, width, palette))
    return operations


def _make_base_images(
    params: DatasetParameters, rng: np.random.Generator, count: int
) -> List[Image]:
    if params.name == "flag":
        return make_flag_collection(
            rng, count, params.image_height, params.image_width
        )
    if params.name == "helmet":
        return make_helmet_collection(
            rng, count, params.image_height, params.image_width
        )
    raise WorkloadError(f"unknown dataset {params.name!r}; expected flag or helmet")


def recipe_palette_for(params: DatasetParameters) -> Sequence[ColorTuple]:
    """The Modify/recolor palette matching the dataset domain."""
    return FLAG_RECIPE_PALETTE if params.name == "flag" else HELMET_RECIPE_PALETTE


def build_database(
    params: DatasetParameters,
    rng: np.random.Generator,
    edited_percentage: Optional[float] = None,
    quantizer: Optional[UniformQuantizer] = None,
    bound_widening_fraction: Optional[float] = None,
    ops_per_edited: Optional[int] = None,
    index_kind: str = "rtree",
) -> MultimediaDatabase:
    """Build an augmented database for one Table 2 column.

    Parameters
    ----------
    edited_percentage:
        When given (0 < p < 100), the total image count stays at
        ``params.total_images`` and ``p%`` of it is stored as edit
        sequences (the Figure 3/4 sweep).  When omitted, the Table 2
        defaults (``binary_images`` bases x ``edited_per_binary``
        variants) apply.
    bound_widening_fraction, ops_per_edited:
        Ablation overrides (A1/A2) for the Table 2 defaults.
    """
    total = params.total_images
    if edited_percentage is None:
        binary_count = params.binary_images
        edited_count = params.edited_images
    else:
        if not 0.0 < edited_percentage < 100.0:
            raise WorkloadError(
                f"edited_percentage must be in (0, 100), got {edited_percentage}"
            )
        edited_count = int(round(total * edited_percentage / 100.0))
        binary_count = total - edited_count
        if binary_count < 1:
            raise WorkloadError("at least one binary image is required")

    widening = (
        params.bound_widening_fraction
        if bound_widening_fraction is None
        else bound_widening_fraction
    )
    target_ops = (
        params.average_ops_per_edited if ops_per_edited is None else ops_per_edited
    )
    palette = recipe_palette_for(params)

    database = MultimediaDatabase(quantizer=quantizer, index_kind=index_kind)
    base_ids = [
        database.insert_image(image)
        for image in _make_base_images(params, rng, binary_count)
    ]

    # The bound-widening split is decided globally (Table 2 counts the
    # whole database), then edited images are dealt round-robin over the
    # bases so every BWM Main cluster gets a comparable share.
    widening_count = int(round(edited_count * widening))
    widening_flags = np.zeros(edited_count, dtype=bool)
    widening_flags[:widening_count] = True
    rng.shuffle(widening_flags)

    for edited_index in range(edited_count):
        base_id = base_ids[edited_index % binary_count]
        record = database.catalog.binary_record(base_id)
        target_pool = [b for b in base_ids if b != base_id]
        target = None
        if not widening_flags[edited_index] and target_pool:
            target = target_pool[int(rng.integers(len(target_pool)))]
        operations = build_variant(
            rng,
            record.image.height,
            record.image.width,
            palette,
            bound_widening=bool(widening_flags[edited_index]),
            merge_target=target,
        )
        operations = _extend_to_target_ops(
            rng,
            list(operations),
            target_ops,
            record.image.height,
            record.image.width,
            palette,
        )
        database.insert_edited(EditSequence(base_id, tuple(operations)))
    return database


def build_helmet_database(
    rng: np.random.Generator, scale: float = 1.0, **overrides
) -> MultimediaDatabase:
    """The helmet database at Table 2 defaults (scaled for tests)."""
    return build_database(HELMET_PARAMETERS.scaled(scale), rng, **overrides)


def build_flag_database(
    rng: np.random.Generator, scale: float = 1.0, **overrides
) -> MultimediaDatabase:
    """The flag database at Table 2 defaults (scaled for tests)."""
    return build_database(FLAG_PARAMETERS.scaled(scale), rng, **overrides)
