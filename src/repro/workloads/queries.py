"""Range-query workloads for the performance evaluation.

The paper times "range queries in augmented databases" without fixing a
query distribution; we use a mix the prototype plausibly saw:

* **selective queries** anchored at a stored image's dominant bin, with a
  window around that image's true fraction (these hit clusters, the case
  BWM short-circuits);
* **broad "at least" queries** over random populated bins (the paper's
  "at least 25% blue" example shape);
* **miss queries** over random bins with high thresholds (mostly empty
  results — the pruning stress case).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.query import RangeQuery
from repro.db.database import MultimediaDatabase
from repro.errors import WorkloadError


def _populated_bins(database: MultimediaDatabase) -> List[int]:
    bins = set()
    for image_id in database.catalog.binary_ids():
        histogram = database.catalog.histogram_of(image_id)
        bins.update(histogram.dominant_bins(4))
    return sorted(bins)


def make_query_workload(
    database: MultimediaDatabase,
    rng: np.random.Generator,
    count: int,
) -> List[RangeQuery]:
    """A reproducible batch of ``count`` range queries for ``database``."""
    if count <= 0:
        raise WorkloadError("query count must be positive")
    binary_ids = list(database.catalog.binary_ids())
    if not binary_ids:
        raise WorkloadError("query workloads require at least one binary image")
    populated = _populated_bins(database)
    bin_count = database.quantizer.bin_count

    queries: List[RangeQuery] = []
    # Composition: 40% selective (anchored at stored images), 40% broad
    # "at least", 20% miss-heavy.  The anchored and broad queries are the
    # ones real users pose ("at least 25% blue"); the misses stress
    # pruning.
    kinds = (0, 1, 0, 1, 2)
    for index in range(count):
        kind = kinds[index % len(kinds)]
        if kind == 0:
            # Anchored: "at least X%" of a stored image's dominant bin,
            # with X just under that image's true fraction — the paper's
            # "retrieve all images that are at least 25% blue" shape,
            # guaranteed to retrieve at least its anchor.
            image_id = binary_ids[int(rng.integers(len(binary_ids)))]
            histogram = database.catalog.histogram_of(image_id)
            bin_index = histogram.dominant_bins(1)[0]
            fraction = histogram.fraction(bin_index)
            delta = float(rng.uniform(0.02, 0.15))
            queries.append(RangeQuery.at_least(bin_index, max(0.0, fraction - delta)))
        elif kind == 1:
            # Broad: "at least X%" of a populated bin.
            bin_index = populated[int(rng.integers(len(populated)))]
            queries.append(RangeQuery.at_least(bin_index, float(rng.uniform(0.1, 0.5))))
        else:
            # Miss-heavy: high threshold on an arbitrary bin.
            bin_index = int(rng.integers(bin_count))
            queries.append(RangeQuery.at_least(bin_index, float(rng.uniform(0.6, 0.95))))
    return queries


def describe_workload(queries: Sequence[RangeQuery]) -> str:
    """One-line summary used by bench reports."""
    if not queries:
        return "empty workload"
    widths = [q.pct_max - q.pct_min for q in queries]
    return (
        f"{len(queries)} range queries over {len({q.bin_index for q in queries})} "
        f"bins, mean range width {float(np.mean(widths)):.3f}"
    )
