"""Procedural college-football-helmet images (substitute for [14]).

A helmet reads, in histogram space, as: a large flat shell region in a
team color, a background, a facemask in a second color, an optional
center stripe, and an optional logo disc.  The generator draws exactly
those regions, so color-range queries behave like they would over the
scraped photographs the paper used (DESIGN.md substitution table).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.color.names import HELMET_PALETTE, NAMED_COLORS
from repro.errors import WorkloadError
from repro.images.generators import draw_disc, draw_rect
from repro.images.geometry import Rect
from repro.images.raster import ColorTuple, Image

#: Background colors (photo backdrops: white or light gray).
_BACKGROUNDS = (NAMED_COLORS["white"], NAMED_COLORS["silver"])


def _pick(rng: np.random.Generator, pool) -> ColorTuple:
    return pool[int(rng.integers(len(pool)))]


def make_helmet(
    rng: np.random.Generator,
    height: int = 48,
    width: int = 48,
) -> Image:
    """One random helmet image."""
    if height < 16 or width < 16:
        raise WorkloadError(f"helmets need at least 16x16 pixels, got {height}x{width}")
    background = _pick(rng, _BACKGROUNDS)
    shell = _pick(rng, HELMET_PALETTE)
    mask_pool = [c for c in HELMET_PALETTE if c != shell]
    facemask = _pick(rng, mask_pool)

    image = Image.filled(height, width, background)
    # Shell: a dome (disc clipped by the canvas) centered upper-middle.
    center_x = height // 2
    center_y = width // 2
    radius = min(height, width) * 2 // 5
    draw_disc(image, center_x, center_y, radius, shell)
    # Flatten the bottom of the dome back to background (helmet edge).
    draw_rect(image, Rect(center_x + radius // 2, 0, height, width), background)
    # Facemask: a small grid of bars at the lower front.
    mask_top = center_x + radius // 4
    mask_rect = Rect(mask_top, center_y + radius // 2, mask_top + radius // 2, width - 1)
    draw_rect(image, mask_rect, facemask)

    if rng.random() < 0.5:
        stripe = _pick(rng, mask_pool)
        draw_rect(
            image,
            Rect(center_x - radius, center_y - 2, center_x + radius // 2, center_y + 2),
            stripe,
        )
    if rng.random() < 0.5:
        logo = _pick(rng, mask_pool)
        draw_disc(image, center_x, center_y - radius // 2, radius // 4, logo)
    return image


def make_helmet_collection(
    rng: np.random.Generator,
    count: int,
    height: int = 48,
    width: int = 48,
) -> List[Image]:
    """``count`` random helmets."""
    if count < 0:
        raise WorkloadError("helmet count must be non-negative")
    return [make_helmet(rng, height, width) for _ in range(count)]


#: Palette passed to augmentation recipes for helmet databases.
HELMET_RECIPE_PALETTE = HELMET_PALETTE + _BACKGROUNDS
