"""Procedural world-flag images (substitute for the scraped flag set [9]).

"These data sets were selected because color-based features are extremely
important in recognizing both flags and logos" (§5).  The generator
produces the canonical flag layouts — horizontal and vertical tricolors,
bicolors, Nordic crosses, canton designs, and disc-on-field flags — over
a palette of real flag colors, giving the same flat-color histogram
character as the scraped originals (DESIGN.md substitution table).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.color.names import FLAG_PALETTE, NAMED_COLORS
from repro.errors import WorkloadError
from repro.images.generators import (
    draw_cross,
    draw_disc,
    draw_rect,
    horizontal_bands,
    vertical_bands,
)
from repro.images.geometry import Rect
from repro.images.raster import ColorTuple, Image

#: Flag layout styles the generator cycles through.
FLAG_STYLES = (
    "horizontal_bicolor",
    "horizontal_tricolor",
    "vertical_tricolor",
    "nordic_cross",
    "canton",
    "disc",
)


#: Relative frequency of each FLAG_PALETTE color in real world flags
#: (red and white appear in roughly three quarters of national flags,
#: blue in about half; vexillology surveys of the collection in [9]).
#: Order matches FLAG_PALETTE: red, white, blue, green, yellow, black,
#: orange, lightblue.
_COLOR_WEIGHTS = np.array([0.30, 0.28, 0.16, 0.08, 0.08, 0.04, 0.03, 0.03])


def _distinct_colors(rng: np.random.Generator, count: int) -> List[ColorTuple]:
    if count > len(FLAG_PALETTE):
        raise WorkloadError(f"cannot draw {count} distinct flag colors")
    picks = rng.choice(
        len(FLAG_PALETTE), size=count, replace=False, p=_COLOR_WEIGHTS
    )
    return [FLAG_PALETTE[int(i)] for i in picks]


def make_flag(
    rng: np.random.Generator,
    height: int = 40,
    width: int = 60,
    style: str = "",
) -> Image:
    """One random flag image; ``style`` picks a layout (random if empty)."""
    if height < 12 or width < 18:
        raise WorkloadError(f"flags need at least 12x18 pixels, got {height}x{width}")
    chosen = style or FLAG_STYLES[int(rng.integers(len(FLAG_STYLES)))]
    if chosen == "horizontal_bicolor":
        return horizontal_bands(height, width, _distinct_colors(rng, 2))
    if chosen == "horizontal_tricolor":
        return horizontal_bands(height, width, _distinct_colors(rng, 3))
    if chosen == "vertical_tricolor":
        return vertical_bands(height, width, _distinct_colors(rng, 3))
    if chosen == "nordic_cross":
        field_color, cross_color = _distinct_colors(rng, 2)
        flag = Image.filled(height, width, field_color)
        return draw_cross(flag, height // 2, width // 3, max(3, height // 6), cross_color)
    if chosen == "canton":
        field_color, canton_color, stripe_color = _distinct_colors(rng, 3)
        flag = horizontal_bands(
            height, width, [field_color, stripe_color] * 3 + [field_color]
        )
        return draw_rect(flag, Rect(0, 0, height // 2, width * 2 // 5), canton_color)
    if chosen == "disc":
        field_color, disc_color = _distinct_colors(rng, 2)
        flag = Image.filled(height, width, field_color)
        radius = min(height, width) // 4
        return draw_disc(flag, height // 2, width // 2, radius, disc_color)
    raise WorkloadError(f"unknown flag style {chosen!r}; known: {FLAG_STYLES}")


def make_flag_collection(
    rng: np.random.Generator,
    count: int,
    height: int = 40,
    width: int = 60,
) -> List[Image]:
    """``count`` flags cycling uniformly through all styles."""
    if count < 0:
        raise WorkloadError("flag count must be non-negative")
    return [
        make_flag(rng, height, width, style=FLAG_STYLES[index % len(FLAG_STYLES)])
        for index in range(count)
    ]


#: The palette the flag workload passes to augmentation recipes (Modify
#: old/new colors are drawn from here, so recolors hit real flag colors).
FLAG_RECIPE_PALETTE = FLAG_PALETTE + (NAMED_COLORS["gray"],)
