"""A catalog of real national-flag layouts.

The paper's first dataset was "a collection of images of flags around
the world" [9].  Alongside the randomized generator in
:mod:`repro.workloads.flags`, this module renders a fixed catalog of
real flags from declarative layout descriptions, so experiments that
want the *actual* color distribution of world flags (rather than a
randomized facsimile) can use it — e.g. the A6 recall experiment, where
"which flags share colors" matters.

Layout vocabulary (colors are :mod:`repro.color.names` words):

* ``("horizontal", [c1, c2, ...])`` — top-to-bottom bands;
* ``("vertical", [c1, c2, ...])`` — left-to-right bands;
* ``("nordic", field, cross)`` — Scandinavian cross;
* ``("disc", field, disc)`` — centered disc (e.g. Japan);
* ``("canton", field, canton)`` — upper-hoist canton on a field;
* ``("bicolor_disc", [c1, c2], disc)`` — horizontal bicolor + center disc.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.color.names import color_by_name
from repro.errors import WorkloadError
from repro.images.generators import (
    draw_cross,
    draw_disc,
    draw_rect,
    horizontal_bands,
    vertical_bands,
)
from repro.images.geometry import Rect
from repro.images.raster import Image

#: Real-world flag layouts (simplified to our vocabulary, emblems and
#: fine detail omitted — histogram-level fidelity is the goal).
FLAG_DEFINITIONS: Dict[str, tuple] = {
    # Vertical tricolors
    "france": ("vertical", ["blue", "white", "red"]),
    "italy": ("vertical", ["green", "white", "red"]),
    "ireland": ("vertical", ["green", "white", "orange"]),
    "belgium": ("vertical", ["black", "yellow", "red"]),
    "romania": ("vertical", ["blue", "yellow", "red"]),
    "mali": ("vertical", ["green", "yellow", "red"]),
    "nigeria": ("vertical", ["green", "white", "green"]),
    "peru": ("vertical", ["red", "white", "red"]),
    # Horizontal tricolors / bicolors
    "germany": ("horizontal", ["black", "red", "gold"]),
    "netherlands": ("horizontal", ["red", "white", "blue"]),
    "russia": ("horizontal", ["white", "blue", "red"]),
    "austria": ("horizontal", ["red", "white", "red"]),
    "hungary": ("horizontal", ["red", "white", "green"]),
    "bulgaria": ("horizontal", ["white", "green", "red"]),
    "estonia": ("horizontal", ["lightblue", "black", "white"]),
    "lithuania": ("horizontal", ["yellow", "green", "red"]),
    "luxembourg": ("horizontal", ["red", "white", "lightblue"]),
    "yemen": ("horizontal", ["red", "white", "black"]),
    "ukraine": ("horizontal", ["lightblue", "yellow"]),
    "poland": ("horizontal", ["white", "red"]),
    "monaco": ("horizontal", ["red", "white"]),
    "indonesia": ("horizontal", ["red", "white"]),
    "colombia": ("horizontal", ["yellow", "blue", "red"]),
    "ethiopia": ("horizontal", ["green", "yellow", "red"]),
    "ghana": ("horizontal", ["red", "gold", "green"]),
    "sierra_leone": ("horizontal", ["green", "white", "lightblue"]),
    "gabon": ("horizontal", ["green", "yellow", "blue"]),
    "armenia": ("horizontal", ["red", "blue", "orange"]),
    # Nordic crosses
    "sweden": ("nordic", "blue", "yellow"),
    "norway": ("nordic", "red", "white"),
    "denmark": ("nordic", "red", "white"),
    "finland": ("nordic", "white", "blue"),
    "iceland": ("nordic", "blue", "white"),
    # Discs
    "japan": ("disc", "white", "red"),
    "bangladesh": ("disc", "green", "red"),
    "palau": ("disc", "lightblue", "yellow"),
    "laos": ("bicolor_disc", ["red", "blue"], "white"),
    # Cantons
    "greece": ("canton", "lightblue", "blue"),
    "malaysia": ("canton", "red", "blue"),
    "togo": ("canton", "green", "red"),
    "liberia": ("canton", "red", "blue"),
    "chile": ("canton", "white", "blue"),
    "uruguay": ("canton", "white", "lightblue"),
}


def flag_names() -> Tuple[str, ...]:
    """All catalog flag names, sorted."""
    return tuple(sorted(FLAG_DEFINITIONS))


def make_real_flag(name: str, height: int = 40, width: int = 60) -> Image:
    """Render one catalog flag."""
    definition = FLAG_DEFINITIONS.get(name.lower())
    if definition is None:
        raise WorkloadError(
            f"unknown flag {name!r}; known: {', '.join(flag_names())}"
        )
    kind = definition[0]
    if kind == "horizontal":
        return horizontal_bands(height, width, [color_by_name(c) for c in definition[1]])
    if kind == "vertical":
        return vertical_bands(height, width, [color_by_name(c) for c in definition[1]])
    if kind == "nordic":
        flag = Image.filled(height, width, color_by_name(definition[1]))
        return draw_cross(
            flag, height // 2, width * 2 // 5, max(3, height // 6),
            color_by_name(definition[2]),
        )
    if kind == "disc":
        flag = Image.filled(height, width, color_by_name(definition[1]))
        return draw_disc(
            flag, height // 2, width // 2, min(height, width) * 3 // 10,
            color_by_name(definition[2]),
        )
    if kind == "canton":
        flag = Image.filled(height, width, color_by_name(definition[1]))
        return draw_rect(
            flag, Rect(0, 0, height // 2, width * 2 // 5), color_by_name(definition[2])
        )
    if kind == "bicolor_disc":
        flag = horizontal_bands(
            height, width, [color_by_name(c) for c in definition[1]]
        )
        return draw_disc(
            flag, height // 2, width // 2, min(height, width) // 4,
            color_by_name(definition[2]),
        )
    raise WorkloadError(f"unknown layout kind {kind!r} for {name!r}")


def make_world_flags(height: int = 40, width: int = 60) -> Dict[str, Image]:
    """Render the whole catalog, keyed by country name."""
    return {name: make_real_flag(name, height, width) for name in flag_names()}
