"""repro — reproduction of Brown & Gruenwald, ICDE 2006.

"Speeding up Color-Based Retrieval in Multimedia Database Management
Systems that Store Images as Sequences of Editing Operations."

The package reimplements the paper's whole stack from scratch: the
five-operation image editing algebra and its instantiation engine, color
histogram features, the Table 1 rule system bounding histogram bins of
never-instantiated edited images (RBM), and the paper's contribution —
the Bound-Widening Method (BWM) data structure and query algorithm —
plus the MMDBMS, index, workload, and benchmarking substrates the
evaluation needs.

Quick start::

    import numpy as np
    from repro import MultimediaDatabase, RangeQuery
    from repro.workloads import make_flag

    rng = np.random.default_rng(0)
    db = MultimediaDatabase()
    base = db.insert_image(make_flag(rng))
    db.augment(base, rng, variants=4, palette=[(200, 16, 46), (0, 40, 104)])
    result = db.text_query("retrieve all images that are at least 25% blue")
    print(result.sorted_ids())
"""

import logging as _logging

# Standard library etiquette: a library never configures logging for the
# application.  The NullHandler stops the root logger's last-resort
# handler from spraying our warnings (salvage, repair, load shedding,
# slow queries) onto stderr; applications opt in with a real handler —
# the CLI's ``-v/--verbose`` flag does exactly that.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.analysis import (
    AnalysisReport,
    Finding,
    analyze_database,
    lint_paths,
    prove_rules,
)
from repro.color import ColorHistogram, UniformQuantizer
from repro.core import (
    BWMProcessor,
    BWMStructure,
    BoundsEngine,
    PixelBounds,
    QueryResult,
    RBMProcessor,
    RangeQuery,
    is_bound_widening,
    sequence_is_bound_widening,
)
from repro.db import MultimediaDatabase, load_database, save_database
from repro.editing import (
    Combine,
    Define,
    EditExecutor,
    EditSequence,
    Merge,
    Modify,
    Mutate,
)
from repro.errors import ReproError
from repro.images import AffineMatrix, Image, Rect, read_ppm, write_ppm
from repro.obs import set_tracing, tracing, tracing_enabled
from repro.service import (
    AnalyzedQuery,
    CostBasedPlanner,
    ExplainedPlan,
    PlanActuals,
    QueryService,
    Strategy,
)

__version__ = "1.0.0"

__all__ = [
    "AffineMatrix",
    "AnalysisReport",
    "AnalyzedQuery",
    "BWMProcessor",
    "BWMStructure",
    "BoundsEngine",
    "ColorHistogram",
    "Combine",
    "CostBasedPlanner",
    "Define",
    "EditExecutor",
    "EditSequence",
    "ExplainedPlan",
    "Finding",
    "Image",
    "Merge",
    "Modify",
    "MultimediaDatabase",
    "Mutate",
    "PixelBounds",
    "PlanActuals",
    "QueryResult",
    "QueryService",
    "RBMProcessor",
    "RangeQuery",
    "Rect",
    "ReproError",
    "Strategy",
    "UniformQuantizer",
    "__version__",
    "analyze_database",
    "is_bound_widening",
    "lint_paths",
    "load_database",
    "prove_rules",
    "read_ppm",
    "save_database",
    "sequence_is_bound_widening",
    "set_tracing",
    "tracing",
    "tracing_enabled",
    "write_ppm",
]
