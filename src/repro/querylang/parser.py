"""A tiny text query language for color range queries.

The paper motivates range queries with natural-language examples —
"Retrieve all images that are at least 25% blue" (§3.1).  This parser
accepts exactly that family of sentences and produces the ``(color,
pct_min, pct_max)`` triple the database maps onto a histogram bin:

* ``retrieve all images that are at least 25% blue``
* ``images that are at most 40% red``
* ``images between 10% and 30% green``
* ``at least 0.25 blue`` (bare fractions work too)
* ``exactly 50% white`` (a degenerate range)
* ``more than 25% blue`` / ``less than 40% red`` / ``no more than 40%
  red`` (synonyms mapping onto the at-least/at-most constraints)

Grammar (case-insensitive; the ``retrieve``/``images that are`` preamble
is optional noise)::

    query    := preamble? constraint
    constraint := ("at least" | "more than" | "at most" | "less than"
                  | "no more than" | "exactly") percent color
                | "between" percent "and" percent color
    percent  := NUMBER "%"? | NUMBER
    color    := a name from repro.color.names

Conjunctions whose constraints on one color cannot all hold ("more than
30% red and less than 20% red") are rejected with a :class:`ParseError`
naming the empty range, rather than silently returning nothing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

from repro.color.names import color_by_name
from repro.errors import ParseError

_PREAMBLE = re.compile(
    r"^\s*(retrieve\s+)?(all\s+)?(the\s+)?(images?\s+)?(that\s+)?(are\s+|is\s+|with\s+|have\s+|having\s+)?",
    re.IGNORECASE,
)
_NUMBER = r"(\d+(?:\.\d+)?)\s*(%)?"
_AT_LEAST = re.compile(
    rf"^(?:at\s+least|more\s+than)\s+{_NUMBER}\s+(\w+)\s*$", re.IGNORECASE
)
_AT_MOST = re.compile(
    rf"^(?:at\s+most|no\s+more\s+than|less\s+than)\s+{_NUMBER}\s+(\w+)\s*$",
    re.IGNORECASE,
)
_EXACTLY = re.compile(rf"^exactly\s+{_NUMBER}\s+(\w+)\s*$", re.IGNORECASE)
_BETWEEN = re.compile(
    rf"^between\s+{_NUMBER}\s+and\s+{_NUMBER}\s+(\w+)\s*$", re.IGNORECASE
)

#: Keywords that may open a constraint (used by the conjunction splitter).
_CONSTRAINT_HEAD = (
    r"at\s+least|at\s+most|no\s+more\s+than|more\s+than|less\s+than"
    r"|exactly|between"
)


@dataclass(frozen=True)
class ParsedQuery:
    """The parsed form: a color name plus a fraction interval."""

    color_name: str
    rgb: Tuple[int, int, int]
    pct_min: float
    pct_max: float

    def __repr__(self) -> str:
        return (
            f"ParsedQuery({self.color_name!r}, "
            f"[{self.pct_min:.3f}, {self.pct_max:.3f}])"
        )


def _to_fraction(number_text: str, percent_sign: str) -> float:
    value = float(number_text)
    # A '%' sign, or any value above 1, means the number was a percentage.
    if percent_sign or value > 1.0:
        value /= 100.0
    if not 0.0 <= value <= 1.0:
        raise ParseError(f"percentage {number_text!r} outside [0, 100]")
    return value


def parse_query(text: str) -> ParsedQuery:
    """Parse a text query into a :class:`ParsedQuery`.

    Raises :class:`ParseError` with a pointed message for malformed
    input or unknown color words.
    """
    if not text or not text.strip():
        raise ParseError("empty query")
    body = _PREAMBLE.sub("", text.strip(), count=1).strip().rstrip(".?!")
    return _parse_constraint(body, text)


def parse_conjunctive_query(text: str) -> Tuple[ParsedQuery, ...]:
    """Parse a conjunction: "at least 20% red and at most 10% blue".

    Splits on the word ``and`` *between* constraints (the ``between X and
    Y`` form keeps its internal ``and``) and parses each constraint like
    :func:`parse_query`.  A single constraint parses to a 1-tuple.
    """
    if not text or not text.strip():
        raise ParseError("empty query")
    body = _PREAMBLE.sub("", text.strip(), count=1).strip().rstrip(".?!")
    # Split on "and" only when followed by a constraint keyword, so the
    # "between X and Y color" form is not broken apart.
    parts = re.split(
        rf"\s+and\s+(?=(?:{_CONSTRAINT_HEAD})\b)",
        body,
        flags=re.IGNORECASE,
    )
    constraints = tuple(_parse_constraint(part.strip(), text) for part in parts)
    _reject_empty_ranges(constraints, text)
    return constraints


def _reject_empty_ranges(constraints, original: str) -> None:
    """Refuse conjunctions whose per-color ranges cannot all hold.

    "more than 30% red and less than 20% red" intersects to an empty
    interval — no image can ever satisfy it, so treating it as a valid
    query that silently matches nothing would mask the user's mistake.
    """
    merged = {}
    for parsed in constraints:
        low, high = merged.get(parsed.color_name, (0.0, 1.0))
        merged[parsed.color_name] = (
            max(low, parsed.pct_min),
            min(high, parsed.pct_max),
        )
    for color_name, (low, high) in merged.items():
        if low > high:
            raise ParseError(
                f"constraints on {color_name!r} in {original!r} leave an "
                f"empty range [{low:.2%}, {high:.2%}] — no image can match"
            )


def _parse_constraint(body: str, original: str) -> ParsedQuery:
    match = _AT_LEAST.match(body)
    if match:
        low = _to_fraction(match.group(1), match.group(2))
        return _build(match.group(3), low, 1.0)
    match = _AT_MOST.match(body)
    if match:
        high = _to_fraction(match.group(1), match.group(2))
        return _build(match.group(3), 0.0, high)
    match = _EXACTLY.match(body)
    if match:
        value = _to_fraction(match.group(1), match.group(2))
        return _build(match.group(3), value, value)
    match = _BETWEEN.match(body)
    if match:
        low = _to_fraction(match.group(1), match.group(2))
        high = _to_fraction(match.group(3), match.group(4))
        if low > high:
            raise ParseError(f"empty range: between {low:.2%} and {high:.2%}")
        return _build(match.group(5), low, high)
    raise ParseError(
        f"cannot parse {original!r}; expected e.g. 'retrieve all images that "
        "are at least 25% blue', 'at most 40% red', 'between 10% and 30% "
        "green', or a conjunction with 'and'"
    )


def _build(color_name: str, pct_min: float, pct_max: float) -> ParsedQuery:
    rgb = color_by_name(color_name)  # raises ColorError (a ReproError) if unknown
    return ParsedQuery(color_name.lower(), rgb, pct_min, pct_max)
