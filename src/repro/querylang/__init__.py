"""Text query language for color range queries."""

from repro.querylang.parser import ParsedQuery, parse_conjunctive_query, parse_query

__all__ = ["ParsedQuery", "parse_conjunctive_query", "parse_query"]
