"""`QueryService` — the concurrent query-serving front end of the MMDBMS.

One service object owns a :class:`~repro.service.planner.CostBasedPlanner`,
a :class:`~repro.service.cache.ResultCache`, a
:class:`~repro.service.metrics.MetricsRegistry`, and a bounded thread
pool, and turns the library's single-threaded query machinery into a
serving layer:

* **Admission control** — at most ``max_workers + queue_depth`` queries
  may be in flight; beyond that :meth:`QueryService.submit` sheds load
  with a typed :class:`~repro.errors.ServiceOverloadedError` instead of
  letting latency collapse for everyone.
* **Deadlines** — a query carries an optional deadline; if it is still
  queued when the deadline passes, the worker refuses to start it
  (:class:`~repro.errors.QueryTimeoutError`), and a synchronous caller
  stops waiting at the same point.
* **Consistency** — queries run under the read side of a
  readers-writer lock; catalog mutations go through the service's
  mutation wrappers, which take the write side.  Mutations ride the
  database's dependency-aware ``engine.invalidate`` path, whose events
  clear the result cache, mark the planner's statistics dirty, and
  stale the spatial indexes — so a result computed *or cached* before a
  mutation is never served after it.
* **Graceful shutdown** — :meth:`QueryService.shutdown` stops admitting
  new queries immediately but drains everything already admitted.

Execution strategies are chosen per query by the cost-based planner (or
forced via ``strategy=``); every strategy returns the scalar RBM
oracle's exact result set, so the choice affects latency only.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.query import QueryResult, QueryStats, RangeQuery
from repro.db.records import EditedImageRecord
from repro.errors import (
    LockTimeoutError,
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
)
from repro.index.builders import (
    build_binary_histogram_index,
    build_edited_bounds_index,
    edited_range_candidates,
)
from repro.index.mbr import MBR
from repro.obs.attribution import AttributionReport, attribute_query
from repro.obs.events import EventLog
from repro.obs.prometheus import render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Span, Tracer, maybe_tracer
from repro.service.cache import ResultCache, cache_key
from repro.service.metrics import MetricsRegistry
from repro.service.planner import (
    CostBasedPlanner,
    ExplainedPlan,
    PlanActuals,
    Strategy,
)

logger = logging.getLogger(__name__)

#: What callers may pass as a query: a parsed constraint, several
#: AND-composed constraints, or querylang text.
QueryLike = Union[RangeQuery, Sequence[RangeQuery], str]


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Queries share the read side; catalog mutations take the write side.
    Writer preference keeps a steady query stream from starving
    mutations (the regime the concurrency stress test exercises).
    Public because the sharded catalog (:mod:`repro.shard`) guards each
    shard with one of these — scatter-gather queries take the read side
    per shard, WAL-journaled mutations and compaction swaps the write
    side.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._writer_thread: Optional[int] = None
        #: Opt-in racecheck instrumentation
        #: (:mod:`repro.testing.racecheck` sets both); ``None`` in
        #: production, so the hot path pays one attribute load.
        self._monitor: Optional[object] = None
        self._monitor_id: str = "rwlock"

    def write_held_by_current_thread(self) -> bool:
        """Whether the calling thread is the active writer.

        The lock is not reentrant, so code that may run either under an
        already-held write lock or standalone (the sharded catalog's
        invalidation listener) uses this to decide whether acquiring
        :meth:`write_locked` would self-deadlock.
        """
        return self._writer_thread == threading.get_ident()

    def _wait(self, deadline: Optional[float], side: str) -> None:
        """One condition wait, bounded by ``deadline`` (monotonic)."""
        if deadline is None:
            self._cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise LockTimeoutError(
                f"{side} lock not acquired before timeout; abandoning"
            )
        self._cond.wait(remaining)

    @contextmanager
    def read_locked(self, timeout: Optional[float] = None):
        """Hold the read side.  ``timeout`` (seconds) bounds the wait;
        a timed-out attempt raises
        :class:`~repro.errors.LockTimeoutError` having changed
        nothing."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._wait(deadline, "read")
            self._readers += 1
        monitor = self._monitor
        if monitor is not None:
            monitor.on_acquire(self._monitor_id, "read")  # type: ignore[attr-defined]
        try:
            yield
        finally:
            if monitor is not None:
                monitor.on_release(self._monitor_id, "read")  # type: ignore[attr-defined]
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self, timeout: Optional[float] = None):
        """Hold the write side.  A timed-out attempt withdraws its
        waiting claim and wakes blocked readers before raising
        :class:`~repro.errors.LockTimeoutError` — writer preference
        must not outlive an abandoned writer."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._wait(deadline, "write")
            except BaseException:
                self._writers_waiting -= 1
                self._cond.notify_all()
                raise
            self._writers_waiting -= 1
            self._writer_active = True
            self._writer_thread = threading.get_ident()
        monitor = self._monitor
        if monitor is not None:
            monitor.on_acquire(self._monitor_id, "write")  # type: ignore[attr-defined]
        try:
            yield
        finally:
            if monitor is not None:
                monitor.on_release(self._monitor_id, "write")  # type: ignore[attr-defined]
            with self._cond:
                self._writer_active = False
                self._writer_thread = None
                self._cond.notify_all()


#: Backwards-compatible alias (the lock predates its public name).
_ReadWriteLock = ReadWriteLock


@dataclass(frozen=True)
class ServiceResult:
    """What the service returns for one query."""

    #: The normalized constraints that were executed.
    constraints: Tuple[RangeQuery, ...]
    #: The result set (identical to the scalar RBM oracle's).
    result: QueryResult
    #: One plan per constraint (the plans that *produced* the cached
    #: value when ``cache_hit``).
    plans: Tuple[ExplainedPlan, ...]
    #: Whether the result came from the result cache.
    cache_hit: bool
    #: Wall-clock seconds from worker start to completion.
    seconds: float
    #: The query's span tree when tracing was enabled, else ``None``.
    trace: Optional[Span] = None

    @property
    def strategy(self) -> Strategy:
        """The strategy of the (first) executed plan."""
        return self.plans[0].strategy


@dataclass(frozen=True)
class AnalyzedQuery:
    """What :meth:`QueryService.explain_analyze` returns.

    Every plan carries :class:`~repro.service.planner.PlanActuals`
    (estimated vs. actual work, the strategy that actually executed,
    cache hits, latency), ``attribution`` holds one per-constraint
    prune-attribution report (or ``None`` per constraint when disabled),
    and ``trace`` is the full span tree — EXPLAIN ANALYZE is always
    traced regardless of the global switch.
    """

    constraints: Tuple[RangeQuery, ...]
    result: QueryResult
    plans: Tuple[ExplainedPlan, ...]
    attribution: Tuple[Optional[AttributionReport], ...]
    trace: Span
    seconds: float

    def describe(self) -> str:
        """The relational-style EXPLAIN ANALYZE rendering."""
        lines: List[str] = []
        for index, plan in enumerate(self.plans):
            lines.append(plan.describe())
            report = self.attribution[index]
            if report is not None:
                lines.append(report.describe())
        lines.append(
            f"TOTAL {len(self.result)} matches in {self.seconds * 1e3:.3f}ms"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form (plans flattened through their actuals)."""
        return {
            "constraints": [repr(c) for c in self.constraints],
            "matches": sorted(self.result.matches),
            "seconds": self.seconds,
            "plans": [
                {
                    "strategy": plan.strategy.value,
                    "estimated_cost": plan.estimated_cost,
                    "selectivity": plan.selectivity,
                    "actuals": (
                        plan.actuals.to_dict() if plan.actuals else None
                    ),
                }
                for plan in self.plans
            ],
            "attribution": [
                report.to_dict() if report is not None else None
                for report in self.attribution
            ],
            "trace": self.trace.to_dict(),
        }


class QueryService:
    """Concurrent, planned, cached query execution over one database.

    Parameters
    ----------
    database:
        The :class:`repro.db.database.MultimediaDatabase` to serve.
        Mutations **must** go through this service's wrappers
        (:meth:`insert_image`, :meth:`insert_edited`, ...) while the
        service is live; direct database mutation bypasses the
        readers-writer lock.
    max_workers:
        Worker threads executing queries.
    queue_depth:
        Admitted-but-not-running queries allowed beyond the workers;
        submissions past ``max_workers + queue_depth`` in flight are
        shed with :class:`ServiceOverloadedError`.
    default_timeout:
        Deadline in seconds applied when a call passes none.
    cache_capacity / cache_ttl:
        Result cache sizing (see :class:`ResultCache`).
    slow_query_threshold:
        Seconds beyond which a finished query is recorded into the
        ring-buffer slow-query log (``None`` disables recording; the
        hot-path cost of disabled is one comparison).
    slow_log_capacity:
        Ring size of the slow-query log.
    prebuild_indexes:
        Build the point + interval indexes at construction so the
        planner may choose INDEX_ASSISTED from the first query.
    clock:
        Monotonic time source (injectable for deadline/TTL tests).
    """

    def __init__(
        self,
        database,
        *,
        max_workers: int = 4,
        queue_depth: int = 16,
        default_timeout: Optional[float] = None,
        cache_capacity: int = 256,
        cache_ttl: Optional[float] = None,
        slow_query_threshold: Optional[float] = None,
        slow_log_capacity: int = 128,
        prebuild_indexes: bool = False,
        planner: Optional[CostBasedPlanner] = None,
        clock: Callable[[], float] = time.monotonic,
        event_log: Optional[EventLog] = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError("max_workers must be at least 1")
        if queue_depth < 0:
            raise ServiceError("queue_depth must be non-negative")
        self._database = database
        self._clock = clock
        self._default_timeout = default_timeout
        self.planner = planner if planner is not None else CostBasedPlanner(database)
        self.metrics = MetricsRegistry()
        #: Wide-event log for the service tier (slow queries, mutations).
        #: Pass a shared :class:`EventLog` to merge this service's
        #: timeline with a catalog's; by default each service keeps a
        #: private ring so tests stay isolated.
        self.events = event_log if event_log is not None else EventLog(capacity=256)
        self.cache = ResultCache(
            capacity=cache_capacity, ttl=cache_ttl, clock=clock
        )
        self.cache.attach_to_engine(database.engine)
        self.slow_log = SlowQueryLog(
            capacity=slow_log_capacity, threshold=slow_query_threshold
        )
        self._rwlock = ReadWriteLock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        # Admission counter only; never held across catalog access.
        self._admission = threading.Lock()  # repro-lint: disable=AL001
        self._in_flight = 0
        self._capacity = max_workers + queue_depth
        self._closed = False
        # Guards lazy index builds, which already run under the read lock.
        self._index_lock = threading.Lock()  # repro-lint: disable=AL001
        self._point_index = None
        self._interval_index = None
        self._indexes_fresh = False
        database.engine.add_invalidation_listener(self._on_invalidation)
        if prebuild_indexes:
            self.refresh_indexes()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def shutdown(self, wait: bool = True) -> None:
        """Refuse new queries, drain in-flight ones, release threads.

        Idempotent.  With ``wait=True`` (default) the call returns only
        after every admitted query has completed — the graceful drain.
        """
        with self._admission:
            already = self._closed
            self._closed = True
        self._pool.shutdown(wait=wait)
        if not already:
            self.cache.detach()
            self.planner.close()
            self._database.engine.remove_invalidation_listener(
                self._on_invalidation
            )

    def _on_invalidation(self, image_id) -> None:
        self._indexes_fresh = False

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def submit(
        self,
        query: QueryLike,
        *,
        timeout: Optional[float] = None,
        strategy: Optional[Union[Strategy, str]] = None,
        expand_to_bases: bool = False,
    ) -> "Future[ServiceResult]":
        """Admit a query for asynchronous execution.

        Returns a future resolving to a :class:`ServiceResult`.  Raises
        :class:`ServiceOverloadedError` (shed) or
        :class:`ServiceShutdownError` *synchronously* when the query is
        not admitted at all.
        """
        # One branch when tracing is off: NULL_TRACER's methods are
        # constant-time no-ops, so the disabled path allocates nothing.
        tracer = maybe_tracer("query")
        with tracer.span("parse"):
            constraints = self._normalize(query)
        forced = self._normalize_strategy(strategy)
        timeout = timeout if timeout is not None else self._default_timeout
        deadline = self._clock() + timeout if timeout is not None else None
        # Opened on the submitting thread, closed by the worker: its
        # duration is the admission-queue wait.
        admission = tracer.start_span("admission")
        with self._admission:
            if self._closed:
                raise ServiceShutdownError(
                    "query service is shutting down; submission refused"
                )
            if self._in_flight >= self._capacity:
                self.metrics.increment("queries_shed")
                logger.warning(
                    "load shed: %d queries in flight at capacity %d",
                    self._in_flight,
                    self._capacity,
                )
                raise ServiceOverloadedError(
                    f"service overloaded: {self._in_flight} queries in "
                    f"flight at capacity {self._capacity}"
                )
            self._in_flight += 1
        try:
            future = self._pool.submit(
                self._run, constraints, deadline, forced, expand_to_bases,
                tracer, admission,
            )
        except BaseException as exc:
            with self._admission:
                self._in_flight -= 1
            if isinstance(exc, RuntimeError):
                # Lost the race with a concurrent shutdown(): the pool
                # refused the work after our admission check passed.
                raise ServiceShutdownError(
                    "query service shut down during submission"
                ) from None
            raise
        future.add_done_callback(self._release_slot)
        return future

    def execute(
        self,
        query: QueryLike,
        *,
        timeout: Optional[float] = None,
        strategy: Optional[Union[Strategy, str]] = None,
        expand_to_bases: bool = False,
    ) -> ServiceResult:
        """Admit a query and wait for its result.

        The wait honors the deadline: when it passes while the query is
        still queued or running, :class:`QueryTimeoutError` is raised
        (the in-flight work is not interrupted — Python threads cannot
        be preempted — but its slot drains normally).
        """
        timeout = timeout if timeout is not None else self._default_timeout
        future = self.submit(
            query,
            timeout=timeout,
            strategy=strategy,
            expand_to_bases=expand_to_bases,
        )
        try:
            # Grace on top of the deadline so the worker-side check
            # (which fires exactly at the deadline) reports first.
            wait = timeout + 0.25 if timeout is not None else None
            return future.result(timeout=wait)
        except FutureTimeoutError:
            self.metrics.increment("queries_timed_out")
            raise QueryTimeoutError(
                f"query still running after its {timeout:.3f}s deadline"
            ) from None

    def _release_slot(self, future: "Future[ServiceResult]") -> None:
        with self._admission:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Queries admitted but not yet finished."""
        with self._admission:
            return self._in_flight

    @property
    def database(self):
        """The served database.  Read-only access is always safe; any
        mutation must happen under :meth:`write_locked` (the mutation
        wrappers below do this for you)."""
        return self._database

    @contextmanager
    def write_locked(self):
        """Hold the write side of the service's readers-writer lock.

        For out-of-band catalog mutators — notably the online schema
        migrator's per-batch pointer swaps — that need the same
        queries-drained exclusivity the built-in mutation wrappers get.
        Keep the critical section short: every query waits while it is
        held, and writer preference means new readers queue behind it.
        """
        with self._rwlock.write_locked():
            yield

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def _normalize(self, query: QueryLike) -> Tuple[RangeQuery, ...]:
        if isinstance(query, str):
            from repro.querylang.parser import parse_conjunctive_query

            quantizer = self._database.quantizer
            return tuple(
                RangeQuery(quantizer.bin_of(p.rgb), p.pct_min, p.pct_max)
                for p in parse_conjunctive_query(query)
            )
        if isinstance(query, RangeQuery):
            constraints: Tuple[RangeQuery, ...] = (query,)
        else:
            constraints = tuple(query)
        if not constraints:
            raise ServiceError("a query needs at least one constraint")
        for constraint in constraints:
            if not isinstance(constraint, RangeQuery):
                raise ServiceError(f"not a range constraint: {constraint!r}")
            self._database.quantizer.validate_bin(constraint.bin_index)
        return constraints

    @staticmethod
    def _normalize_strategy(
        strategy: Optional[Union[Strategy, str]]
    ) -> Optional[Strategy]:
        if strategy is None or isinstance(strategy, Strategy):
            return strategy
        try:
            return Strategy(strategy)
        except ValueError:
            names = ", ".join(s.value for s in Strategy)
            raise ServiceError(
                f"unknown strategy {strategy!r}; expected one of {names}"
            ) from None

    # ------------------------------------------------------------------
    # Worker path
    # ------------------------------------------------------------------
    def _run(
        self,
        constraints: Tuple[RangeQuery, ...],
        deadline: Optional[float],
        forced: Optional[Strategy],
        expand_to_bases: bool,
        tracer=None,
        admission=None,
    ) -> ServiceResult:
        if tracer is None:
            tracer = maybe_tracer("query")
            admission = tracer.start_span("admission")
        tracer.finish_span(admission)
        start = self._clock()
        if deadline is not None and start >= deadline:
            self.metrics.increment("queries_timed_out")
            logger.warning(
                "query timed out in the admission queue (deadline %.3f)",
                deadline,
            )
            raise QueryTimeoutError(
                "query deadline passed while waiting in the admission queue"
            )
        key = cache_key(constraints, expand_to_bases)
        lock_wait = tracer.start_span("lock-wait")
        with self._rwlock.read_locked():
            tracer.finish_span(lock_wait)
            with tracer.span("cache-lookup"):
                cached = self.cache.get(key)
            if cached is not None:
                result, plans = cached
                seconds = self._clock() - start
                trace = self._finish_trace(tracer, cache_hit=True)
                self._record(
                    constraints, plans, seconds, cache_hit=True, trace=trace
                )
                return ServiceResult(
                    constraints, result, plans, True, seconds, trace
                )
            with tracer.span("plan"):
                plans = tuple(
                    self._plan(constraint, forced) for constraint in constraints
                )
            with tracer.span("execute") as execute_span:
                result = self._execute_plans(constraints, plans, expand_to_bases)
                if execute_span:
                    execute_span.set(
                        "strategies", [p.strategy.value for p in plans]
                    ).set("matches", len(result)).set(
                        "rules_applied", result.stats.rules_applied
                    )
            # Stored while still holding the read lock: a mutation (write
            # lock) cannot interleave between compute and publish, so the
            # cache never readmits a result from before an invalidation.
            with tracer.span("cache-publish"):
                self.cache.put(key, (result, plans))
        seconds = self._clock() - start
        trace = self._finish_trace(tracer, cache_hit=False)
        self._record(constraints, plans, seconds, cache_hit=False, trace=trace)
        return ServiceResult(constraints, result, plans, False, seconds, trace)

    def _finish_trace(self, tracer, cache_hit: bool) -> Optional[Span]:
        """Close a query's trace; fold span durations into the metrics.

        Returns the finished root span, or ``None`` when tracing was
        disabled (the null tracer finishes to ``None``).
        """
        root = tracer.finish()
        if root is None:
            return None
        root.set("cache_hit", cache_hit)
        for span in root.iter_spans():
            self.metrics.increment(f"spans.{span.name}")
            self.metrics.observe(f"span_seconds.{span.name}", span.duration)
        return root

    def _plan(
        self, constraint: RangeQuery, forced: Optional[Strategy]
    ) -> ExplainedPlan:
        plan = self.planner.plan(constraint, index_fresh=self._indexes_fresh)
        if forced is None or plan.strategy is forced:
            return plan
        # Keep the full alternatives list but honor the forced choice.
        chosen = plan.alternative(forced)
        return ExplainedPlan(
            query=plan.query,
            strategy=forced,
            estimated_cost=chosen.estimated_cost,
            selectivity=plan.selectivity,
            profile=plan.profile,
            alternatives=plan.alternatives,
        )

    def _execute_plans(
        self,
        constraints: Tuple[RangeQuery, ...],
        plans: Tuple[ExplainedPlan, ...],
        expand_to_bases: bool,
    ) -> QueryResult:
        results = [
            self._execute_one(constraint, plan)
            for constraint, plan in zip(constraints, plans)
        ]
        return self._merge_results(results, expand_to_bases)

    def _merge_results(
        self, results: List[QueryResult], expand_to_bases: bool
    ) -> QueryResult:
        """AND-combine per-constraint results (and optionally add bases)."""
        matches = set(results[0].matches)
        stats = QueryStats()
        for result in results:
            stats.merge(result.stats)
        for result in results[1:]:
            matches &= result.matches
        if expand_to_bases:
            catalog = self._database.catalog
            for image_id in tuple(matches):
                record = catalog.record(image_id)
                if isinstance(record, EditedImageRecord):
                    matches.add(record.base_id)
        return QueryResult(frozenset(matches), stats)

    def _execute_one(self, query: RangeQuery, plan: ExplainedPlan) -> QueryResult:
        if plan.strategy is Strategy.LINEAR_RBM:
            return self._database.range_query(query, method="rbm")
        if plan.strategy is Strategy.BWM:
            return self._database.range_query(query, method="bwm")
        if plan.strategy is Strategy.VECTORIZED_BATCH:
            return self._database.range_query_batch([query], method="rbm")[0]
        if plan.strategy is Strategy.INDEX_ASSISTED:
            return self._execute_indexed(query)
        raise ServiceError(f"unexecutable strategy {plan.strategy!r}")

    # ------------------------------------------------------------------
    # EXPLAIN / EXPLAIN ANALYZE
    # ------------------------------------------------------------------
    def explain(
        self,
        query: QueryLike,
        *,
        strategy: Optional[Union[Strategy, str]] = None,
    ) -> Tuple[ExplainedPlan, ...]:
        """Cost the strategies for ``query`` without executing anything.

        One :class:`~repro.service.planner.ExplainedPlan` per normalized
        constraint, each listing every costed alternative.  Use
        :meth:`explain_analyze` to also execute and attach actuals.
        """
        constraints = self._normalize(query)
        forced = self._normalize_strategy(strategy)
        with self._rwlock.read_locked():
            return tuple(
                self._plan(constraint, forced) for constraint in constraints
            )

    def explain_analyze(
        self,
        query: QueryLike,
        *,
        strategy: Optional[Union[Strategy, str]] = None,
        expand_to_bases: bool = False,
        with_attribution: bool = True,
    ) -> AnalyzedQuery:
        """Plan, execute, and measure one query — the ANALYZE companion
        to the planner's EXPLAIN.

        Runs synchronously on the calling thread under the read lock
        (it is a diagnostic, so it bypasses admission control and the
        result cache: the point is to measure the *plan*, not the
        cache).  Every returned plan carries
        :class:`~repro.service.planner.PlanActuals` — estimated vs.
        actual work units, the strategy that actually executed, latency,
        bounds-memo hits — and, with ``with_attribution`` (default), a
        per-constraint prune-attribution report whose outcome counts sum
        exactly to the candidate images evaluated.  The query is always
        traced, regardless of the global tracing switch.
        """
        constraints = self._normalize(query)
        forced = self._normalize_strategy(strategy)
        engine = self._database.engine
        tracer = Tracer("explain_analyze")
        lock_wait = tracer.start_span("lock-wait")
        with self._rwlock.read_locked():
            tracer.finish_span(lock_wait)
            with tracer.span("plan"):
                base_plans = tuple(
                    self._plan(constraint, forced) for constraint in constraints
                )
            plans: List[ExplainedPlan] = []
            results: List[QueryResult] = []
            reports: List[Optional[AttributionReport]] = []
            for index, (constraint, plan) in enumerate(
                zip(constraints, base_plans)
            ):
                hits_before = engine.cache_hits
                started = self._clock()
                with tracer.span(
                    "execute", constraint=index, strategy=plan.strategy.value
                ):
                    result = self._execute_one(constraint, plan)
                elapsed = self._clock() - started
                report: Optional[AttributionReport] = None
                if with_attribution:
                    with tracer.span("attribute", constraint=index):
                        report = attribute_query(
                            self._database.catalog, engine, constraint
                        )
                    report.record_metrics(self.metrics)
                actuals = PlanActuals(
                    executed_strategy=plan.strategy.value,
                    seconds=elapsed,
                    actual_work_units=PlanActuals.work_units(result.stats),
                    matches=len(result),
                    cache_hit=False,
                    bounds_cache_hits=engine.cache_hits - hits_before,
                    stats=result.stats,
                    images_pruned=(
                        report.outcome_counts()["pruned"]
                        if report is not None
                        else -1
                    ),
                    clusters_short_circuited=(
                        result.stats.clusters_short_circuited
                    ),
                )
                plans.append(plan.analyzed(actuals))
                results.append(result)
                reports.append(report)
            with tracer.span("merge"):
                merged = self._merge_results(results, expand_to_bases)
        root = tracer.finish()
        self.metrics.increment("explain_analyze_total")
        return AnalyzedQuery(
            constraints=constraints,
            result=merged,
            plans=tuple(plans),
            attribution=tuple(reports),
            trace=root,
            seconds=root.duration,
        )

    # ------------------------------------------------------------------
    # Index-assisted path
    # ------------------------------------------------------------------
    def refresh_indexes(self) -> None:
        """(Re)build the point + interval indexes from the live catalog."""
        with self._index_lock:
            database = self._database
            self._point_index = build_binary_histogram_index(
                database.catalog, "rtree"
            )
            self._interval_index = build_edited_bounds_index(
                database.catalog, database.engine, "rtree"
            )
            self._indexes_fresh = True
            self.metrics.increment("index_rebuilds")

    @property
    def indexes_fresh(self) -> bool:
        """Whether the spatial indexes reflect the current catalog."""
        return self._indexes_fresh

    def _execute_indexed(self, query: RangeQuery) -> QueryResult:
        if not self._indexes_fresh:
            self.refresh_indexes()
        quantizer = self._database.quantizer
        slab = MBR.slab(
            quantizer.bin_count,
            query.bin_index,
            query.pct_min,
            query.pct_max,
            domain_lo=0.0,
            domain_hi=1.0,
        )
        binary = self._point_index.search(slab)
        edited = edited_range_candidates(
            self._interval_index, quantizer.bin_count, query
        )
        stats = QueryStats()
        stats.histograms_checked = len(binary)
        return QueryResult(frozenset(binary) | frozenset(edited), stats)

    # ------------------------------------------------------------------
    # Mutations (write side of the lock)
    # ------------------------------------------------------------------
    def insert_image(self, image, image_id: Optional[str] = None) -> str:
        """Insert a binary image; drains/queues around running queries."""
        with self._rwlock.write_locked():
            assigned = self._database.insert_image(image, image_id=image_id)
        self._record_mutation("insert_image", assigned)
        return assigned

    def insert_edited(self, sequence, image_id: Optional[str] = None) -> str:
        """Insert an edited image (edit sequence)."""
        with self._rwlock.write_locked():
            assigned = self._database.insert_edited(sequence, image_id=image_id)
        self._record_mutation("insert_edited", assigned)
        return assigned

    def delete_edited(self, image_id: str) -> None:
        """Delete an edited image."""
        with self._rwlock.write_locked():
            self._database.delete_edited(image_id)
        self._record_mutation("delete_edited", image_id)

    def delete_image(self, image_id: str) -> None:
        """Delete a binary image (fails while derived images reference it)."""
        with self._rwlock.write_locked():
            self._database.delete_image(image_id)
        self._record_mutation("delete_image", image_id)

    def update_image(self, image_id: str, image) -> None:
        """Replace a binary image's raster."""
        with self._rwlock.write_locked():
            self._database.update_image(image_id, image)
        self._record_mutation("update_image", image_id)

    def _record_mutation(self, op: str, image_id: str) -> None:
        self.metrics.increment("mutations")
        self.events.emit(
            "mutation", subsystem="service", image_id=image_id, op=op
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _record(
        self,
        constraints: Tuple[RangeQuery, ...],
        plans: Tuple[ExplainedPlan, ...],
        seconds: float,
        cache_hit: bool,
        trace: Optional[Span] = None,
    ) -> None:
        self.metrics.increment("queries_total")
        self.metrics.observe("query_seconds", seconds)
        if self.slow_log.should_record(seconds):
            self.slow_log.observe(
                constraints,
                seconds,
                (plan.strategy.value for plan in plans),
                cache_hit,
                trace=trace.to_dict() if trace is not None else None,
            )
            self.events.emit(
                "query.slow",
                subsystem="service",
                trace_id=(
                    trace.attributes.get("trace_id")
                    if trace is not None
                    else None
                ),
                seconds=round(seconds, 6),
                constraints=len(constraints),
                cache_hit=cache_hit,
            )
        if cache_hit:
            self.metrics.increment("result_cache_hits")
            return
        self.metrics.increment("result_cache_misses")
        for plan in plans:
            self.metrics.increment(f"plans.{plan.strategy.value}")

    def metrics_snapshot(self) -> dict:
        """One dict with service, cache, engine, and slow-log counters.

        Shape: ``counters`` / ``histograms`` from the metrics registry,
        plus ``result_cache`` (LRU/TTL hit/miss counters),
        ``bounds_cache`` (the engine's memo counters including vec-memo
        occupancy as ``vector_entries``), ``service`` (capacity and
        load), and ``slow_queries`` (ring-buffer counters).  Every level
        is key-sorted, so serializing the snapshot is deterministic even
        without ``sort_keys`` — successive scrapes diff cleanly.
        """
        snapshot = self.metrics.snapshot()
        snapshot["result_cache"] = dict(sorted(self.cache.stats().items()))
        snapshot["bounds_cache"] = dict(
            sorted(self._database.engine.cache_stats().items())
        )
        snapshot["service"] = {
            "capacity": self._capacity,
            "closed": self._closed,
            "in_flight": self.in_flight,
            "indexes_fresh": self._indexes_fresh,
        }
        snapshot["slow_queries"] = dict(sorted(self.slow_log.stats().items()))
        snapshot["events"] = self.events.stats()
        return dict(sorted(snapshot.items()))

    def prometheus_metrics(self, prefix: str = "repro") -> str:
        """The metrics snapshot in Prometheus text-exposition format.

        Serve this from a ``/metrics`` endpoint (or dump it with
        ``repro serve-stats --prometheus``); it passes the
        promtool-style validator in :mod:`repro.obs.prometheus`.
        """
        return render_prometheus(self.metrics_snapshot(), prefix=prefix)
