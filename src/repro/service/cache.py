"""Normalized-query result cache for the serving layer.

Range queries repeat: a front end serving "at least 25% blue" to many
users should pay the catalog walk once.  :class:`ResultCache` memoizes
whole :class:`~repro.core.query.QueryResult` sets keyed by the
*normalized* query (constraints sorted, expansion flag included), with
the two standard production controls:

* **LRU capacity** — the least recently used entry is evicted when the
  cache is full;
* **TTL** — entries older than ``ttl`` seconds are dropped on access
  (a safety net against anything the invalidation path cannot see).

Correctness does not rest on the TTL: the cache subscribes to the
bounds engine's invalidation events
(:meth:`repro.core.bounds.BoundsEngine.add_invalidation_listener`), the
same dependency-aware channel that keeps BOUNDS memos fresh.  Every
catalog mutation — insert, update, or delete of any image — fires an
invalidation, and the result cache drops **everything**: a range query's
result set can be changed by *any* image appearing or vanishing, so
per-image precision would buy nothing here.  Between mutations the cache
serves hits; after a mutation it is empty.  That is the contract the
concurrency stress test pins: no stale hit, ever.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.core.query import RangeQuery
from repro.errors import ServiceError

#: The normalized cache key: sorted constraint triples + expansion flag.
CacheKey = Tuple[Tuple[Tuple[int, float, float], ...], bool]


def cache_key(
    constraints: Sequence[RangeQuery], expand_to_bases: bool = False
) -> CacheKey:
    """Normalize a query into its cache identity.

    Constraint order never changes a conjunction's result set, so the
    triples are sorted — "at least 20% red and at most 10% blue" and its
    flipped phrasing share one entry.
    """
    if not constraints:
        raise ServiceError("cannot build a cache key for zero constraints")
    triples = sorted(
        (query.bin_index, query.pct_min, query.pct_max) for query in constraints
    )
    return (tuple(triples), bool(expand_to_bases))


class ResultCache:
    """Thread-safe LRU + TTL cache of query results.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted beyond it.
    ttl:
        Seconds an entry stays servable, or ``None`` for no expiry.
    clock:
        Monotonic time source (injectable so tests control expiry).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ServiceError("cache capacity must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ServiceError("cache ttl must be positive (or None)")
        self._capacity = capacity
        self._ttl = ttl
        self._clock = clock
        # Guards only the cache's own OrderedDict; no catalog access.
        self._lock = threading.Lock()  # repro-lint: disable=AL001
        #: key -> (value, stored_at); OrderedDict gives LRU order.
        self._entries: "OrderedDict[Hashable, Tuple[Any, float]]" = OrderedDict()
        self._engine = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, stored_at = entry
            if self._ttl is not None and now - stored_at > self._ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store a value, evicting the LRU entry when full."""
        now = self._clock()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, now)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self, *, count_invalidation: bool = False) -> int:
        """Drop every entry; returns the number dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if count_invalidation:
                self.invalidations += 1
            return dropped

    # ------------------------------------------------------------------
    # Engine invalidation hook
    # ------------------------------------------------------------------
    def attach_to_engine(self, engine) -> None:
        """Subscribe to a bounds engine's invalidation events.

        Any catalog mutation routed through the engine's
        ``invalidate``/``invalidate_cache`` path clears this cache, so a
        query served after the mutation can never observe the old result
        set.
        """
        if self._engine is not None:
            raise ServiceError("result cache is already attached to an engine")
        self._engine = engine
        engine.add_invalidation_listener(self._on_invalidation)

    def detach(self) -> None:
        """Unsubscribe from the engine (idempotent)."""
        if self._engine is not None:
            self._engine.remove_invalidation_listener(self._on_invalidation)
            self._engine = None

    def _on_invalidation(self, image_id: Optional[str]) -> None:
        self.clear(count_invalidation=True)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/expiry/invalidation counters plus size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
                "entries": len(self._entries),
            }
