"""Cost-based query planning over the library's execution strategies.

The repo accumulated four ways to answer one color range query, each
fastest in a different regime:

* ``LINEAR_RBM`` — the paper's §3 baseline: check every binary
  histogram, walk every edited image's rules for the queried bin.
* ``BWM`` — the paper's §4 contribution: cluster short-circuiting skips
  the rule walks of bound-widening images whose base already matches.
* ``VECTORIZED_BATCH`` — one columnar sweep over the whole catalog's
  op table (:mod:`repro.core.optable`): every edited image's interval
  matrix in a single structure-of-arrays pass; with the dependency-aware
  memo cache warm, repeat traffic degenerates to dictionary lookups.
* ``INDEX_ASSISTED`` — the PR-2 builders: a point index over binary
  histograms plus a bounds-interval index over edited images turn the
  whole query into two spatial lookups — unbeatable while fresh, but a
  catalog mutation staleness them and a rebuild costs full walks.

Every strategy provably returns the **same result set** (the scalar RBM
oracle's — property-tested), so the planner is free to pick purely on
estimated cost.  Costs are in abstract work units anchored to the §5
work metric: one histogram check = 1, one scalar rule application = 1.
Estimates come from :class:`repro.db.statistics.DatabaseStatistics`
selectivity (how often a cluster base matches → BWM's short-circuit
rate), catalog cardinalities and operation counts (rule-walk volume),
and the live engine's memo occupancy (how much of the vectorized path
is already paid for).

The chosen plan is inspectable: :class:`ExplainedPlan` carries the
estimated cost of *every* alternative plus a one-line reason each, in
the spirit of a relational EXPLAIN.
"""

from __future__ import annotations

import enum
import logging
import math
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.query import QueryStats, RangeQuery
from repro.db.statistics import DatabaseStatistics
from repro.errors import QueryError, ServiceError

logger = logging.getLogger(__name__)


class Strategy(enum.Enum):
    """Execution strategies the planner chooses among."""

    LINEAR_RBM = "linear_rbm"
    BWM = "bwm"
    VECTORIZED_BATCH = "vectorized_batch"
    INDEX_ASSISTED = "index_assisted"


#: Deterministic tie-break order (earlier wins on equal cost): prefer the
#: structure-free baseline, then the paper's method, then the engineered
#: paths that depend on warm state.
_TIE_BREAK = {
    Strategy.LINEAR_RBM: 0,
    Strategy.BWM: 1,
    Strategy.VECTORIZED_BATCH: 2,
    Strategy.INDEX_ASSISTED: 3,
}


@dataclass(frozen=True)
class CatalogProfile:
    """The cardinalities the cost model consumes, snapshotted at plan time."""

    binary_count: int
    edited_count: int
    total_operations: int
    main_edited: int
    unclassified: int

    @property
    def mean_operations(self) -> float:
        """Average edit-sequence length (0 with no edited images)."""
        if not self.edited_count:
            return 0.0
        return self.total_operations / self.edited_count


@dataclass(frozen=True)
class PlanAlternative:
    """One considered strategy with its estimated cost and rationale."""

    strategy: Strategy
    estimated_cost: float
    reason: str


@dataclass(frozen=True)
class PlanActuals:
    """Post-execution measurements for one plan — the ANALYZE half.

    Work units use the planner's own cost constants over the executed
    query's :class:`~repro.core.query.QueryStats`, so *estimated vs.
    actual* compares like with like; ``estimation_error`` is their
    ratio (> 1 means the planner under-estimated).
    """

    #: The strategy that actually ran (the plan's, or the cache).
    executed_strategy: str
    #: Wall seconds for this constraint's execution.
    seconds: float
    #: Actual work in the planner's §5-anchored units.
    actual_work_units: float
    #: Result-set size for this constraint.
    matches: int
    #: Whether the whole query was served from the result cache.
    cache_hit: bool
    #: Bounds-engine memo hits consumed during execution.
    bounds_cache_hits: int
    #: The executed query's raw work counters.
    stats: QueryStats
    #: Candidate images excluded by bounds alone (from attribution;
    #: -1 when attribution was not collected).
    images_pruned: int = -1
    #: Cluster short-circuits taken by the BWM stage (0 elsewhere).
    clusters_short_circuited: int = 0

    @staticmethod
    def work_units(stats: QueryStats) -> float:
        """§5 work units of one execution's counters."""
        return (
            stats.histograms_checked * CostBasedPlanner.COST_HISTOGRAM
            + stats.rules_applied * CostBasedPlanner.COST_RULE
        )

    def estimation_error(self, estimated_cost: float) -> float:
        """``actual / estimated`` (∞ when the estimate was zero)."""
        if estimated_cost <= 0.0:
            return math.inf if self.actual_work_units else 1.0
        return self.actual_work_units / estimated_cost

    def to_dict(self) -> Dict[str, object]:
        return {
            "executed_strategy": self.executed_strategy,
            "seconds": self.seconds,
            "actual_work_units": self.actual_work_units,
            "matches": self.matches,
            "cache_hit": self.cache_hit,
            "bounds_cache_hits": self.bounds_cache_hits,
            "images_pruned": self.images_pruned,
            "clusters_short_circuited": self.clusters_short_circuited,
            "histograms_checked": self.stats.histograms_checked,
            "bounds_computed": self.stats.bounds_computed,
            "rules_applied": self.stats.rules_applied,
        }


@dataclass(frozen=True)
class ExplainedPlan:
    """The planner's decision for one query, with its alternatives.

    ``alternatives`` contains every candidate (including the chosen one)
    sorted cheapest first, so ``alternatives[0].strategy == strategy``.
    ``actuals`` is ``None`` for a plain EXPLAIN and carries the
    post-execution measurements after EXPLAIN ANALYZE
    (:meth:`repro.service.QueryService.explain_analyze`).
    """

    query: RangeQuery
    strategy: Strategy
    estimated_cost: float
    selectivity: float
    profile: CatalogProfile
    alternatives: Tuple[PlanAlternative, ...]
    actuals: Optional[PlanActuals] = None

    def analyzed(self, actuals: PlanActuals) -> "ExplainedPlan":
        """A copy of this plan carrying post-execution actuals."""
        return replace(self, actuals=actuals)

    def alternative(self, strategy: Strategy) -> PlanAlternative:
        """The considered entry for one strategy."""
        for candidate in self.alternatives:
            if candidate.strategy is strategy:
                return candidate
        raise ServiceError(f"strategy {strategy} was not considered")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (``repro explain --json``)."""
        return {
            "query": repr(self.query),
            "strategy": self.strategy.value,
            "estimated_cost": self.estimated_cost,
            "selectivity": self.selectivity,
            "alternatives": [
                {
                    "strategy": candidate.strategy.value,
                    "estimated_cost": candidate.estimated_cost,
                    "reason": candidate.reason,
                }
                for candidate in self.alternatives
            ],
            "actuals": (
                self.actuals.to_dict() if self.actuals is not None else None
            ),
        }

    def describe(self) -> str:
        """Human-readable PLAN output (one line per alternative)."""
        lines = [
            f"PLAN {self.query!r}",
            f"  chosen: {self.strategy.value} "
            f"(cost {self.estimated_cost:.1f}, "
            f"selectivity {self.selectivity:.3f})",
        ]
        for candidate in self.alternatives:
            marker = "*" if candidate.strategy is self.strategy else " "
            lines.append(
                f"  {marker} {candidate.strategy.value:<17} "
                f"{candidate.estimated_cost:>10.1f}  {candidate.reason}"
            )
        if self.actuals is not None:
            actual = self.actuals
            lines.append(
                f"  executed: {actual.executed_strategy} in "
                f"{actual.seconds * 1e3:.3f}ms "
                f"({'result-cache hit' if actual.cache_hit else 'computed'})"
            )
            lines.append(
                f"  actual work: {actual.actual_work_units:.1f} units vs "
                f"{self.estimated_cost:.1f} estimated "
                f"(x{actual.estimation_error(self.estimated_cost):.2f}); "
                f"{actual.stats.histograms_checked} histograms, "
                f"{actual.stats.rules_applied} rules, "
                f"{actual.bounds_cache_hits} memo hits"
            )
            pruned = (
                f"{actual.images_pruned} images pruned"
                if actual.images_pruned >= 0
                else "pruning not attributed"
            )
            lines.append(
                f"  matches: {actual.matches}; {pruned}; "
                f"{actual.clusters_short_circuited} clusters short-circuited"
            )
        return "\n".join(lines)


class CostBasedPlanner:
    """Chooses the cheapest strategy for each range query.

    The planner keeps its selectivity statistics and catalog profile
    cached, and subscribes to the bounds engine's invalidation events so
    any catalog mutation marks them dirty — the next plan recomputes
    from the live catalog.  Detach with :meth:`close` when discarding a
    planner before its database.
    """

    #: One exact histogram check against the query range.
    COST_HISTOGRAM = 1.0
    #: One scalar (single-bin) Table 1 rule application.
    COST_RULE = 1.0
    #: One op advanced by the columnar batched sweep, all bins at once.
    #: Measured by bench_bounds_kernel on the 10k-image 64-bin corpus:
    #: warm-table sweep ~2.5us/op against ~17.8us per scalar rule.
    COST_BATCHED_RULE = 0.15
    #: Fixed per-sweep overhead (state allocation, plan lookup, output
    #: packing) paid once per batch regardless of catalog size; measured
    #: ~2.1ms on tiny catalogs ~= 120 scalar rules.  This is what keeps
    #: tiny catalogs on the classic strategies.
    COST_BATCH_SETUP = 120.0
    #: Serving one memoized all-bins interval from the engine cache.
    COST_CACHE_HIT = 0.05
    #: Visiting one index node / leaf entry during a spatial lookup.
    COST_INDEX_VISIT = 2.0

    def __init__(
        self,
        database,
        statistics: Optional[DatabaseStatistics] = None,
    ) -> None:
        self._database = database
        self._statistics = (
            statistics if statistics is not None else DatabaseStatistics(database)
        )
        self._profile: Optional[CatalogProfile] = None
        self._statistics_fresh = False
        database.engine.add_invalidation_listener(self._on_invalidation)

    def close(self) -> None:
        """Stop listening to engine invalidation events."""
        self._database.engine.remove_invalidation_listener(self._on_invalidation)

    def _on_invalidation(self, image_id) -> None:
        self._profile = None
        self._statistics_fresh = False

    # ------------------------------------------------------------------
    # Model inputs
    # ------------------------------------------------------------------
    def profile(self) -> CatalogProfile:
        """Current catalog cardinalities (cached until a mutation)."""
        if self._profile is None:
            catalog = self._database.catalog
            structure = self._database.bwm_structure
            total_operations = sum(
                len(catalog.sequence_of(edited_id))
                for edited_id in catalog.edited_ids()
            )
            self._profile = CatalogProfile(
                binary_count=catalog.binary_count,
                edited_count=catalog.edited_count,
                total_operations=total_operations,
                main_edited=structure.main_edited_count,
                unclassified=structure.unclassified_count,
            )
        return self._profile

    def selectivity(self, query: RangeQuery) -> float:
        """Estimated fraction of binary images matching ``query``.

        Falls back to an uninformative 0.5 when no statistics exist
        (empty catalog) — both BWM terms then sit mid-range, which keeps
        the decision on the cardinality terms alone.
        """
        if not self._database.catalog.binary_count:
            return 0.5
        if not self._statistics_fresh:
            self._statistics.refresh()
            self._statistics_fresh = True
        try:
            stats = self._statistics.bin_statistics(query.bin_index)
        except QueryError:
            return 0.5
        return stats.estimate_selectivity(query.pct_min, query.pct_max)

    def _vec_cached_images(self) -> int:
        """How many edited images already have a memoized all-bins walk."""
        engine = self._database.engine
        if not engine.cache_enabled:
            return 0
        cached = engine.cache_stats()["vector_entries"]
        # The vec cache also holds binary images touched as bases/targets;
        # clamp to the edited population the estimate is about.
        return min(cached, self._database.catalog.edited_count)

    # ------------------------------------------------------------------
    # Costing
    # ------------------------------------------------------------------
    def plan(
        self,
        query: RangeQuery,
        index_fresh: bool = False,
        strategies: Optional[Tuple[Strategy, ...]] = None,
    ) -> ExplainedPlan:
        """Cost every strategy for ``query`` and pick the cheapest.

        ``index_fresh`` tells the planner whether the serving layer holds
        point + interval indexes built since the last catalog mutation;
        without them INDEX_ASSISTED is charged its full rebuild.

        ``strategies`` restricts the candidate set — the sharded query
        router plans per shard with the strategies its executor can
        dispatch (no per-shard spatial indexes yet, so it excludes
        INDEX_ASSISTED).  ``None`` considers everything.
        """
        self._database.quantizer.validate_bin(query.bin_index)
        profile = self.profile()
        s = self.selectivity(query)
        candidates = (
            self._cost_linear_rbm(profile),
            self._cost_bwm(profile, s),
            self._cost_vectorized(profile),
            self._cost_index_assisted(profile, s, index_fresh),
        )
        if strategies is not None:
            allowed = frozenset(strategies)
            if not allowed:
                raise QueryError("strategies filter must not be empty")
            candidates = tuple(
                candidate
                for candidate in candidates
                if candidate.strategy in allowed
            )
        ordered = tuple(
            sorted(
                candidates,
                key=lambda c: (c.estimated_cost, _TIE_BREAK[c.strategy]),
            )
        )
        chosen = ordered[0]
        return ExplainedPlan(
            query=query,
            strategy=chosen.strategy,
            estimated_cost=chosen.estimated_cost,
            selectivity=s,
            profile=profile,
            alternatives=ordered,
        )

    def _cost_linear_rbm(self, profile: CatalogProfile) -> PlanAlternative:
        cost = (
            profile.binary_count * self.COST_HISTOGRAM
            + profile.total_operations * self.COST_RULE
        )
        return PlanAlternative(
            Strategy.LINEAR_RBM,
            cost,
            f"{profile.binary_count} histogram checks + "
            f"{profile.total_operations} scalar rules",
        )

    def _cost_bwm(self, profile: CatalogProfile, s: float) -> PlanAlternative:
        mean_ops = profile.mean_operations
        cluster_ops = mean_ops * profile.main_edited
        unclassified_ops = mean_ops * profile.unclassified
        # A cluster short-circuits when its base matches (probability ≈
        # the query's selectivity); only failing clusters pay rules.
        rules = (1.0 - s) * cluster_ops + unclassified_ops
        cost = profile.binary_count * self.COST_HISTOGRAM + rules * self.COST_RULE
        return PlanAlternative(
            Strategy.BWM,
            cost,
            f"short-circuits ~{s:.0%} of {profile.main_edited} clustered "
            f"images; {profile.unclassified} unclassified always walk",
        )

    def _cost_vectorized(self, profile: CatalogProfile) -> PlanAlternative:
        cached = self._vec_cached_images()
        uncached = profile.edited_count - cached
        # Fully-memoized traffic never enters the sweep, so the fixed
        # setup is only charged while some image still needs computing.
        setup = self.COST_BATCH_SETUP if uncached > 0 else 0.0
        cost = (
            profile.binary_count * self.COST_HISTOGRAM
            + setup
            + uncached * profile.mean_operations * self.COST_BATCHED_RULE
            + cached * self.COST_CACHE_HIT
        )
        return PlanAlternative(
            Strategy.VECTORIZED_BATCH,
            cost,
            f"{cached}/{profile.edited_count} interval matrices memoized; "
            f"{uncached} swept by one columnar pass",
        )

    def _cost_index_assisted(
        self, profile: CatalogProfile, s: float, index_fresh: bool
    ) -> PlanAlternative:
        # Two spatial lookups: tree descent (log-ish node visits) plus
        # one visit per reported match/candidate.  Edited candidates are
        # conservatively estimated at the binary selectivity plus slack
        # for interval (not point) boxes overlapping the slab.
        binary_matches = s * profile.binary_count
        edited_candidates = min(1.0, s + 0.25) * profile.edited_count
        search = (
            self.COST_INDEX_VISIT
            * (
                math.log2(profile.binary_count + 2)
                + math.log2(profile.edited_count + 2)
            )
            + binary_matches
            + edited_candidates
        )
        if index_fresh:
            return PlanAlternative(
                Strategy.INDEX_ASSISTED,
                search,
                "point + interval indexes fresh; two spatial lookups",
            )
        cached = self._vec_cached_images()
        uncached = profile.edited_count - cached
        # The interval-index rebuild rides the same columnar sweep.
        rebuild = (
            profile.binary_count * self.COST_HISTOGRAM
            + (self.COST_BATCH_SETUP if uncached > 0 else 0.0)
            + uncached * profile.mean_operations * self.COST_BATCHED_RULE
            + (profile.binary_count + profile.edited_count) * self.COST_INDEX_VISIT
        )
        return PlanAlternative(
            Strategy.INDEX_ASSISTED,
            search + rebuild,
            "indexes stale: lookup cost plus a full rebuild",
        )

    # ------------------------------------------------------------------
    def plan_counts(self, plans) -> Dict[str, int]:
        """Histogram of chosen strategies over an iterable of plans."""
        counts: Dict[str, int] = {}
        for plan in plans:
            counts[plan.strategy.value] = counts.get(plan.strategy.value, 0) + 1
        return counts
