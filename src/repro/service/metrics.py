"""Lock-safe metrics for the query service.

A serving tier is only operable if it can report what it is doing; this
module provides the two primitives the :class:`repro.service.QueryService`
needs — monotonically increasing **counters** (queries served, cache
hits, queries shed, deadlines missed) and **latency histograms** with
percentile snapshots (p50/p95/p99 of query seconds).

Everything here is safe to call from any worker thread.  Recording is a
short critical section (one lock per registry); snapshots copy state
under the lock and do the sorting outside it, so a monitoring poller
never stalls the query path for long.

The histogram keeps a bounded reservoir of recent observations: exact
count/total/min/max forever, percentiles over the most recent
``reservoir_size`` samples — the standard trade so a long-lived service
does not grow memory with traffic.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Union

from repro.errors import ServiceError

#: Snapshot value type: counters are ints, histogram fields are floats.
MetricValue = Union[int, float]


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence.

    ``fraction`` is in ``(0, 1]`` (0.95 = p95).  Nearest-rank keeps the
    value an actual observation rather than an interpolation, which is
    what operators expect from latency percentiles.
    """
    if not sorted_values:
        raise ServiceError("percentile of an empty sample")
    if not 0.0 < fraction <= 1.0:
        raise ServiceError(f"percentile fraction {fraction} outside (0, 1]")
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return float(sorted_values[rank - 1])


@dataclass(frozen=True)
class HistogramSnapshot:
    """Point-in-time summary of one latency histogram."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def mean(self) -> float:
        """Average over *all* recorded values (not just the reservoir)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, MetricValue]:
        """Flat dict for JSON export."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


_EMPTY_SNAPSHOT = HistogramSnapshot(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyHistogram:
    """Bounded-memory latency recorder with percentile snapshots."""

    def __init__(self, reservoir_size: int = 2048) -> None:
        if reservoir_size < 1:
            raise ServiceError("reservoir_size must be at least 1")
        # Short critical sections over counters; no catalog access.
        self._lock = threading.Lock()  # repro-lint: disable=AL001
        self._reservoir: Deque[float] = deque(maxlen=reservoir_size)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def record(self, value: float) -> None:
        """Record one observation (seconds, but any unit works)."""
        with self._lock:
            self._reservoir.append(float(value))
            self._count += 1
            self._total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    def snapshot(self) -> HistogramSnapshot:
        """Immutable summary; percentiles over the recent reservoir."""
        with self._lock:
            if not self._count:
                return _EMPTY_SNAPSHOT
            sample = sorted(self._reservoir)
            count, total = self._count, self._total
            minimum, maximum = self._min, self._max
        return HistogramSnapshot(
            count=count,
            total=total,
            minimum=minimum,
            maximum=maximum,
            p50=percentile(sample, 0.50),
            p95=percentile(sample, 0.95),
            p99=percentile(sample, 0.99),
        )


class MetricsRegistry:
    """Named counters and latency histograms behind one lock.

    Counters and histograms are created on first use, so callers never
    pre-register names; :meth:`snapshot` returns a plain nested dict
    ready for JSON export or the ``repro serve-stats`` CLI.
    """

    def __init__(self, reservoir_size: int = 2048) -> None:
        # Short critical sections over counters; no catalog access.
        self._lock = threading.Lock()  # repro-lint: disable=AL001
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._kinds: Dict[str, str] = {}
        self._reservoir_size = reservoir_size

    def _claim(self, name: str, kind: str) -> None:
        """Reserve ``name`` for one metric kind (caller holds the lock).

        A name used as both, say, a counter and a gauge would render as
        two exposition families with the same name and conflicting
        types — exactly the scrape-breaking shape
        :func:`repro.obs.prometheus.validate_exposition` rejects — so
        the registry refuses it at record time, where the stack trace
        still points at the offender.
        """
        held = self._kinds.get(name)
        if held is None:
            self._kinds[name] = kind
        elif held != kind:
            raise ServiceError(
                f"metric {name!r} is already registered as a {held}; "
                f"cannot reuse it as a {kind}"
            )

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to a counter; returns the new value."""
        with self._lock:
            self._claim(name, "counter")
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def counter(self, name: str) -> int:
        """Current counter value (0 for a never-incremented name)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge — a value that can go up *or* down (phase of a
        background migration, in-flight count).  Unlike counters, a
        gauge reports its last-set value, not a running total."""
        with self._lock:
            self._claim(name, "gauge")
            self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current gauge value (``default`` for a never-set name)."""
        with self._lock:
            return self._gauges.get(name, default)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a named histogram."""
        self.histogram(name).record(value)

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram, created on first use."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                self._claim(name, "histogram")
                histogram = LatencyHistogram(self._reservoir_size)
                self._histograms[name] = histogram
            return histogram

    def snapshot(self) -> Dict[str, Dict[str, MetricValue]]:
        """``{"counters": {...}, "histograms": {name: {...}}}``.

        A ``"gauges"`` table is included only when at least one gauge
        has been set, so snapshots from gauge-free services (the common
        case) keep their historical shape.  Every inner dict is
        key-sorted so serialized snapshots are byte-for-byte
        deterministic regardless of creation order.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        snapshot: Dict[str, Dict[str, MetricValue]] = {
            "counters": {name: counters[name] for name in sorted(counters)},
            "histograms": {
                name: histograms[name].snapshot().as_dict()
                for name in sorted(histograms)
            },
        }
        if gauges:
            snapshot["gauges"] = {name: gauges[name] for name in sorted(gauges)}
        return snapshot
