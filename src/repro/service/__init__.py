"""repro.service — the concurrent query-serving front end of the MMDBMS.

The library beneath this package answers one color range query four
different ways (scalar RBM, BWM, the vectorized batch kernel, and the
spatial-index builders), all returning the same result set.  This
package is the layer that *serves* them: a cost-based planner picks the
strategy per query from live selectivity statistics, a bounded thread
pool executes plans concurrently with admission control and deadlines,
a normalized-query LRU+TTL cache short-circuits repeat traffic (wired
into the dependency-aware ``engine.invalidate`` channel so it can never
go stale), and a lock-safe metrics registry reports what the service is
doing.

Quick start::

    from repro.service import QueryService

    service = QueryService(db, max_workers=4, prebuild_indexes=True)
    outcome = service.execute("at least 25% blue")
    print(outcome.plans[0].describe(), outcome.result.sorted_ids())
    print(service.metrics_snapshot())
    service.shutdown()
"""

from repro.service.cache import CacheKey, ResultCache, cache_key
from repro.service.executor import (
    AnalyzedQuery,
    QueryService,
    ReadWriteLock,
    ServiceResult,
)
from repro.service.metrics import (
    HistogramSnapshot,
    LatencyHistogram,
    MetricsRegistry,
    percentile,
)
from repro.service.planner import (
    CatalogProfile,
    CostBasedPlanner,
    ExplainedPlan,
    PlanActuals,
    PlanAlternative,
    Strategy,
)

__all__ = [
    "AnalyzedQuery",
    "CacheKey",
    "CatalogProfile",
    "CostBasedPlanner",
    "ExplainedPlan",
    "HistogramSnapshot",
    "LatencyHistogram",
    "MetricsRegistry",
    "PlanActuals",
    "PlanAlternative",
    "QueryService",
    "ReadWriteLock",
    "ResultCache",
    "ServiceResult",
    "Strategy",
    "cache_key",
    "percentile",
]
