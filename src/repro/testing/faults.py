"""Fault injection for the persistence and migration layers.

Crash safety cannot be argued from code inspection alone; it has to be
demonstrated by actually crashing the save protocol at every boundary
and checking what a subsequent load makes of the wreckage.  This module
provides the seam: :func:`repro.db.persistence.save_database` and the
online migrator (:mod:`repro.db.migration`) route every durable side
effect — file writes, journal appends, fsyncs, and commit renames —
through a *fault plan*, and test plans turn chosen boundaries into
simulated crashes or injected I/O errors.

Three failure modes cover the interesting crash shapes:

``before``
    The process dies before the write starts — the file is absent.
``torn``
    The process dies mid-write — the file holds a prefix of the payload
    (the classic torn/truncated write).
``after``
    The process dies after the payload is durable but before the next
    protocol step — the file is complete, later files are absent.

A simulated crash raises :class:`InjectedCrash`, which deliberately
derives from :class:`BaseException`-adjacent ``Exception`` but *not*
from ``repro.errors.ReproError``: production code must never swallow it.

Crashes model power loss; :class:`ErrorPlan` models the *other* way
storage fails — the write call returns an error (``ENOSPC``, ``EIO``)
and the process lives on.  Unlike a crash, an injected ``OSError`` is a
normal error the protocol must handle: surface a typed
:class:`~repro.errors.PersistenceError` and leave the previous on-disk
state untouched.

Typical kill-point sweep::

    counter = CountingFaults()
    save_database(db, root, faults=counter)        # learn the boundaries
    for index in range(1, counter.writes + 1):
        for mode in ("before", "torn", "after"):
            plan = FaultPlan(fail_at=index, mode=mode)
            with pytest.raises(InjectedCrash):
                save_database(db, root, faults=plan)
            # ... assert load/salvage behavior ...
"""

from __future__ import annotations

import errno as _errno
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

#: Supported failure modes for :class:`FaultPlan`.
FAIL_MODES = ("before", "torn", "after")

#: Boundary kinds a plan can observe or fail.
BOUNDARY_KINDS = ("write", "append", "fsync", "rename")


class InjectedCrash(Exception):
    """A simulated process crash at an injected failure point."""


@dataclass(frozen=True)
class WriteEvent:
    """One durable side effect observed by a fault plan."""

    index: int
    kind: str  # one of BOUNDARY_KINDS
    path: Path
    size: int


class NoFaults:
    """The production plan: every side effect succeeds.

    ``fsync`` is deliberately a real fsync: the migration journal's
    durability claims rest on it.  Plans that cannot fsync a path (e.g.
    a directory on a filesystem that refuses it) degrade silently, which
    matches what production code does with best-effort directory syncs.
    """

    def write_bytes(self, path: Path, payload: bytes) -> None:
        """Write ``payload`` to ``path`` (one durable boundary)."""
        path.write_bytes(payload)

    def append_bytes(self, path: Path, payload: bytes) -> None:
        """Append ``payload`` to ``path`` (one durable boundary)."""
        with open(path, "ab") as handle:
            handle.write(payload)

    def fsync(self, path: Path) -> None:
        """Flush ``path`` (file or directory) to stable storage."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def rename(self, source: Path, target: Path) -> None:
        """Rename ``source`` over ``target`` (one durable boundary)."""
        source.replace(target)


class CountingFaults(NoFaults):
    """Succeeds like :class:`NoFaults` but records every boundary.

    Run a save (or migration) through it once to learn how many kill
    points the protocol has, then sweep ``FaultPlan(fail_at=1..writes)``.
    """

    def __init__(self) -> None:
        self.events: List[WriteEvent] = []

    @property
    def writes(self) -> int:
        """Total durable boundaries the last run crossed."""
        return len(self.events)

    def _record(self, kind: str, path: Path, size: int) -> None:
        self.events.append(WriteEvent(len(self.events) + 1, kind, Path(path), size))

    def write_bytes(self, path: Path, payload: bytes) -> None:
        self._record("write", path, len(payload))
        super().write_bytes(path, payload)

    def append_bytes(self, path: Path, payload: bytes) -> None:
        self._record("append", path, len(payload))
        super().append_bytes(path, payload)

    def fsync(self, path: Path) -> None:
        self._record("fsync", path, 0)
        super().fsync(path)

    def rename(self, source: Path, target: Path) -> None:
        self._record("rename", target, 0)
        super().rename(source, target)


@dataclass
class FaultPlan:
    """Crash at the ``fail_at``-th durable boundary in the given mode.

    ``mode`` is one of :data:`FAIL_MODES`.  For renames and fsyncs,
    ``torn`` is meaningless (renames are atomic; fsync writes nothing),
    so it degrades to ``before`` — the crash happens and the side effect
    never lands.  For appends, ``torn`` leaves a prefix of the appended
    payload at the end of the file: the torn-journal-tail case.
    """

    fail_at: int
    mode: str = "before"
    torn_fraction: float = 0.5
    _counter: int = field(default=0, repr=False)
    crashed: Optional[WriteEvent] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in FAIL_MODES:
            raise ValueError(f"mode must be one of {FAIL_MODES}, not {self.mode!r}")
        if self.fail_at < 1:
            raise ValueError("fail_at counts boundaries from 1")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in [0, 1)")

    def _next(self, kind: str, path: Path, size: int) -> bool:
        """Advance the boundary counter; True when this one crashes."""
        self._counter += 1
        if self._counter == self.fail_at:
            self.crashed = WriteEvent(self._counter, kind, Path(path), size)
            return True
        return False

    def write_bytes(self, path: Path, payload: bytes) -> None:
        if self._next("write", path, len(payload)):
            if self.mode == "torn":
                path.write_bytes(payload[: int(len(payload) * self.torn_fraction)])
            elif self.mode == "after":
                path.write_bytes(payload)
            raise InjectedCrash(f"injected crash ({self.mode}) writing {path}")
        path.write_bytes(payload)

    def append_bytes(self, path: Path, payload: bytes) -> None:
        if self._next("append", path, len(payload)):
            kept = b""
            if self.mode == "torn":
                kept = payload[: int(len(payload) * self.torn_fraction)]
            elif self.mode == "after":
                kept = payload
            if kept:
                with open(path, "ab") as handle:
                    handle.write(kept)
            raise InjectedCrash(
                f"injected crash ({self.mode}) appending to {path}"
            )
        with open(path, "ab") as handle:
            handle.write(payload)

    def fsync(self, path: Path) -> None:
        if self._next("fsync", path, 0):
            # "torn" degrades to "before"; either way the fsync itself is
            # moot for state (the data is already in the page cache and
            # the harness runs on one machine), the crash is the point.
            raise InjectedCrash(f"injected crash ({self.mode}) fsyncing {path}")
        NoFaults.fsync(self, path)

    def rename(self, source: Path, target: Path) -> None:
        if self._next("rename", target, 0):
            if self.mode == "after":
                source.replace(target)
            raise InjectedCrash(f"injected crash ({self.mode}) renaming to {target}")
        source.replace(target)


_ERRNO_NAMES = {"ENOSPC": _errno.ENOSPC, "EIO": _errno.EIO}


@dataclass
class ErrorPlan:
    """Inject an ``OSError`` at the ``fail_at``-th matching boundary.

    Models a live process hitting a full disk (``ENOSPC``) or a failing
    device (``EIO``): the call raises, nothing after it happens, and —
    unlike :class:`InjectedCrash` — the protocol is expected to *handle*
    it: clean up scratch state, leave the previous committed state
    loadable, and surface :class:`~repro.errors.PersistenceError`.

    ``ops`` restricts which boundary kinds count toward ``fail_at``
    (default: all of them), so a sweep can target "the third fsync"
    independently of how many writes precede it.
    """

    fail_at: int
    error: str = "ENOSPC"
    ops: Tuple[str, ...] = BOUNDARY_KINDS
    _counter: int = field(default=0, repr=False)
    raised: Optional[WriteEvent] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.fail_at < 1:
            raise ValueError("fail_at counts boundaries from 1")
        if self.error not in _ERRNO_NAMES:
            raise ValueError(
                f"error must be one of {sorted(_ERRNO_NAMES)}, not {self.error!r}"
            )
        unknown = set(self.ops) - set(BOUNDARY_KINDS)
        if unknown:
            raise ValueError(f"unknown boundary kinds {sorted(unknown)}")

    def _maybe_raise(self, kind: str, path: Path, size: int) -> None:
        if kind not in self.ops:
            return
        self._counter += 1
        if self._counter == self.fail_at:
            self.raised = WriteEvent(self._counter, kind, Path(path), size)
            code = _ERRNO_NAMES[self.error]
            raise OSError(
                code, f"injected {self.error} on {kind} of {path}", str(path)
            )

    def write_bytes(self, path: Path, payload: bytes) -> None:
        self._maybe_raise("write", path, len(payload))
        path.write_bytes(payload)

    def append_bytes(self, path: Path, payload: bytes) -> None:
        self._maybe_raise("append", path, len(payload))
        with open(path, "ab") as handle:
            handle.write(payload)

    def fsync(self, path: Path) -> None:
        self._maybe_raise("fsync", path, 0)
        NoFaults.fsync(self, path)

    def rename(self, source: Path, target: Path) -> None:
        self._maybe_raise("rename", target, 0)
        source.replace(target)
