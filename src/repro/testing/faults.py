"""Fault injection for the persistence layer.

Crash safety cannot be argued from code inspection alone; it has to be
demonstrated by actually crashing the save protocol at every boundary
and checking what a subsequent load makes of the wreckage.  This module
provides the seam: :func:`repro.db.persistence.save_database` routes
every durable side effect (file writes and the commit renames) through a
*fault plan*, and test plans turn chosen boundaries into simulated
crashes.

Three failure modes cover the interesting crash shapes:

``before``
    The process dies before the write starts — the file is absent.
``torn``
    The process dies mid-write — the file holds a prefix of the payload
    (the classic torn/truncated write).
``after``
    The process dies after the payload is durable but before the next
    protocol step — the file is complete, later files are absent.

A simulated crash raises :class:`InjectedCrash`, which deliberately
derives from :class:`BaseException`-adjacent ``Exception`` but *not*
from ``repro.errors.ReproError``: production code must never swallow it.

Typical kill-point sweep::

    counter = CountingFaults()
    save_database(db, root, faults=counter)        # learn the boundaries
    for index in range(1, counter.writes + 1):
        for mode in ("before", "torn", "after"):
            plan = FaultPlan(fail_at=index, mode=mode)
            with pytest.raises(InjectedCrash):
                save_database(db, root, faults=plan)
            # ... assert load/salvage behavior ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

#: Supported failure modes for :class:`FaultPlan`.
FAIL_MODES = ("before", "torn", "after")


class InjectedCrash(Exception):
    """A simulated process crash at an injected failure point."""


@dataclass(frozen=True)
class WriteEvent:
    """One durable side effect observed by a fault plan."""

    index: int
    kind: str  # "write" or "rename"
    path: Path
    size: int


class NoFaults:
    """The production plan: every side effect succeeds."""

    def write_bytes(self, path: Path, payload: bytes) -> None:
        """Write ``payload`` to ``path`` (one durable boundary)."""
        path.write_bytes(payload)

    def rename(self, source: Path, target: Path) -> None:
        """Rename ``source`` over ``target`` (one durable boundary)."""
        source.replace(target)


class CountingFaults(NoFaults):
    """Succeeds like :class:`NoFaults` but records every boundary.

    Run a save through it once to learn how many kill points the
    protocol has, then sweep ``FaultPlan(fail_at=1..writes)``.
    """

    def __init__(self) -> None:
        self.events: List[WriteEvent] = []

    @property
    def writes(self) -> int:
        """Total durable boundaries the last save crossed."""
        return len(self.events)

    def _record(self, kind: str, path: Path, size: int) -> None:
        self.events.append(WriteEvent(len(self.events) + 1, kind, Path(path), size))

    def write_bytes(self, path: Path, payload: bytes) -> None:
        self._record("write", path, len(payload))
        super().write_bytes(path, payload)

    def rename(self, source: Path, target: Path) -> None:
        self._record("rename", target, 0)
        super().rename(source, target)


@dataclass
class FaultPlan:
    """Crash at the ``fail_at``-th durable boundary in the given mode.

    ``mode`` is one of :data:`FAIL_MODES`.  For renames, ``torn`` is
    meaningless (renames are atomic), so it degrades to ``before`` —
    the crash happens and the rename never lands.
    """

    fail_at: int
    mode: str = "before"
    torn_fraction: float = 0.5
    _counter: int = field(default=0, repr=False)
    crashed: Optional[WriteEvent] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in FAIL_MODES:
            raise ValueError(f"mode must be one of {FAIL_MODES}, not {self.mode!r}")
        if self.fail_at < 1:
            raise ValueError("fail_at counts boundaries from 1")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in [0, 1)")

    def _next(self, kind: str, path: Path, size: int) -> bool:
        """Advance the boundary counter; True when this one crashes."""
        self._counter += 1
        if self._counter == self.fail_at:
            self.crashed = WriteEvent(self._counter, kind, Path(path), size)
            return True
        return False

    def write_bytes(self, path: Path, payload: bytes) -> None:
        if self._next("write", path, len(payload)):
            if self.mode == "torn":
                path.write_bytes(payload[: int(len(payload) * self.torn_fraction)])
            elif self.mode == "after":
                path.write_bytes(payload)
            raise InjectedCrash(f"injected crash ({self.mode}) writing {path}")
        path.write_bytes(payload)

    def rename(self, source: Path, target: Path) -> None:
        if self._next("rename", target, 0):
            if self.mode == "after":
                source.replace(target)
            raise InjectedCrash(f"injected crash ({self.mode}) renaming to {target}")
        source.replace(target)
