"""Testing support: fault injection and dynamic race detection.

* :mod:`repro.testing.faults` — deterministic write/fsync fault plans
  for crash-safety verification of the persistence layer.
* :mod:`repro.testing.racecheck` — an opt-in Eraser-style lockset race
  detector (with light happens-before tracking for fork/join edges):
  tracked proxies wrap the shared structures, the RW locks report
  acquisitions through monitor hooks, and unsynchronized accesses are
  reported as ``CC004`` findings (``repro race-check``).
"""

from repro.testing.faults import (
    CountingFaults,
    FaultPlan,
    InjectedCrash,
    NoFaults,
    WriteEvent,
)
from repro.testing.racecheck import (
    SCENARIOS,
    Race,
    RaceMonitor,
    TrackedDict,
    TrackedLock,
    instrument_sharded,
    run_race_check,
)

__all__ = [
    "CountingFaults",
    "FaultPlan",
    "InjectedCrash",
    "NoFaults",
    "Race",
    "RaceMonitor",
    "SCENARIOS",
    "TrackedDict",
    "TrackedLock",
    "WriteEvent",
    "instrument_sharded",
    "run_race_check",
]
