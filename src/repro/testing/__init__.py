"""Testing support: fault injection for crash-safety verification."""

from repro.testing.faults import (
    CountingFaults,
    FaultPlan,
    InjectedCrash,
    NoFaults,
    WriteEvent,
)

__all__ = [
    "CountingFaults",
    "FaultPlan",
    "InjectedCrash",
    "NoFaults",
    "WriteEvent",
]
