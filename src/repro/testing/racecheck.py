"""Eraser-style lockset race detection for the concurrent tiers.

The lock-order pass (:mod:`repro.analysis.lockgraph`) proves locks are
*ordered*; this harness checks they are *used*: every shared structure
must only ever be touched while holding the lock that guards it.  It is
the dynamic complement — opt-in instrumentation wraps the repo's locks
and shared structures, records which locks each thread holds at each
access, and runs the classic Eraser lockset algorithm (Savage et al.):
a location's *candidate lockset* starts as "whatever the first sharing
access held" and is intersected at every subsequent access; when it
goes empty while the location is written by multiple threads, no single
lock protected it — a data race regardless of whether this particular
schedule interleaved badly.  That schedule-independence is the point:
a stress test only catches the races it happens to provoke, while the
lockset discipline is violated on *every* run of racy code.

Refinements over plain Eraser:

* The Virgin → Exclusive → Shared → Shared-Modified state machine
  suppresses single-thread initialization noise.
* Light happens-before edges: threads spawned through
  :meth:`RaceMonitor.spawn` / joined through :meth:`RaceMonitor.join`
  transfer exclusive ownership across fork/join (structures built
  before workers start, or read after they are joined, are not shared).
  This is a harness, not a vector-clock TSan: edges other than
  spawn/join (queues, events) are not modeled, and code using them may
  need its accesses genuinely locked to stay quiet — which is the
  repo's discipline anyway.
* Read accesses intersect against *all* held locks; write accesses only
  against write-held ones — reading under the read side of a
  :class:`~repro.service.executor.ReadWriteLock` is synchronized with
  writers, but writing under the read side is not.

Races are reported as ``CC004`` findings (ERROR) through the shared
:class:`~repro.analysis.findings.AnalysisReport` machinery, carrying
the structure, both access kinds, and the source site of the access
that emptied the lockset.  ``repro race-check`` runs the built-in
stress scenarios (metrics registry, event ring, sharded catalog) and
must report zero races; the fixture tests seed one unsynchronized
mutation per tracked structure and assert it is flagged.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.findings import AnalysisReport, Finding, Severity

_THIS_FILE = __file__


def _caller_site() -> str:
    """``path:line`` of the nearest frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != _THIS_FILE:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>:0"


@dataclass
class _HeldLocks:
    """Per-thread multiset of held locks, split by mode."""

    read: Dict[str, int] = field(default_factory=dict)
    write: Dict[str, int] = field(default_factory=dict)

    def acquire(self, lock_id: str, mode: str) -> None:
        table = self.write if mode == "write" else self.read
        table[lock_id] = table.get(lock_id, 0) + 1

    def release(self, lock_id: str, mode: str) -> None:
        table = self.write if mode == "write" else self.read
        count = table.get(lock_id, 0) - 1
        if count > 0:
            table[lock_id] = count
        else:
            table.pop(lock_id, None)

    def write_held(self) -> Set[str]:
        return set(self.write)

    def any_held(self) -> Set[str]:
        return set(self.read) | set(self.write)


@dataclass
class _LocationState:
    """Eraser state for one tracked location."""

    state: str = "virgin"  # exclusive / shared / shared-modified / reported
    owner: int = 0
    last_clock: int = 0
    lockset: Optional[Set[str]] = None


@dataclass(frozen=True)
class Race:
    """One detected lockset violation."""

    structure: str
    operation: str  # "read" or "write"
    thread: str
    first_thread: str
    site: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "structure": self.structure,
            "operation": self.operation,
            "thread": self.thread,
            "first_thread": self.first_thread,
            "site": self.site,
        }


class RaceMonitor:
    """Collects lock and access events; runs the lockset algorithm.

    One monitor per scenario.  All its own state is guarded by a single
    internal mutex — the monitor serializes tracked accesses, which
    perturbs timing but never the lockset verdict (the algorithm is
    schedule-independent by construction).
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._clock = 0
        self._local = threading.local()
        self._names: Dict[int, str] = {}
        self._started: Dict[int, int] = {}
        self._joined: Dict[int, int] = {}
        self._locations: Dict[str, _LocationState] = {}
        self._races: List[Race] = []
        self.accesses = 0

    # -- clocks and threads --------------------------------------------
    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _held(self) -> _HeldLocks:
        held = getattr(self._local, "held", None)
        if held is None:
            held = _HeldLocks()
            self._local.held = held
        return held

    def thread_name(self, ident: Optional[int] = None) -> str:
        ident = threading.get_ident() if ident is None else ident
        return self._names.get(ident, f"thread-{ident}")

    def spawn(
        self,
        target: Callable[..., None],
        *args: Any,
        name: str,
    ) -> threading.Thread:
        """Start ``target`` on a new thread with a fork edge recorded."""
        with self._guard:
            birth = self._tick()

        def runner() -> None:
            ident = threading.get_ident()
            with self._guard:
                self._names[ident] = name
                self._started[ident] = birth
            target(*args)

        thread = threading.Thread(target=runner, name=name, daemon=True)
        thread.start()
        return thread

    def join(self, thread: threading.Thread, timeout: float = 30.0) -> None:
        """Join ``thread`` with the join edge recorded."""
        thread.join(timeout)
        ident = thread.ident
        if ident is not None:
            with self._guard:
                self._joined[ident] = self._tick()

    # -- lock events (called by instrumented locks) ----------------------
    def on_acquire(self, lock_id: str, mode: str) -> None:
        self._held().acquire(lock_id, mode)

    def on_release(self, lock_id: str, mode: str) -> None:
        self._held().release(lock_id, mode)

    # -- accesses ---------------------------------------------------------
    def on_access(
        self,
        structure: str,
        key: Optional[object],
        is_write: bool,
    ) -> None:
        location_id = (
            structure if key is None else f"{structure}[{key!r}]"
        )
        held = self._held()
        relevant = held.write_held() if is_write else held.any_held()
        ident = threading.get_ident()
        site = _caller_site()
        with self._guard:
            self.accesses += 1
            now = self._tick()
            loc = self._locations.get(location_id)
            if loc is None:
                loc = _LocationState()
                self._locations[location_id] = loc
            if loc.state == "reported":
                return
            if loc.state == "virgin":
                loc.state = "exclusive"
                loc.owner = ident
                loc.last_clock = now
                return
            if loc.state == "exclusive":
                if ident == loc.owner or self._ordered(loc, ident):
                    loc.owner = ident
                    loc.last_clock = now
                    return
                # Second thread: the location is genuinely shared now.
                loc.lockset = set(relevant)
                loc.state = "shared-modified" if is_write else "shared"
                loc.last_clock = now
                if is_write and not loc.lockset:
                    self._report(loc, location_id, "write", ident, site)
                return
            assert loc.lockset is not None
            loc.lockset &= relevant
            loc.last_clock = now
            if is_write:
                loc.state = "shared-modified"
            if loc.state == "shared-modified" and not loc.lockset:
                self._report(
                    loc,
                    location_id,
                    "write" if is_write else "read",
                    ident,
                    site,
                )

    def _ordered(self, loc: _LocationState, accessor: int) -> bool:
        """Fork/join happens-before between the owner's accesses and now."""
        started = self._started.get(accessor)
        if started is not None and started > loc.last_clock:
            return True  # accessor was spawned after every prior access
        joined = self._joined.get(loc.owner)
        if joined is not None and joined > loc.last_clock:
            return True  # owner was joined since its last access
        return False

    def _report(
        self,
        loc: _LocationState,
        location_id: str,
        operation: str,
        ident: int,
        site: str,
    ) -> None:
        loc.state = "reported"
        self._races.append(
            Race(
                structure=location_id,
                operation=operation,
                thread=self.thread_name(ident),
                first_thread=self.thread_name(loc.owner),
                site=site,
            )
        )

    # -- results ----------------------------------------------------------
    @property
    def races(self) -> List[Race]:
        with self._guard:
            return list(self._races)

    def extend_report(self, report: AnalysisReport) -> None:
        report.subjects_examined += len(self._locations)
        for race in self.races:
            report.add(
                Finding(
                    code="CC004",
                    severity=Severity.ERROR,
                    location=race.site,
                    message=(
                        f"unsynchronized {race.operation} of "
                        f"{race.structure}: no lock is held in common "
                        f"with the other threads touching it "
                        f"(this access by {race.thread}, first owner "
                        f"{race.first_thread})"
                    ),
                    fix_hint=(
                        "guard every access to the structure with its "
                        "one owning lock (write side for mutations)"
                    ),
                    details=race.to_dict(),
                )
            )


# ----------------------------------------------------------------------
# Instrumentation wrappers
# ----------------------------------------------------------------------
class TrackedLock:
    """Wraps a plain ``Lock``/``RLock``, reporting acquire/release."""

    def __init__(
        self, inner: Any, lock_id: str, monitor: RaceMonitor
    ) -> None:
        self._inner = inner
        self._lock_id = lock_id
        self._monitor = monitor

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self._monitor.on_acquire(self._lock_id, "write")
        return acquired

    def release(self) -> None:
        self._monitor.on_release(self._lock_id, "write")
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class TrackedDict(MutableMapping):
    """A dict proxy reporting per-key reads/writes to the monitor."""

    def __init__(
        self, inner: Dict[Any, Any], name: str, monitor: RaceMonitor
    ) -> None:
        self._inner = inner
        self._name = name
        self._monitor = monitor

    def __getitem__(self, key: Any) -> Any:
        self._monitor.on_access(self._name, key, False)
        return self._inner[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._monitor.on_access(self._name, key, True)
        self._inner[key] = value

    def __delitem__(self, key: Any) -> None:
        self._monitor.on_access(self._name, key, True)
        del self._inner[key]

    def __iter__(self) -> Iterator[Any]:
        self._monitor.on_access(self._name, None, False)
        return iter(dict(self._inner))

    def __len__(self) -> int:
        self._monitor.on_access(self._name, None, False)
        return len(self._inner)

    def __contains__(self, key: Any) -> bool:
        self._monitor.on_access(self._name, key, False)
        return key in self._inner

    def clear(self) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.clear()


class TrackedSet:
    """A set proxy reporting membership reads and mutations."""

    def __init__(
        self, inner: Set[Any], name: str, monitor: RaceMonitor
    ) -> None:
        self._inner = inner
        self._name = name
        self._monitor = monitor

    def add(self, item: Any) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.add(item)

    def discard(self, item: Any) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.discard(item)

    def remove(self, item: Any) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.remove(item)

    def clear(self) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.clear()

    def __contains__(self, item: Any) -> bool:
        self._monitor.on_access(self._name, None, False)
        return item in self._inner

    def __iter__(self) -> Iterator[Any]:
        self._monitor.on_access(self._name, None, False)
        return iter(set(self._inner))

    def __len__(self) -> int:
        self._monitor.on_access(self._name, None, False)
        return len(self._inner)

    def __bool__(self) -> bool:
        self._monitor.on_access(self._name, None, False)
        return bool(self._inner)


class TrackedList:
    """A list proxy (whole-structure grain) for op-table columns."""

    def __init__(
        self, inner: List[Any], name: str, monitor: RaceMonitor
    ) -> None:
        self._inner = inner
        self._name = name
        self._monitor = monitor

    def append(self, item: Any) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.append(item)

    def __getitem__(self, index: Any) -> Any:
        self._monitor.on_access(self._name, None, False)
        return self._inner[index]

    def __setitem__(self, index: Any, value: Any) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner[index] = value

    def __iter__(self) -> Iterator[Any]:
        self._monitor.on_access(self._name, None, False)
        return iter(list(self._inner))

    def __len__(self) -> int:
        self._monitor.on_access(self._name, None, False)
        return len(self._inner)


class TrackedDeque:
    """A deque proxy for the event ring."""

    def __init__(
        self, inner: "deque[Any]", name: str, monitor: RaceMonitor
    ) -> None:
        self._inner = inner
        self._name = name
        self._monitor = monitor

    @property
    def maxlen(self) -> Optional[int]:
        return self._inner.maxlen

    def append(self, item: Any) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.append(item)

    def clear(self) -> None:
        self._monitor.on_access(self._name, None, True)
        self._inner.clear()

    def __iter__(self) -> Iterator[Any]:
        self._monitor.on_access(self._name, None, False)
        return iter(list(self._inner))

    def __len__(self) -> int:
        self._monitor.on_access(self._name, None, False)
        return len(self._inner)


# ----------------------------------------------------------------------
# Instrumentation of the real subsystems
# ----------------------------------------------------------------------
def instrument_rwlock(lock: Any, lock_id: str, monitor: RaceMonitor) -> None:
    """Hook a :class:`ReadWriteLock`'s built-in monitor attributes."""
    lock._monitor = monitor
    lock._monitor_id = lock_id


def instrument_metrics(
    registry: Any, monitor: RaceMonitor, name: str = "MetricsRegistry"
) -> None:
    """Track the metrics registry's lock and its four tables."""
    registry._lock = TrackedLock(registry._lock, f"{name}._lock", monitor)
    for attr in ("_counters", "_gauges", "_histograms", "_kinds"):
        setattr(
            registry,
            attr,
            TrackedDict(getattr(registry, attr), f"{name}.{attr}", monitor),
        )


def instrument_events(
    log: Any, monitor: RaceMonitor, name: str = "EventLog"
) -> None:
    """Track the event log's lock and ring buffer."""
    log._lock = TrackedLock(log._lock, f"{name}._lock", monitor)
    log._ring = TrackedDeque(log._ring, f"{name}._ring", monitor)


def instrument_sharded(catalog: Any, monitor: RaceMonitor) -> None:
    """Track a :class:`ShardedCatalog`'s locks and shared structures.

    Per shard: the RW lock (via the built-in hook), the compactor's
    hotness bookkeeping (``materialized``), the WAL-dedupe set
    (``journaled``), and the catalog dicts of the underlying database.
    Plus the WAL record lock, the metrics registry, and the event ring.
    """
    for shard in catalog._shards:
        index = shard.index
        instrument_rwlock(shard.lock, f"shard[{index}].rwlock", monitor)
        shard.stats_lock = TrackedLock(
            shard.stats_lock, f"shard[{index}].stats_lock", monitor
        )
        shard.materialized = TrackedDict(
            shard.materialized, f"shard[{index}].materialized", monitor
        )
        shard.journaled = TrackedSet(
            shard.journaled, f"shard[{index}].journaled", monitor
        )
        inner_catalog = shard.database.catalog
        for attr in ("_binary", "_edited", "_children"):
            setattr(
                inner_catalog,
                attr,
                TrackedDict(
                    getattr(inner_catalog, attr),
                    f"shard[{index}].catalog.{attr}",
                    monitor,
                ),
            )
    if catalog._wal is not None:
        catalog._wal._lock = TrackedLock(
            catalog._wal._lock, "ShardWAL._lock", monitor
        )
    instrument_metrics(catalog.metrics, monitor, name="shard.metrics")
    instrument_events(catalog.events, monitor, name="shard.events")


# ----------------------------------------------------------------------
# Built-in stress scenarios (the shipped suite must be race-free)
# ----------------------------------------------------------------------
def _scenario_metrics(monitor: RaceMonitor) -> None:
    """Concurrent counters/gauges/histograms on one registry."""
    from repro.service.metrics import MetricsRegistry

    registry = MetricsRegistry()
    instrument_metrics(registry, monitor)

    def worker(worker_id: int) -> None:
        for step in range(25):
            registry.increment("races.counter")
            registry.set_gauge("races.gauge", float(step))
            registry.observe("races.latency", 0.001 * step)

    threads = [
        monitor.spawn(worker, index, name=f"metrics-{index}")
        for index in range(4)
    ]
    for thread in threads:
        monitor.join(thread)
    registry.counter("races.counter")


def _scenario_events(monitor: RaceMonitor) -> None:
    """Concurrent emitters plus a snapshot reader on one event log."""
    from repro.obs.events import EventLog

    log = EventLog(capacity=64)
    instrument_events(log, monitor)

    def emitter(worker_id: int) -> None:
        for step in range(20):
            log.emit("mutation", subsystem="racecheck", step=step)

    def reader() -> None:
        for _ in range(10):
            log.snapshot()

    threads = [
        monitor.spawn(emitter, index, name=f"emit-{index}")
        for index in range(3)
    ]
    threads.append(monitor.spawn(reader, name="snapshot"))
    for thread in threads:
        monitor.join(thread)
    log.stats()


def _scenario_sharded(monitor: RaceMonitor) -> None:
    """Mutators, readers, and a checkpoint against one sharded catalog."""
    import tempfile

    import numpy as np

    from repro.core.query import RangeQuery
    from repro.images.generators import random_palette_image
    from repro.color.names import FLAG_PALETTE
    from repro.shard import ShardedCatalog

    with tempfile.TemporaryDirectory(prefix="racecheck-") as root:
        catalog = ShardedCatalog(2, root=root)
        rng = np.random.default_rng(7)
        seed_images = [
            random_palette_image(rng, 8, 8, FLAG_PALETTE) for _ in range(8)
        ]
        for image in seed_images[:4]:
            catalog.insert_image(image)
        instrument_sharded(catalog, monitor)

        def mutator(offset: int) -> None:
            for image in seed_images[4 + offset::2]:
                catalog.insert_image(image)

        def reader() -> None:
            query = RangeQuery(0, 0.0, 1.0)
            for _ in range(5):
                catalog.range_query(query)

        threads = [
            monitor.spawn(mutator, 0, name="mutate-0"),
            monitor.spawn(mutator, 1, name="mutate-1"),
            monitor.spawn(reader, name="read-0"),
            monitor.spawn(reader, name="read-1"),
        ]
        for thread in threads:
            monitor.join(thread)
        catalog.save()
        catalog.close()


#: Scenario registry for ``repro race-check``.
SCENARIOS: Dict[str, Callable[[RaceMonitor], None]] = {
    "metrics": _scenario_metrics,
    "events": _scenario_events,
    "sharded": _scenario_sharded,
}


def run_race_check(
    scenarios: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Run the named scenarios (default: all) under fresh monitors.

    ``subjects_examined`` counts tracked locations across scenarios; a
    zero-finding report over zero subjects would be vacuous, so the CLI
    surfaces both numbers.
    """
    names = sorted(scenarios) if scenarios is not None else sorted(SCENARIOS)
    report = AnalysisReport(pass_name="racecheck")
    for name in names:
        scenario = SCENARIOS.get(name)
        if scenario is None:
            raise ValueError(
                f"unknown race-check scenario {name!r}; have "
                f"{sorted(SCENARIOS)}"
            )
        monitor = RaceMonitor()
        monitor._names[threading.get_ident()] = "main"
        scenario(monitor)
        monitor.extend_report(report)
    return report
