"""Per-shard health verdicts: SLO thresholds over the fleet's signals.

ROADMAP item 3's load shedder needs a *decision-grade* signal per shard
— not forty raw counters, but "shard 2 is red because its p95 blew the
latency SLO and its WAL is 5k records deep".  This module rolls the
signals the sharded catalog already measures into exactly that:

* :class:`SLOPolicy` — the thresholds.  Each signal has a yellow and a
  red bound; everything is a plain number so a deployment can tune the
  policy without touching code.
* :class:`HealthMonitor` — reads a live catalog (histograms from its
  metrics registry, WAL depth / replay failures / compaction backlog
  from :meth:`~repro.shard.sharded.ShardedCatalog.health_signals`) and
  grades every shard.
* :class:`ShardHealth` / :class:`HealthReport` — the verdicts, with the
  *reasons* (which signal crossed which bound) attached, because a
  verdict you cannot explain is an alert nobody trusts.

Verdicts are the closed ordered set ``green < yellow < red``.  A shard
with no traffic grades on its non-latency signals only — "no data" is
not an incident.  The monitor also writes the verdicts back into the
catalog's registry as ``health.*`` gauges, so the unified exposition
carries them, and emits a ``health.verdict`` event for every non-green
shard so degradation lands in the same timeline as its likely causes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

#: Verdicts in severity order; index = numeric severity (gauge value).
VERDICTS: Tuple[str, ...] = ("green", "yellow", "red")


def verdict_rank(verdict: str) -> int:
    """Numeric severity of a verdict (0 green, 1 yellow, 2 red)."""
    try:
        return VERDICTS.index(verdict)
    except ValueError:
        raise ObservabilityError(f"unknown health verdict {verdict!r}")


@dataclass(frozen=True)
class SLOPolicy:
    """Yellow/red thresholds for every graded per-shard signal.

    Defaults are sized for the repo's test corpora (milliseconds-scale
    queries, hundreds of WAL records); a real deployment tunes them.
    A signal goes yellow at ``>= *_yellow`` and red at ``>= *_red``.
    """

    #: Per-shard query latency (seconds, p95 of ``shard_seconds.sNN``).
    latency_p95_yellow: float = 0.050
    latency_p95_red: float = 0.250
    #: Fraction of shard query wall time spent waiting on the lock.
    lock_wait_fraction_yellow: float = 0.25
    lock_wait_fraction_red: float = 0.60
    #: Cumulative shard busy seconds below which the lock-wait fraction
    #: is not graded.  A ratio needs a meaningful denominator: under
    #: this floor the "wait" is the fixed cost of acquiring an
    #: uncontended lock around microsecond queries, not contention.
    lock_wait_min_busy_seconds: float = 0.010
    #: Unreplayed WAL records addressed to the shard.
    wal_depth_yellow: int = 256
    wal_depth_red: int = 4096
    #: WAL records the replayer had to skip as rejected (ever, per open).
    replay_failures_yellow: int = 1
    replay_failures_red: int = 16
    #: Edited images with no materialized bounds (compactor backlog).
    backlog_yellow: int = 512
    backlog_red: int = 4096
    #: Work units per query (p95 of ``shard_work_units.sNN``).
    work_units_p95_yellow: float = 200_000.0
    work_units_p95_red: float = 2_000_000.0

    def __post_init__(self) -> None:
        for name in (
            "latency_p95", "lock_wait_fraction", "wal_depth",
            "replay_failures", "backlog", "work_units_p95",
        ):
            yellow = getattr(self, f"{name}_yellow")
            red = getattr(self, f"{name}_red")
            if yellow < 0 or red < 0:
                raise ObservabilityError(
                    f"SLO thresholds must be non-negative: {name}"
                )
            if red < yellow:
                raise ObservabilityError(
                    f"SLO red threshold below yellow for {name}: "
                    f"{red} < {yellow}"
                )
        if self.lock_wait_min_busy_seconds < 0:
            raise ObservabilityError(
                "SLO thresholds must be non-negative: "
                "lock_wait_min_busy_seconds"
            )

    def to_dict(self) -> Dict[str, float]:
        return {
            name: getattr(self, name)
            for name in sorted(self.__dataclass_fields__)
        }


@dataclass(frozen=True)
class ShardHealth:
    """One shard's verdict plus the signals and reasons behind it."""

    shard: int
    verdict: str
    reasons: Tuple[str, ...]
    signals: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "verdict": self.verdict,
            "reasons": list(self.reasons),
            "signals": {key: self.signals[key] for key in sorted(self.signals)},
        }


@dataclass(frozen=True)
class HealthReport:
    """The fleet verdict: per-shard healths rolled up to the worst."""

    verdict: str
    shards: Tuple[ShardHealth, ...]
    policy: SLOPolicy

    def shard(self, index: int) -> ShardHealth:
        for health in self.shards:
            if health.shard == index:
                return health
        raise ObservabilityError(f"no health entry for shard {index}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "shards": [health.to_dict() for health in self.shards],
            "policy": self.policy.to_dict(),
        }

    def describe(self) -> str:
        lines = [f"fleet health: {self.verdict}"]
        for health in self.shards:
            reason = "; ".join(health.reasons) if health.reasons else "ok"
            lines.append(
                f"  shard {health.shard}: {health.verdict} ({reason})"
            )
        return "\n".join(lines)


class HealthMonitor:
    """Grades a :class:`~repro.shard.sharded.ShardedCatalog` against SLOs.

    The catalog is duck-typed: anything with ``metrics_snapshot()``,
    ``health_signals()``, a ``metrics`` registry, and an ``events`` log
    can be monitored (which is what will let ROADMAP item 3's service
    processes reuse this unchanged).
    """

    def __init__(self, catalog: Any, policy: Optional[SLOPolicy] = None) -> None:
        self.catalog = catalog
        self.policy = policy if policy is not None else SLOPolicy()

    # ------------------------------------------------------------------
    def report(self, record: bool = True) -> HealthReport:
        """Grade every shard now.

        With ``record`` (the default) the verdicts are also written to
        the catalog registry as ``health.*`` gauges and any non-green
        shard emits a ``health.verdict`` event.
        """
        snapshot = self.catalog.metrics_snapshot()
        histograms: Dict[str, Dict[str, Any]] = snapshot.get("histograms", {})
        shards: List[ShardHealth] = []
        for raw in self.catalog.health_signals():
            shards.append(self._grade_shard(raw, histograms))
        worst = max(
            (verdict_rank(health.verdict) for health in shards), default=0
        )
        report = HealthReport(
            verdict=VERDICTS[worst], shards=tuple(shards), policy=self.policy
        )
        if record:
            self._record(report)
        return report

    # ------------------------------------------------------------------
    def _grade_shard(
        self, raw: Dict[str, Any], histograms: Dict[str, Dict[str, Any]]
    ) -> ShardHealth:
        index = int(raw["shard"])
        key = f"s{index:02d}"
        latency = histograms.get(f"shard_seconds.{key}", {})
        lock_wait = histograms.get(f"shard_lock_wait_seconds.{key}", {})
        work_units = histograms.get(f"shard_work_units.{key}", {})

        latency_p95 = float(latency.get("p95", 0.0))
        latency_count = int(latency.get("count", 0))
        busy = float(latency.get("total", 0.0))
        waiting = float(lock_wait.get("total", 0.0))
        lock_fraction = (waiting / busy) if busy > 0 else 0.0
        wu_p95 = float(work_units.get("p95", 0.0))

        signals: Dict[str, Any] = {
            "latency_p95": latency_p95,
            "latency_count": latency_count,
            "lock_wait_fraction": lock_fraction,
            "work_units_p95": wu_p95,
            "wal_depth": int(raw.get("wal_depth", 0)),
            "replay_failures": int(raw.get("replay_failures", 0)),
            "backlog": int(raw.get("backlog", 0)),
            "queries_served": int(raw.get("queries_served", 0)),
            "last_lsn": raw.get("last_lsn"),
        }

        reasons: List[str] = []
        severity = 0
        pol = self.policy
        # Latency signals only grade once the shard has served queries —
        # an idle shard is unknown, not unhealthy.
        if latency_count > 0:
            severity = max(severity, self._grade(
                "latency_p95", latency_p95,
                pol.latency_p95_yellow, pol.latency_p95_red, reasons,
                unit="s",
            ))
            if busy >= pol.lock_wait_min_busy_seconds:
                severity = max(severity, self._grade(
                    "lock_wait_fraction", lock_fraction,
                    pol.lock_wait_fraction_yellow,
                    pol.lock_wait_fraction_red,
                    reasons,
                ))
            severity = max(severity, self._grade(
                "work_units_p95", wu_p95,
                pol.work_units_p95_yellow, pol.work_units_p95_red, reasons,
            ))
        severity = max(severity, self._grade(
            "wal_depth", signals["wal_depth"],
            pol.wal_depth_yellow, pol.wal_depth_red, reasons,
        ))
        severity = max(severity, self._grade(
            "replay_failures", signals["replay_failures"],
            pol.replay_failures_yellow, pol.replay_failures_red, reasons,
        ))
        severity = max(severity, self._grade(
            "backlog", signals["backlog"],
            pol.backlog_yellow, pol.backlog_red, reasons,
        ))
        return ShardHealth(
            shard=index,
            verdict=VERDICTS[severity],
            reasons=tuple(reasons),
            signals=signals,
        )

    @staticmethod
    def _grade(
        name: str,
        value: float,
        yellow: float,
        red: float,
        reasons: List[str],
        unit: str = "",
    ) -> int:
        if value >= red:
            reasons.append(f"{name}={value:g}{unit} >= red {red:g}{unit}")
            return 2
        if value >= yellow:
            reasons.append(f"{name}={value:g}{unit} >= yellow {yellow:g}{unit}")
            return 1
        return 0

    def _record(self, report: HealthReport) -> None:
        metrics = getattr(self.catalog, "metrics", None)
        if metrics is not None:
            metrics.set_gauge("health.worst", float(verdict_rank(report.verdict)))
            for health in report.shards:
                metrics.set_gauge(
                    f"health.shard.s{health.shard:02d}",
                    float(verdict_rank(health.verdict)),
                )
        events = getattr(self.catalog, "events", None)
        if events is not None:
            for health in report.shards:
                if health.verdict == "green":
                    continue
                events.emit(
                    "health.verdict",
                    subsystem="health",
                    shard=health.shard,
                    verdict=health.verdict,
                    reasons="; ".join(health.reasons),
                )
