"""Ring-buffer slow-query log for the serving layer.

Latency histograms say *that* the tail is bad; the slow-query log says
*which queries* put it there.  The service records every query whose
wall time crosses a configurable threshold into a bounded ring buffer —
memory stays constant under any traffic — together with the executed
plan, cache outcome, and (when tracing was on) the full span tree, so
an operator can go from "p99 regressed" to the offending query shape
without reproducing anything.

Dump it with ``repro serve-stats <dir> --slow`` or programmatically via
:meth:`SlowQueryLog.snapshot`.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ObservabilityError

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SlowQuery:
    """One over-threshold query, frozen at record time."""

    #: Normalized constraint reprs (stable, human-readable).
    constraints: tuple
    #: Wall seconds from worker start to completion.
    seconds: float
    #: Executed strategy values, one per constraint.
    strategies: tuple
    #: Whether the result came from the result cache.
    cache_hit: bool
    #: Unix wall-clock timestamp at record time (for correlation with
    #: external logs; the latency itself is monotonic-clock based).
    recorded_at: float
    #: JSON trace tree of the query, when tracing was enabled.
    trace: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "constraints": list(self.constraints),
            "seconds": self.seconds,
            "strategies": list(self.strategies),
            "cache_hit": self.cache_hit,
            "recorded_at": self.recorded_at,
            "trace": self.trace,
        }

    def describe(self) -> str:
        plan = "+".join(self.strategies) or "?"
        source = "cache" if self.cache_hit else plan
        return (
            f"{self.seconds * 1e3:9.3f}ms  {source:<18} "
            f"{' AND '.join(self.constraints)}"
        )


class SlowQueryLog:
    """Thread-safe bounded ring of the slowest-path queries.

    Parameters
    ----------
    capacity:
        Ring size; the oldest entry falls off when full.
    threshold:
        Seconds a query must take to be recorded.  ``None`` disables
        recording entirely (the hot-path check is one comparison).
    wall_clock:
        Wall-time source for :attr:`SlowQuery.recorded_at` (injectable
        for deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 128,
        threshold: Optional[float] = None,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ObservabilityError("slow-query log capacity must be >= 1")
        if threshold is not None and threshold < 0:
            raise ObservabilityError(
                "slow-query threshold must be non-negative (or None)"
            )
        self.threshold = threshold
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._entries: Deque[SlowQuery] = deque(maxlen=capacity)
        self.recorded = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def should_record(self, seconds: float) -> bool:
        """The hot-path test: enabled and over threshold."""
        return self.threshold is not None and seconds >= self.threshold

    def record(self, entry: SlowQuery) -> None:
        """Append one entry (caller already passed :meth:`should_record`)."""
        with self._lock:
            self._entries.append(entry)
            self.recorded += 1
        logger.warning(
            "slow query (%.3fms >= %.3fms threshold): %s",
            entry.seconds * 1e3,
            (self.threshold or 0.0) * 1e3,
            " AND ".join(entry.constraints),
        )

    def observe(
        self,
        constraints,
        seconds: float,
        strategies,
        cache_hit: bool,
        trace: Optional[Dict[str, Any]] = None,
    ) -> Optional[SlowQuery]:
        """Record a finished query if it crossed the threshold."""
        if not self.should_record(seconds):
            return None
        entry = SlowQuery(
            constraints=tuple(repr(c) for c in constraints),
            seconds=seconds,
            strategies=tuple(strategies),
            cache_hit=cache_hit,
            recorded_at=self._wall_clock(),
            trace=trace,
        )
        self.record(entry)
        return entry

    # ------------------------------------------------------------------
    def snapshot(self) -> List[SlowQuery]:
        """Entries oldest-first (a copy; the ring keeps rolling)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Counters for the metrics snapshot (JSON-safe scalars only)."""
        with self._lock:
            return {
                "recorded": self.recorded,
                "retained": len(self._entries),
                "capacity": self._entries.maxlen,
                "threshold_seconds": (
                    self.threshold if self.threshold is not None else -1.0
                ),
            }

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> str:
        """Human-readable dump, slowest-last (chronological)."""
        entries = self.snapshot()
        if not entries:
            return "slow-query log: empty"
        lines = [
            f"slow-query log: {len(entries)} retained "
            f"(threshold {self.threshold}s, {self.recorded} recorded)"
        ]
        lines.extend(f"  {entry.describe()}" for entry in entries)
        return "\n".join(lines)
