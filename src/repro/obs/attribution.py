"""Prune attribution: *why* each candidate survived or died for a query.

The paper's Table 1 rules exist to prune: an edited image whose
``[HB_min, HB_max]`` interval misses the query range is excluded without
instantiation, and BWM beats RBM exactly because most rules only *widen*
percentage bounds, so whole clusters skip their walks.  Aggregate
counters show how much pruning happened; this module shows **why it did
or did not**, per image:

* every **binary** candidate resolves *exactly* — its histogram either
  satisfies the range or it does not (outcome :attr:`PruneOutcome.EXACT`);
* every **edited** candidate is either **pruned** (interval misses the
  range — the win the paper is after) or **must-check** (interval
  overlaps, so the conservative semantics admit it);
* for each must-check image, a per-operation replay
  (:meth:`repro.core.bounds.BoundsEngine.walk_states`) identifies the
  rule kinds applied and **which operation last widened the interval
  past the query range** — the operation to blame when a query that
  "should" prune cannot.

Outcomes over one query always partition the candidate set: the
per-outcome counts sum exactly to the number of images evaluated
(asserted in the end-to-end tests), so attribution reports are safe to
difference across queries and to accumulate into running counters
(:meth:`AttributionReport.record_metrics`).
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.bounds import BoundsEngine
from repro.core.query import CatalogView, RangeQuery

logger = logging.getLogger(__name__)


class PruneOutcome(enum.Enum):
    """How one candidate image was resolved for one range query."""

    #: Edited image whose bounds interval missed the query range — it
    #: was excluded without instantiation (the paper's §3.2 win).
    PRUNED = "pruned"
    #: Edited image whose interval overlaps the range — the conservative
    #: semantics must admit it (a potential false positive).
    MUST_CHECK = "must-check"
    #: Binary image — its exact histogram decides with no uncertainty.
    EXACT = "exact"


@dataclass(frozen=True)
class OpAttribution:
    """One operation's effect on the queried bin during the replay."""

    #: Position in the edit sequence (0-based).
    index: int
    #: Operation class name (``Define``, ``Combine``, ``Modify``,
    #: ``Mutate``, ``Merge``).
    kind: str
    #: Fraction interval for the queried bin *after* this operation.
    fraction_lo: float
    fraction_hi: float
    #: Whether the interval overlaps the query range after this op.
    overlaps: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "fraction_lo": self.fraction_lo,
            "fraction_hi": self.fraction_hi,
            "overlaps": self.overlaps,
        }


@dataclass(frozen=True)
class ImageAttribution:
    """The resolved outcome of one candidate image for one query."""

    image_id: str
    outcome: PruneOutcome
    #: Whether the image landed in the (conservative) result set.
    matched: bool
    #: Final fraction interval for the queried bin (lo == hi for EXACT).
    fraction_lo: float
    fraction_hi: float
    #: Operation class names applied, in sequence order (empty for binary).
    rule_kinds: Tuple[str, ...] = ()
    #: The last operation whose application flipped the interval from
    #: missing the query range to overlapping it, or ``None`` when the
    #: base interval already overlapped (blame the base, not a rule) or
    #: the image was pruned / is binary.
    widening_op: Optional[OpAttribution] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "image_id": self.image_id,
            "outcome": self.outcome.value,
            "matched": self.matched,
            "fraction_lo": self.fraction_lo,
            "fraction_hi": self.fraction_hi,
            "rule_kinds": list(self.rule_kinds),
            "widening_op": (
                self.widening_op.to_dict() if self.widening_op else None
            ),
        }


@dataclass
class AttributionReport:
    """Per-image outcomes for one query, plus the derived aggregates."""

    query: RangeQuery
    entries: List[ImageAttribution] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def candidates(self) -> int:
        """Images evaluated (binary + edited); the outcomes partition it."""
        return len(self.entries)

    def outcome_counts(self) -> Dict[str, int]:
        """``{outcome value: count}``; values sum to :attr:`candidates`."""
        counts = {outcome.value: 0 for outcome in PruneOutcome}
        for entry in self.entries:
            counts[entry.outcome.value] += 1
        return counts

    def widening_rule_counts(self) -> Dict[str, int]:
        """How often each rule kind was the one that defeated pruning."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            if entry.widening_op is not None:
                kind = entry.widening_op.kind
                counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def pruned_ids(self) -> List[str]:
        """Ids excluded by bounds alone, sorted."""
        return sorted(
            e.image_id for e in self.entries if e.outcome is PruneOutcome.PRUNED
        )

    def matched_count(self) -> int:
        """Images admitted to the (conservative) result set."""
        return sum(1 for e in self.entries if e.matched)

    # ------------------------------------------------------------------
    def record_metrics(self, metrics) -> None:
        """Fold this report into running counters on a MetricsRegistry.

        Counter names: ``prune.pruned`` / ``prune.must_check`` /
        ``prune.exact`` plus ``prune.widened_by.<RuleKind>`` — the
        Prometheus renderer turns these into labeled series.
        """
        for outcome_value, count in self.outcome_counts().items():
            if count:
                name = outcome_value.replace("-", "_")
                metrics.increment(f"prune.{name}", count)
        for kind, count in self.widening_rule_counts().items():
            metrics.increment(f"prune.widened_by.{kind}", count)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": {
                "bin_index": self.query.bin_index,
                "pct_min": self.query.pct_min,
                "pct_max": self.query.pct_max,
            },
            "candidates": self.candidates,
            "outcomes": self.outcome_counts(),
            "widened_by": self.widening_rule_counts(),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def describe(self) -> str:
        """Compact human-readable summary (one line per aggregate)."""
        counts = self.outcome_counts()
        lines = [
            f"prune attribution for {self.query!r}: "
            f"{self.candidates} candidates",
            f"  exact {counts['exact']}  pruned {counts['pruned']}  "
            f"must-check {counts['must-check']}  "
            f"(matched {self.matched_count()})",
        ]
        widened = self.widening_rule_counts()
        if widened:
            blame = ", ".join(f"{kind}: {n}" for kind, n in widened.items())
            lines.append(f"  pruning defeated by: {blame}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def attribute_image(
    engine: BoundsEngine, image_id: str, query: RangeQuery
) -> ImageAttribution:
    """Attribute one *edited* image's outcome via a per-op replay."""
    sequence, states = engine.walk_states(image_id)
    bin_index = query.bin_index
    ops: List[OpAttribution] = []
    overlapped = _overlaps(states[0], bin_index, query)
    widening: Optional[OpAttribution] = None
    for index, op in enumerate(sequence.operations):
        state = states[index + 1]
        lo, hi = _fractions(state, bin_index)
        overlaps_now = _overlaps(state, bin_index, query)
        record = OpAttribution(
            index=index,
            kind=type(op).__name__,
            fraction_lo=lo,
            fraction_hi=hi,
            overlaps=overlaps_now,
        )
        ops.append(record)
        if overlaps_now and not overlapped:
            widening = record
        overlapped = overlaps_now
    final_lo, final_hi = _fractions(states[-1], bin_index)
    outcome = PruneOutcome.MUST_CHECK if overlapped else PruneOutcome.PRUNED
    return ImageAttribution(
        image_id=image_id,
        outcome=outcome,
        matched=overlapped,
        fraction_lo=final_lo,
        fraction_hi=final_hi,
        rule_kinds=tuple(record.kind for record in ops),
        widening_op=widening if overlapped else None,
    )


def attribute_query(
    view: CatalogView, engine: BoundsEngine, query: RangeQuery
) -> AttributionReport:
    """Attribute every candidate image of one range query.

    ``view`` is any :class:`~repro.core.query.CatalogView` (the MMDBMS
    catalog); binary candidates resolve exactly against their stored
    histograms, edited candidates replay their sequences through
    :func:`attribute_image`.  The entries cover the *whole* candidate
    population — whatever strategy actually executed the query — so the
    outcome counts always sum to the number of images evaluated.
    """
    report = AttributionReport(query=query)
    for image_id in view.binary_ids():
        histogram = view.histogram_of(image_id)
        fraction = histogram.fraction(query.bin_index)
        report.entries.append(
            ImageAttribution(
                image_id=image_id,
                outcome=PruneOutcome.EXACT,
                matched=query.pct_min <= fraction <= query.pct_max,
                fraction_lo=fraction,
                fraction_hi=fraction,
            )
        )
    for image_id in view.edited_ids():
        report.entries.append(attribute_image(engine, image_id, query))
    logger.debug(
        "attributed %d candidates for %r: %s",
        report.candidates,
        query,
        report.outcome_counts(),
    )
    return report


def _fractions(state, bin_index: int) -> Tuple[float, float]:
    lo, hi, height, width = state
    total = float(height * width)
    return (int(lo[bin_index]) / total, int(hi[bin_index]) / total)


def _overlaps(state, bin_index: int, query: RangeQuery) -> bool:
    lo, hi = _fractions(state, bin_index)
    return lo <= query.pct_max and hi >= query.pct_min
