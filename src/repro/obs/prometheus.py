"""Prometheus text-exposition rendering of the service's metrics.

Takes the nested snapshot dict produced by
:meth:`repro.service.QueryService.metrics_snapshot` — registry counters,
latency histograms, result-cache / bounds-cache counters, service
gauges, plus the trace-derived and prune-attribution counters the
observability layer feeds in — and renders the Prometheus text
exposition format (version 0.0.4) that a scraper or ``promtool check
metrics`` accepts:

* plain counters → ``<prefix>_<name>_total`` counter series;
* structured counters (``plans.<strategy>``, ``prune.<outcome>``,
  ``prune.widened_by.<rule>``, ``spans.<name>``) → one labeled series
  per family instead of a name explosion;
* latency histograms → Prometheus *summary* families with ``quantile``
  labels plus ``_sum`` / ``_count``;
* cache / service sub-dicts → gauges.

:func:`validate_exposition` is a promtool-style line checker used by the
CI job (and usable in production smoke tests) so a rendering bug cannot
silently break the scrape endpoint.

:func:`merge_snapshots` folds several registries' snapshots (service,
sharded catalog, migration) into one dict so the whole fleet scrapes
from a single unified exposition instead of per-subsystem fragments.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import ObservabilityError

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Counter families rendered with a label instead of per-name series:
#: prefix in the registry -> (family name, label key).
_LABELED_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("plans.", "plans_total", "strategy"),
    ("prune.widened_by.", "prune_widened_by_total", "rule"),
    ("prune.", "prune_outcomes_total", "outcome"),
    ("spans.", "spans_total", "span"),
    ("migration.", "migration_events_total", "event"),
    ("shard.", "shard_events_total", "event"),
    ("wal.", "wal_events_total", "event"),
    ("compaction.", "compaction_events_total", "event"),
)


def _sanitize(name: str) -> str:
    """A legal Prometheus metric-name fragment from a registry name."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    if not _NAME_OK.match(cleaned):
        raise ObservabilityError(f"cannot sanitize metric name {name!r}")
    return cleaned


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text-exposition rules.

    The format requires ``\\`` → ``\\\\``, ``"`` → ``\\"`` and newline →
    ``\\n`` inside quoted label values; anything else passes through.
    Order matters: backslashes first, or the escapes themselves get
    re-escaped.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


class _Renderer:
    def __init__(self, prefix: str) -> None:
        if not _NAME_OK.match(prefix):
            raise ObservabilityError(f"invalid metric prefix {prefix!r}")
        self.prefix = prefix
        self.lines: List[str] = []
        # family name -> declared kind; repeated same-kind declarations
        # are deduplicated (several subsystems legitimately contribute
        # samples to one family), conflicting kinds are a rendering bug.
        self._declared: Dict[str, str] = {}

    def family(self, name: str, kind: str, help_text: str) -> str:
        full = f"{self.prefix}_{name}"
        declared = self._declared.get(full)
        if declared is not None:
            if declared != kind:
                raise ObservabilityError(
                    f"metric family {full} declared as both "
                    f"{declared} and {kind}"
                )
            return full  # already declared: append samples, no re-TYPE
        self._declared[full] = kind
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {kind}")
        return full

    def sample(self, name: str, value: Any, labels: Mapping[str, str] = ()) -> None:
        label_text = ""
        if labels:
            inner = ",".join(
                f'{key}="{_escape_label_value(str(val))}"'
                for key, val in sorted(dict(labels).items())
            )
            label_text = "{" + inner + "}"
        self.lines.append(f"{name}{label_text} {_format_value(value)}")


def render_prometheus(snapshot: Dict[str, Any], prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    ``snapshot`` is the dict shape of ``QueryService.metrics_snapshot``
    (``counters`` / ``histograms`` required, the cache and service
    sub-dicts optional), so the renderer also works over a bare
    :meth:`repro.service.MetricsRegistry.snapshot`.
    """
    out = _Renderer(prefix)

    # -- counters ------------------------------------------------------
    counters: Dict[str, Any] = dict(snapshot.get("counters", {}))
    labeled: Dict[str, List[Tuple[str, str, Any]]] = {}
    plain: Dict[str, Any] = {}
    for name in sorted(counters):
        for registry_prefix, family, label_key in _LABELED_FAMILIES:
            if name.startswith(registry_prefix):
                label_value = name[len(registry_prefix):]
                labeled.setdefault(family, []).append(
                    (label_key, label_value, counters[name])
                )
                break
        else:
            plain[name] = counters[name]

    for name in sorted(plain):
        suffix = _sanitize(name)
        if not suffix.endswith("_total"):
            suffix += "_total"
        full = out.family(suffix, "counter", f"registry counter {name}")
        out.sample(full, plain[name])
    for family in sorted(labeled):
        full = out.family(family, "counter", f"labeled counter family {family}")
        for label_key, label_value, value in labeled[family]:
            out.sample(full, value, {label_key: label_value})

    # -- histograms as summaries --------------------------------------
    histograms: Dict[str, Dict[str, Any]] = snapshot.get("histograms", {})
    for name in sorted(histograms):
        data = histograms[name]
        full = out.family(
            _sanitize(name), "summary", f"latency summary {name} (seconds)"
        )
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            out.sample(full, data.get(key, 0.0), {"quantile": quantile})
        out.sample(f"{full}_sum", data.get("total", 0.0))
        out.sample(f"{full}_count", data.get("count", 0))

    # -- registry gauges ----------------------------------------------
    gauges: Dict[str, Any] = dict(snapshot.get("gauges", {}))
    for name in sorted(gauges):
        full = out.family(_sanitize(name), "gauge", f"registry gauge {name}")
        out.sample(full, gauges[name])

    # -- nested gauge groups (caches, service state) ------------------
    for group in (
        "result_cache", "bounds_cache", "service", "slow_queries", "events"
    ):
        values = snapshot.get(group)
        if not isinstance(values, Mapping):
            continue
        for key in sorted(values):
            value = values[key]
            if not isinstance(value, (int, float, bool)):
                continue
            full = out.family(
                _sanitize(f"{group}_{key}"), "gauge", f"{group} {key}"
            )
            out.sample(full, value)

    return "\n".join(out.lines) + "\n"


# ----------------------------------------------------------------------
# promtool-style validation
# ----------------------------------------------------------------------
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram|untyped)$"
)
#: Label values may contain any character, with ``\\``, ``\"`` and
#: ``\n`` escaped — mirror that instead of rejecting escapes outright.
_LABEL_VALUE = r'(?:[^"\\\n]|\\\\|\\"|\\n)*'
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"            # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="' + _LABEL_VALUE + r'"'  # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="' + _LABEL_VALUE + r'")*\})?'
    r" (NaN|[+-]Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)"
    r"( [0-9]+)?$"                          # optional timestamp
)


def validate_exposition(text: str) -> List[str]:
    """Check exposition text line by line; returns the problems found.

    Mirrors what ``promtool check metrics`` enforces at the lexical
    level: every line is a valid HELP/TYPE comment or sample, every
    sample's family was TYPE-declared first, and no family is declared
    twice — redeclaring a family with a *different* type (the shape of
    bug a merged multi-subsystem registry can produce) is flagged with
    both names so the offender is findable.  An empty list means the
    text scrapes cleanly.
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            if not _HELP_RE.match(line):
                problems.append(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            if not _TYPE_RE.match(line):
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            family, kind = line.split()[2:4]
            previous = declared.get(family)
            if previous is not None and previous != kind:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {family} with "
                    f"conflicting types ({previous}, then {kind})"
                )
            elif previous is not None:
                problems.append(f"line {lineno}: duplicate TYPE for {family}")
            declared[family] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment, legal
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        base = re.sub(r"_(sum|count|bucket)$", "", name)
        if name not in declared and base not in declared:
            problems.append(
                f"line {lineno}: sample {name!r} before its TYPE declaration"
            )
    return problems


# ----------------------------------------------------------------------
# snapshot merging (the unified fleet registry)
# ----------------------------------------------------------------------
def merge_snapshots(*snapshots: Mapping[str, Any]) -> Dict[str, Any]:
    """Fold several metrics snapshots into one unified snapshot dict.

    This is how the fleet exposes *one* OpenMetrics endpoint: the
    service registry, the sharded catalog registry, and the migration
    registry each produce a ``metrics_snapshot()``-shaped dict, and the
    merge combines them family by family:

    * **counters** sum — two subsystems bumping ``wal.appends`` describe
      disjoint appends;
    * **gauges** and nested gauge groups last-wins — a gauge is a level,
      and later snapshots are assumed fresher;
    * **histograms** combine exactly for ``count`` / ``total`` / ``min``
      / ``max``; the percentiles take the elementwise max, a documented
      *upper-bound* approximation (raw reservoirs are not exported, and
      for SLO alerting an over-estimate errs on the honest side).

    Key order is sorted at every level, so equal inputs merge to
    byte-equal output — the determinism the snapshot tests pin down.
    """
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Any] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    groups: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = value
        for name, data in snapshot.get("histograms", {}).items():
            held = histograms.get(name)
            if held is None:
                histograms[name] = dict(data)
                continue
            count = held.get("count", 0) + data.get("count", 0)
            total = held.get("total", 0.0) + data.get("total", 0.0)
            merged = {
                "count": count,
                "total": total,
                "mean": (total / count) if count else 0.0,
                "min": min(held.get("min", 0.0), data.get("min", 0.0)),
                "max": max(held.get("max", 0.0), data.get("max", 0.0)),
            }
            for key in ("p50", "p95", "p99"):
                merged[key] = max(held.get(key, 0.0), data.get(key, 0.0))
            histograms[name] = merged
        for group, values in snapshot.items():
            if group in ("counters", "gauges", "histograms"):
                continue
            if not isinstance(values, Mapping):
                continue
            held_group = groups.setdefault(group, {})
            held_group.update(values)
    merged_out: Dict[str, Any] = {
        "counters": {name: counters[name] for name in sorted(counters)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }
    if gauges:
        merged_out["gauges"] = {name: gauges[name] for name in sorted(gauges)}
    for group in sorted(groups):
        merged_out[group] = {key: groups[group][key] for key in sorted(groups[group])}
    return merged_out
