"""repro.obs — observability for the query-serving stack.

The paper's contribution is an argument about *where time goes* (BWM
wins because most Table 1 rules only widen bounds, §4–§5); this package
makes the production stack answer the same question about itself:

* :mod:`repro.obs.trace` — context-local :class:`Tracer` with nestable
  :class:`Span` trees threaded through the full query path
  (``parse → plan → admission → lock-wait → execute → cache-publish``),
  exportable as JSON trace trees or Chrome ``trace_event`` files.  A
  global switch (:func:`set_tracing`) swaps in a no-op tracer so the
  disabled path stays out of the hot loop.
* :mod:`repro.obs.attribution` — per-query prune attribution: every
  candidate image's outcome (``pruned | must-check | exact``), the rule
  kinds applied, and which operation last widened ``[HB_min, HB_max]``
  past the query range.
* :mod:`repro.obs.prometheus` — text-exposition rendering of the
  service metrics snapshot (plus a promtool-style validator and
  :func:`merge_snapshots` for fleet-wide rollups).
* :mod:`repro.obs.slowlog` — threshold-triggered ring-buffer log of
  slow queries with their plans and traces.
* :mod:`repro.obs.events` — the structured wide-event log: one JSONL
  record per mutation, WAL append/replay, checkpoint, compaction, and
  migration batch, ring-buffered in memory and streamed to
  ``events.jsonl`` on disk-backed roots.
* :mod:`repro.obs.health` — per-shard SLO monitors grading latency
  percentiles, lock-wait fractions, WAL depth, replay failures, and
  compactor backlog into green/yellow/red verdicts.
* :mod:`repro.obs.top` — the ``repro top`` dashboard renderer.

Quick start::

    from repro.obs import tracing
    from repro.service import QueryService

    with tracing():
        outcome = service.execute("at least 25% blue")
    print(outcome.trace.to_dict())           # the span tree
    print(service.prometheus_metrics())      # scrapeable exposition
"""

from repro.obs.attribution import (
    AttributionReport,
    ImageAttribution,
    OpAttribution,
    PruneOutcome,
    attribute_image,
    attribute_query,
)
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    EventLog,
    default_event_log,
    read_events_jsonl,
    validate_event_dict,
    write_events_jsonl,
)
from repro.obs.health import (
    HealthMonitor,
    HealthReport,
    ShardHealth,
    SLOPolicy,
)
from repro.obs.prometheus import (
    merge_snapshots,
    render_prometheus,
    validate_exposition,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.top import render_top, top_payload
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    current_span,
    current_trace_id,
    maybe_tracer,
    new_trace_id,
    set_tracing,
    to_chrome_trace,
    tracing,
    tracing_enabled,
)

__all__ = [
    "AttributionReport",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "Event",
    "EventLog",
    "HealthMonitor",
    "HealthReport",
    "ImageAttribution",
    "NULL_SPAN",
    "NULL_TRACER",
    "OpAttribution",
    "PruneOutcome",
    "SLOPolicy",
    "ShardHealth",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "attribute_image",
    "attribute_query",
    "current_span",
    "current_trace_id",
    "default_event_log",
    "maybe_tracer",
    "merge_snapshots",
    "new_trace_id",
    "read_events_jsonl",
    "render_prometheus",
    "render_top",
    "set_tracing",
    "to_chrome_trace",
    "top_payload",
    "tracing",
    "tracing_enabled",
    "validate_event_dict",
    "validate_exposition",
    "write_events_jsonl",
]
