"""``repro top`` — the fleet dashboard, rendered as plain text.

One screen that answers the operator's first four questions in order:
is the fleet healthy (per-shard verdicts with reasons), where is the
load (hottest shards), what was slow recently (the recent-query ring,
with trace ids to pull), and what is the compactor doing (recent
materializations with their LSN/trace lineage).  Everything renders
from a live :class:`~repro.shard.sharded.ShardedCatalog` — which an
on-disk root becomes the moment ``ShardedCatalog.open`` returns — so
the same code path serves both "attach to the running thing" and
"post-mortem a root".

The functions here are pure renderers over ``(catalog, HealthReport)``;
the CLI owns the loop/interval/JSON concerns.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.health import HealthReport

#: Rows shown in the slow-query and compaction panels.
_PANEL_ROWS = 8


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    """Fixed-width columns: headers, a rule, one line per row."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in cells)
    return lines


def _ms(seconds: Any) -> str:
    return f"{float(seconds) * 1e3:.2f}ms"


def top_payload(
    catalog: Any, report: HealthReport, recent: int = _PANEL_ROWS
) -> Dict[str, Any]:
    """The dashboard's data as one JSON-ready dict (``repro top --json``)."""
    status = catalog.status()
    slow = sorted(
        catalog.recent_queries(),
        key=lambda entry: float(entry.get("seconds", 0.0)),
        reverse=True,
    )[:recent]
    compactions = [
        event.to_dict()
        for event in catalog.events.tail(recent, kind="compaction.materialized")
    ]
    return {
        "status": status,
        "health": report.to_dict(),
        "slowest_queries": slow,
        "recent_compactions": compactions,
        "events": catalog.events.stats(),
    }


def render_top(
    catalog: Any,
    report: HealthReport,
    recent: int = _PANEL_ROWS,
    now: Optional[float] = None,
) -> str:
    """Render one dashboard frame as plain text."""
    status = catalog.status()
    stamp = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(now if now is not None else time.time())
    )
    lines: List[str] = [
        f"repro top — {stamp}",
        f"root: {status['root'] or '<ephemeral>'}  "
        f"shards: {status['shard_count']}  images: {status['images']}  "
        f"wal: {status['wal_entries']} record(s)  "
        f"fleet: {report.verdict.upper()}",
        "",
        "shard health",
    ]

    histograms = catalog.metrics_snapshot().get("histograms", {})
    rows = []
    for health in report.shards:
        signals = health.signals
        key = f"s{health.shard:02d}"
        latency = histograms.get(f"shard_seconds.{key}", {})
        rows.append(
            (
                health.shard,
                health.verdict,
                _ms(latency.get("p50", 0.0)),
                _ms(latency.get("p95", 0.0)),
                f"{float(signals.get('lock_wait_fraction', 0.0)) * 100:.1f}%",
                signals.get("wal_depth", 0),
                signals.get("backlog", 0),
                signals.get("replay_failures", 0),
                signals.get("queries_served", 0),
                "; ".join(health.reasons) if health.reasons else "-",
            )
        )
    lines.extend(
        _table(
            ("shard", "verdict", "p50", "p95", "lock%", "wal", "backlog",
             "replays", "queries", "reasons"),
            rows,
        )
    )

    hottest = sorted(
        report.shards,
        key=lambda health: int(health.signals.get("queries_served", 0)),
        reverse=True,
    )
    if hottest and int(hottest[0].signals.get("queries_served", 0)) > 0:
        busiest = ", ".join(
            f"shard {health.shard} ({health.signals.get('queries_served', 0)}q)"
            for health in hottest[:3]
            if int(health.signals.get("queries_served", 0)) > 0
        )
        lines.extend(["", f"hottest: {busiest}"])

    slow = sorted(
        catalog.recent_queries(),
        key=lambda entry: float(entry.get("seconds", 0.0)),
        reverse=True,
    )[:recent]
    lines.extend(["", f"slowest recent queries ({len(slow)})"])
    if slow:
        lines.extend(
            _table(
                ("kind", "seconds", "work_units", "matches", "slowest", "trace"),
                [
                    (
                        entry.get("kind", "?"),
                        _ms(entry.get("seconds", 0.0)),
                        f"{float(entry.get('work_units', 0.0)):.0f}",
                        entry.get("matches", 0),
                        (
                            f"s{entry['slowest_shard']:02d}"
                            if entry.get("slowest_shard") is not None
                            else "-"
                        ),
                        entry.get("trace_id") or "-",
                    )
                    for entry in slow
                ],
            )
        )
    else:
        lines.append("  (no queries recorded yet — run some, or pass --queries N)")

    compactions = catalog.events.tail(recent, kind="compaction.materialized")
    lines.extend(["", f"recent compactions ({len(compactions)})"])
    if compactions:
        lines.extend(
            _table(
                ("image", "shard", "lsn", "saving", "trace"),
                [
                    (
                        event.image_id or "?",
                        event.shard if event.shard is not None else "-",
                        event.lsn if event.lsn is not None else "-",
                        f"{float(event.detail.get('projected_saving', 0.0)):.0f}",
                        event.trace_id or "-",
                    )
                    for event in reversed(compactions)
                ],
            )
        )
    else:
        lines.append("  (none since this root opened)")

    return "\n".join(lines) + "\n"
