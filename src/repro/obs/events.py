"""The structured wide-event log: one JSONL event per state change.

The catalog's subsystems used to narrate themselves through ad-hoc
``logging.warning`` calls — useful to a human tailing stderr, useless to
anything that wants to *join* observations: which compaction preceded
this slow query?  which WAL record did replay reject, and why?  This
module replaces that with wide events in the canonical-schema sense:
one event per meaningful state change (mutation append, replay,
checkpoint, compaction, migration batch, query), each carrying every
identity the emitting subsystem knows — shard index, image id, LSN,
trace id — so questions become filters instead of log archaeology.

Design points:

* **Stable schema.** Every event serializes to the same top-level keys
  (:data:`EVENT_FIELDS`); kind-specific payload lives under ``detail``.
  Each JSONL line carries ``v`` = :data:`EVENT_SCHEMA_VERSION` so future
  readers can dispatch.  Kinds are a closed set (:data:`EVENT_KINDS`) —
  an unknown kind is a programming error, not a new feature.
* **Ring + sink.** Events are ring-buffered in memory (bounded, cheap to
  snapshot for ``repro top``) and, when the log has a ``sink`` path,
  appended as JSONL for ``repro events`` and post-mortem joins.  The
  sink is buffered-append + flush, *not* fsynced: events are telemetry,
  not a durability protocol — that is the WAL's job.
* **Lineage by default.** ``emit`` fills ``trace_id`` from
  :func:`~repro.obs.trace.current_trace_id` when the caller does not
  pass one, so any event emitted inside a traced region joins the trace
  for free.
* **One-branch disable.** :meth:`EventLog.set_enabled` turns the log
  into a no-op whose cost is a single attribute check — the same
  discipline as :func:`~repro.obs.trace.maybe_tracer` — so the
  observability bench can measure the plane's overhead honestly.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.trace import current_trace_id

#: Bump when the serialized shape changes incompatibly.
EVENT_SCHEMA_VERSION = 1

#: Default on-disk sink filename (lives under a sharded catalog root).
EVENTS_NAME = "events.jsonl"

#: The closed set of event kinds.  Emitting anything else raises — the
#: schema stays enumerable for dashboards and the CI round-trip check.
EVENT_KINDS = (
    "wal.append",
    "wal.replay",
    "wal.replay_failed",
    "checkpoint",
    "compaction.cycle",
    "compaction.materialized",
    "compaction.rolled_back",
    "migration.run",
    "migration.batch",
    "query",
    "query.slow",
    "mutation",
    "health.verdict",
)

#: Top-level keys every serialized event carries, in serialization order.
EVENT_FIELDS = (
    "v",
    "seq",
    "ts",
    "kind",
    "subsystem",
    "shard",
    "image_id",
    "lsn",
    "trace_id",
    "detail",
)


@dataclass(frozen=True)
class Event:
    """One wide event: identities at the top level, payload in ``detail``."""

    seq: int
    ts: float
    kind: str
    subsystem: str
    shard: Optional[int] = None
    image_id: Optional[str] = None
    lsn: Optional[int] = None
    trace_id: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict in the stable :data:`EVENT_FIELDS` order."""
        return {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "subsystem": self.subsystem,
            "shard": self.shard,
            "image_id": self.image_id,
            "lsn": self.lsn,
            "trace_id": self.trace_id,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Event":
        problems = validate_event_dict(payload)
        if problems:
            raise ObservabilityError(
                "invalid event: " + "; ".join(problems)
            )
        return cls(
            seq=int(payload["seq"]),
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            subsystem=str(payload["subsystem"]),
            shard=payload.get("shard"),
            image_id=payload.get("image_id"),
            lsn=payload.get("lsn"),
            trace_id=payload.get("trace_id"),
            detail=dict(payload.get("detail") or {}),
        )

    def describe(self) -> str:
        """One human line (``repro events`` default rendering)."""
        stamp = time.strftime("%H:%M:%S", time.localtime(self.ts))
        parts = [f"{stamp} #{self.seq:<5d} {self.kind:<24s} {self.subsystem}"]
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.image_id is not None:
            parts.append(f"image={self.image_id}")
        if self.lsn is not None:
            parts.append(f"lsn={self.lsn}")
        if self.trace_id is not None:
            parts.append(f"trace={self.trace_id}")
        for key in sorted(self.detail):
            parts.append(f"{key}={self.detail[key]}")
        return " ".join(parts)


def validate_event_dict(payload: Any) -> List[str]:
    """Schema problems with one serialized event dict ([] when valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"event must be an object, got {type(payload).__name__}"]
    version = payload.get("v")
    if version != EVENT_SCHEMA_VERSION:
        problems.append(
            f"schema version {version!r} != {EVENT_SCHEMA_VERSION}"
        )
    for key in ("seq", "ts", "kind", "subsystem", "detail"):
        if key not in payload:
            problems.append(f"missing required field {key!r}")
    kind = payload.get("kind")
    if kind is not None and kind not in EVENT_KINDS:
        problems.append(f"unknown event kind {kind!r}")
    if "seq" in payload and not isinstance(payload["seq"], int):
        problems.append("seq must be an integer")
    if "ts" in payload and not isinstance(payload["ts"], (int, float)):
        problems.append("ts must be a number")
    if "detail" in payload and not isinstance(payload["detail"], dict):
        problems.append("detail must be an object")
    shard = payload.get("shard")
    if shard is not None and not isinstance(shard, int):
        problems.append("shard must be an integer or null")
    lsn = payload.get("lsn")
    if lsn is not None and not isinstance(lsn, int):
        problems.append("lsn must be an integer or null")
    unknown = sorted(set(payload) - set(EVENT_FIELDS))
    if unknown:
        problems.append(f"unknown fields {unknown}")
    return problems


class EventLog:
    """Thread-safe bounded event ring with an optional JSONL sink.

    ``capacity`` bounds the in-memory ring (oldest events fall off);
    the sink file, when configured, keeps everything.  Opening a log
    whose sink already exists preloads the tail of the file into the
    ring, so a freshly ``ShardedCatalog.open``-ed root serves ``repro
    top``'s "recent" panels from its previous life.
    """

    def __init__(
        self,
        capacity: int = 1024,
        sink: Optional[Union[str, Path]] = None,
        enabled: bool = True,
        wall_clock=time.time,
    ) -> None:
        if capacity <= 0:
            raise ObservabilityError(
                f"event log capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: "deque[Event]" = deque(maxlen=self.capacity)
        self._seq = 0
        self._emitted = 0
        self._enabled = bool(enabled)
        self._wall = wall_clock
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_handle = None
        if self._sink_path is not None and self._sink_path.is_file():
            self._preload_sink()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> bool:
        """Toggle emission; returns the previous setting."""
        with self._lock:
            previous = self._enabled
            self._enabled = bool(enabled)
        return previous

    @property
    def sink_path(self) -> Optional[Path]:
        return self._sink_path

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        *,
        subsystem: str,
        shard: Optional[int] = None,
        image_id: Optional[str] = None,
        lsn: Optional[int] = None,
        trace_id: Optional[str] = None,
        **detail: Any,
    ) -> Optional[Event]:
        """Record one event; returns it, or ``None`` when disabled.

        ``trace_id`` defaults to the enclosing trace's id (if any), so
        emitters inside a traced region inherit lineage without passing
        anything.
        """
        if not self._enabled:
            return None
        if kind not in EVENT_KINDS:
            raise ObservabilityError(
                f"unknown event kind {kind!r} (known: {', '.join(EVENT_KINDS)})"
            )
        if trace_id is None:
            trace_id = current_trace_id()
        with self._lock:
            if not self._enabled:  # re-check: set_enabled races with emit
                return None
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts=self._wall(),
                kind=kind,
                subsystem=subsystem,
                shard=shard,
                image_id=image_id,
                lsn=lsn,
                trace_id=trace_id,
                detail=detail,
            )
            self._ring.append(event)
            self._emitted += 1
            if self._sink_path is not None:
                self._write_sink(event)
        return event

    # ------------------------------------------------------------------
    def snapshot(self, kind: Optional[str] = None) -> List[Event]:
        """Ring contents oldest-first, optionally filtered by kind."""
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [event for event in events if event.kind == kind]
        return events

    def tail(self, count: int, kind: Optional[str] = None) -> List[Event]:
        """The newest ``count`` (filtered) events, oldest-first."""
        events = self.snapshot(kind)
        if count <= 0:
            return []
        return events[-count:]

    def stats(self) -> Dict[str, Any]:
        """Counters for metrics snapshots (key-sorted, deterministic)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "emitted": self._emitted,
                "enabled": 1 if self._enabled else 0,
                "retained": len(self._ring),
            }

    def clear(self) -> None:
        """Drop the ring (the sink file is left alone)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        with self._lock:
            if self._sink_handle is not None:
                try:
                    self._sink_handle.close()
                finally:
                    self._sink_handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _write_sink(self, event: Event) -> None:
        # Caller holds the lock.  Lazily open so constructing an EventLog
        # for a root that does not exist yet (catalog __init__ runs
        # before mkdir) costs nothing until the first emit.
        if self._sink_handle is None:
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink_handle = open(self._sink_path, "a", encoding="utf-8")
        self._sink_handle.write(
            json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        )
        self._sink_handle.flush()

    def _preload_sink(self) -> None:
        events = read_events_jsonl(self._sink_path)
        for event in events[-self.capacity:]:
            self._ring.append(event)
        if events:
            self._seq = events[-1].seq
            self._emitted = len(events)


def read_events_jsonl(
    path: Union[str, Path], limit: Optional[int] = None
) -> List[Event]:
    """Parse an event sink file; returns events in file order.

    A damaged *final* line (torn concurrent append) is tolerated and
    dropped; damage anywhere else raises — same discipline as the WAL,
    for the same reason: mid-file damage means something other than an
    interrupted writer happened.
    """
    path = Path(path)
    if not path.is_file():
        return []
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise ObservabilityError(f"unreadable event log {path}: {exc}") from exc
    lines = [line for line in raw.split("\n") if line.strip()]
    events: List[Event] = []
    for index, line in enumerate(lines):
        try:
            payload = json.loads(line)
            event = Event.from_dict(payload)
        except (json.JSONDecodeError, ObservabilityError) as exc:
            if index == len(lines) - 1:
                break  # torn tail: a reader raced a writer mid-line
            raise ObservabilityError(
                f"{path}: damaged event line {index + 1} of {len(lines)}: {exc}"
            ) from exc
        events.append(event)
    if limit is not None and limit >= 0:
        events = events[-limit:]
    return events


def write_events_jsonl(
    events: Iterable[Event], path: Union[str, Path]
) -> int:
    """Export events as JSONL (for artifact uploads); returns the count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), separators=(",", ":")) + "\n")
            count += 1
    return count


#: Process-global log for subsystems with no natural owner to hang one
#: on (the migrator, ad-hoc scripts).  Ring-only — no sink.
_default_log: Optional[EventLog] = None
_default_lock = threading.Lock()


def default_event_log() -> EventLog:
    """The lazily created process-global :class:`EventLog` (ring-only)."""
    global _default_log
    with _default_lock:
        if _default_log is None:
            _default_log = EventLog(capacity=512)
        return _default_log
