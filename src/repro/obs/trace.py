"""Low-overhead query tracing: nestable spans with two export formats.

The paper's whole argument is about *where time goes* (§5 measures work,
not just wall time), and the serving stack accumulated enough moving
parts — parser, planner, admission queue, readers-writer lock, four
execution strategies, result cache — that an aggregate latency histogram
can no longer answer "why was this query slow?".  This module provides
the span primitive the :class:`repro.service.QueryService` threads
through its query path:

* :class:`Span` — one named, timed phase with attributes, children, and
  a parent link; ``duration`` is wall time, ``self_time`` subtracts the
  children (so a trace tree accounts for every microsecond exactly once).
* :class:`Tracer` — builds one span tree per query.  Spans nest through
  a context-manager API (:meth:`Tracer.span`) or explicitly
  (:meth:`Tracer.start_span` / :meth:`Tracer.finish_span`) for phases
  that start on one thread and end on another (the admission queue wait).
* **Context-local current span** — :func:`current_span` lets deep layers
  annotate the active span without plumbing a tracer through every
  signature; it is a :class:`contextvars.ContextVar`, so concurrent
  queries on different threads never see each other's spans.
* **Global switch** — :func:`set_tracing` / :func:`tracing_enabled`.
  When tracing is off, :func:`maybe_tracer` returns the singleton
  :data:`NULL_TRACER` whose every method is a constant-time no-op, so
  the disabled hot path pays one branch and zero allocations per query.

Export: :meth:`Span.to_dict` gives a JSON trace tree;
:func:`to_chrome_trace` renders one or more trees as a Chrome
``trace_event`` file (load it in ``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ObservabilityError

#: Microseconds per second (Chrome trace_event timestamps are in µs).
_US = 1e6

_enabled = False
_enabled_lock = threading.Lock()

#: Process-wide trace-id allocator.  ``itertools.count`` is thread-safe
#: under the GIL (one atomic ``__next__`` per id), so ids stay unique
#: across concurrent queries without a lock on the hot path.
_trace_ids = itertools.count(1)


def new_trace_id() -> str:
    """A fresh process-unique trace id (``trace-00000007``-style).

    Trace ids are the cross-subsystem lineage key: the sharded catalog
    stamps them onto WAL records and compaction materializations, the
    wide-event log carries them on every event, and the per-shard query
    spans echo the last compaction's id — so a slow query, the WAL
    record behind it, and the background work that preceded it all join
    on one value.
    """
    return f"trace-{next(_trace_ids):08d}"


def set_tracing(enabled: bool) -> bool:
    """Turn tracing on or off globally; returns the previous setting."""
    global _enabled
    with _enabled_lock:
        previous = _enabled
        _enabled = bool(enabled)
    return previous


def tracing_enabled() -> bool:
    """Whether :func:`maybe_tracer` currently returns live tracers."""
    return _enabled


@contextmanager
def tracing(enabled: bool = True):
    """Temporarily toggle tracing (tests and one-off diagnostics)::

        with tracing():
            outcome = service.execute("at least 25% blue")
        print(outcome.trace.to_dict())
    """
    previous = set_tracing(enabled)
    try:
        yield
    finally:
        set_tracing(previous)


class Span:
    """One named, timed phase of a query, with attributes and children.

    Spans are created by a :class:`Tracer`; ``start``/``end`` are
    ``time.perf_counter()`` readings (seconds).  An unfinished span has
    ``end is None``.
    """

    __slots__ = ("name", "start", "end", "attributes", "children", "parent")

    def __init__(self, name: str, start: float, parent: Optional["Span"] = None) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.parent = parent

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Wall seconds from start to end (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration minus the children's durations (time spent *here*).

        Never negative: clamped at zero so clock jitter between nested
        ``perf_counter`` reads cannot produce a nonsensical value.
        """
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns ``self`` for chaining."""
        self.attributes[key] = value
        return self

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def child(self, name: str) -> "Span":
        """The first direct child with ``name`` (for tests and reports)."""
        for candidate in self.children:
            if candidate.name == name:
                return candidate
        raise ObservabilityError(
            f"span {self.name!r} has no child {name!r} "
            f"(children: {[c.name for c in self.children]})"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready trace tree rooted at this span.

        Times are seconds relative to *this* span's start, so the tree
        is self-contained and diffs cleanly between runs.
        """
        return self._to_dict(self.start)

    def _to_dict(self, origin: float) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start - origin,
            "duration": self.duration,
            "self_time": self.self_time,
            "attributes": dict(self.attributes),
            "children": [c._to_dict(origin) for c in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.3f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


#: Context-local handle to the innermost live span, so deep layers can
#: annotate without threading a tracer through every call signature.
_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_current_span", default=None
)


class _NullSpan:
    """The do-nothing span returned wherever tracing is disabled."""

    __slots__ = ()
    name = "null"
    start = 0.0
    end = 0.0
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    parent = None
    finished = True
    duration = 0.0
    self_time = 0.0

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def iter_spans(self):
        return iter(())

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:
        return "NULL_SPAN"

    def __bool__(self) -> bool:
        # Lets callers write ``if span:`` to skip attribute formatting work.
        return False


#: Shared no-op span (falsy, immutable, reusable).
NULL_SPAN = _NullSpan()


def current_span() -> Union[Span, _NullSpan]:
    """The innermost span opened on this context, or :data:`NULL_SPAN`.

    Always safe to call and always safe to ``.set()`` on the result —
    outside any traced region the attributes land on the shared no-op.
    """
    span = _current_span.get()
    return span if span is not None else NULL_SPAN


class Tracer:
    """Builds one span tree for one query.

    A tracer is *not* shared between concurrent queries — each query
    gets its own (that is what keeps recording lock-free).  A single
    query may hand its tracer across threads (submit thread → worker
    thread) as long as the handoff is sequential, which the service's
    future-based lifecycle guarantees.
    """

    __slots__ = ("root", "trace_id", "_stack", "_clock")

    def __init__(
        self,
        name: str = "query",
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ) -> None:
        self._clock = clock
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.root = Span(name, clock())
        self.root.attributes["trace_id"] = self.trace_id
        self._stack: List[Span] = [self.root]

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span:
        """The innermost open span (the root until children open)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attributes: Any):
        """Open a child span for the ``with`` body; close it on exit.

        The span is also published to :func:`current_span` for the
        body's dynamic extent.
        """
        span = self.start_span(name, **attributes)
        token = _current_span.set(span)
        try:
            yield span
        finally:
            _current_span.reset(token)
            self.finish_span(span)

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a child span explicitly (for cross-thread phases)."""
        span = Span(name, self._clock(), parent=self.current)
        if attributes:
            span.attributes.update(attributes)
        self.current.children.append(span)
        self._stack.append(span)
        return span

    def finish_span(self, span: Span) -> Span:
        """Close an explicitly started span (and any still-open children)."""
        end = self._clock()
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = end
            if top is span:
                return span
        raise ObservabilityError(
            f"span {span.name!r} is not open on this tracer"
        )

    def finish(self) -> Span:
        """Close every open span and return the finished root."""
        end = self._clock()
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = end
        return self.root


class _NullTracer:
    """Constant-time stand-in used when tracing is globally disabled."""

    __slots__ = ()
    root = NULL_SPAN
    current = NULL_SPAN
    trace_id: Optional[str] = None

    @contextmanager
    def span(self, name: str, **attributes: Any):
        yield NULL_SPAN

    def start_span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def finish_span(self, span: Any) -> _NullSpan:
        return NULL_SPAN

    def finish(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NULL_TRACER"

    def __bool__(self) -> bool:
        return False


#: Shared no-op tracer (falsy, stateless, reusable).
NULL_TRACER = _NullTracer()


def maybe_tracer(
    name: str = "query", trace_id: Optional[str] = None
) -> Union[Tracer, _NullTracer]:
    """A live :class:`Tracer` when tracing is enabled, else :data:`NULL_TRACER`."""
    return Tracer(name, trace_id=trace_id) if _enabled else NULL_TRACER


def current_trace_id() -> Optional[str]:
    """The trace id of the trace enclosing this call, or ``None``.

    Walks from the context-local :func:`current_span` to its root, where
    :class:`Tracer` stamps the id.  This is how subsystems that never
    see the tracer object (the WAL, the compactor's materialization
    commit, the migration batch loop) inherit lineage: they call this at
    the moment they write a record, and outside any traced region it
    cheaply returns ``None``.
    """
    span = _current_span.get()
    if span is None:
        return None
    while span.parent is not None:
        span = span.parent
    value = span.attributes.get("trace_id")
    return str(value) if value is not None else None


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
def to_chrome_trace(
    spans: Union[Span, Sequence[Span]],
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Render finished span trees as a Chrome ``trace_event`` document.

    The returned dict serializes directly with :func:`json.dumps` and
    loads in ``chrome://tracing`` / Perfetto.  Each root tree becomes
    one "thread" row (``tid`` = tree index) of complete events
    (``ph="X"``) with microsecond timestamps relative to the earliest
    root, so concurrent queries line up on a shared clock.
    """
    roots = [spans] if isinstance(spans, Span) else list(spans)
    if not roots:
        raise ObservabilityError("no spans to export")
    origin = min(root.start for root in roots)
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": process_name}},
    ]
    for tid, root in enumerate(roots):
        for span in root.iter_spans():
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "name": span.name,
                    "ts": (span.start - origin) * _US,
                    "dur": span.duration * _US,
                    "args": dict(span.attributes),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
