"""Non-color features (§6 future work): texture (LBP) and shape (Hu)."""

from repro.features.shape import (
    ShapeSignature,
    central_moments,
    foreground_mask,
    hu_invariants,
    shape_distance,
)
from repro.features.texture import (
    UNIFORM_BINS,
    TextureSignature,
    lbp_codes,
    luminance,
    texture_distance,
)

__all__ = [
    "ShapeSignature",
    "TextureSignature",
    "UNIFORM_BINS",
    "central_moments",
    "foreground_mask",
    "hu_invariants",
    "lbp_codes",
    "luminance",
    "shape_distance",
    "texture_distance",
]
