"""Shape features: central image moments and Hu invariants.

The other half of §6's future work, and the feature the §1 road-sign
motivation pairs with color ("specific color and shape-based conventions
for classifying different types of signs").  A shape signature is the
vector of the seven Hu moment invariants of a *foreground mask*:

* the mask separates the object from the background (by default, any
  pixel whose color differs from the most common border color);
* raw moments -> central moments (translation invariant) -> normalized
  central moments (scale invariant) -> Hu's seven combinations
  (rotation invariant);
* signatures compare with L1 over log-compressed values (the usual
  ``-sign(h) * log10 |h|`` transform that tames the dynamic range).

Invariance is property-tested against this library's own Mutate
executor: translating, integer-scaling, or quarter-rotating an image
through actual edit operations leaves the signature (nearly) unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import HistogramError
from repro.images.raster import Image


def foreground_mask(image: Image) -> np.ndarray:
    """Boolean mask of non-background pixels.

    The background color is estimated as the most frequent color on the
    image border — robust for the object-on-backdrop images (helmets,
    signs) this feature targets.
    """
    pixels = image.pixels
    border = np.concatenate(
        [
            pixels[0, :].reshape(-1, 3),
            pixels[-1, :].reshape(-1, 3),
            pixels[:, 0].reshape(-1, 3),
            pixels[:, -1].reshape(-1, 3),
        ]
    )
    colors, counts = np.unique(border, axis=0, return_counts=True)
    background = colors[int(np.argmax(counts))]
    return ~(pixels == background).all(axis=2)


def raw_moment(mask: np.ndarray, p: int, q: int) -> float:
    """Raw image moment ``M_pq`` of a boolean mask."""
    xs = np.arange(mask.shape[0], dtype=np.float64)[:, None]
    ys = np.arange(mask.shape[1], dtype=np.float64)[None, :]
    return float((mask * (xs ** p) * (ys ** q)).sum())


def central_moments(mask: np.ndarray) -> dict:
    """Central moments ``mu_pq`` up to order 3, keyed ``(p, q)``."""
    m00 = raw_moment(mask, 0, 0)
    if m00 == 0:
        raise HistogramError("empty foreground: no shape to describe")
    cx = raw_moment(mask, 1, 0) / m00
    cy = raw_moment(mask, 0, 1) / m00
    xs = np.arange(mask.shape[0], dtype=np.float64)[:, None] - cx
    ys = np.arange(mask.shape[1], dtype=np.float64)[None, :] - cy
    moments = {}
    for p in range(4):
        for q in range(4):
            if p + q <= 3:
                moments[(p, q)] = float((mask * (xs ** p) * (ys ** q)).sum())
    return moments


def hu_invariants(mask: np.ndarray) -> Tuple[float, ...]:
    """Hu's seven rotation/scale/translation invariants of a mask."""
    mu = central_moments(mask)
    m00 = mu[(0, 0)]

    def eta(p: int, q: int) -> float:
        return mu[(p, q)] / (m00 ** (1 + (p + q) / 2.0))

    n20, n02, n11 = eta(2, 0), eta(0, 2), eta(1, 1)
    n30, n03 = eta(3, 0), eta(0, 3)
    n21, n12 = eta(2, 1), eta(1, 2)

    h1 = n20 + n02
    h2 = (n20 - n02) ** 2 + 4 * n11 ** 2
    h3 = (n30 - 3 * n12) ** 2 + (3 * n21 - n03) ** 2
    h4 = (n30 + n12) ** 2 + (n21 + n03) ** 2
    h5 = (n30 - 3 * n12) * (n30 + n12) * (
        (n30 + n12) ** 2 - 3 * (n21 + n03) ** 2
    ) + (3 * n21 - n03) * (n21 + n03) * (
        3 * (n30 + n12) ** 2 - (n21 + n03) ** 2
    )
    h6 = (n20 - n02) * ((n30 + n12) ** 2 - (n21 + n03) ** 2) + 4 * n11 * (
        n30 + n12
    ) * (n21 + n03)
    h7 = (3 * n21 - n03) * (n30 + n12) * (
        (n30 + n12) ** 2 - 3 * (n21 + n03) ** 2
    ) - (n30 - 3 * n12) * (n21 + n03) * (
        3 * (n30 + n12) ** 2 - (n21 + n03) ** 2
    )
    return (h1, h2, h3, h4, h5, h6, h7)


def _log_compress(values: Tuple[float, ...]) -> np.ndarray:
    """The standard ``-sign(h) * log10(|h|)`` compression (0 stays 0)."""
    array = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(array)
    nonzero = np.abs(array) > 1e-300
    out[nonzero] = -np.sign(array[nonzero]) * np.log10(np.abs(array[nonzero]))
    return out


@dataclass(frozen=True)
class ShapeSignature:
    """The seven Hu invariants of an image's foreground mask."""

    invariants: Tuple[float, ...]

    def __post_init__(self) -> None:
        values = tuple(float(v) for v in self.invariants)
        if len(values) != 7:
            raise HistogramError(f"expected 7 Hu invariants, got {len(values)}")
        object.__setattr__(self, "invariants", values)

    @staticmethod
    def of_image(image: Image) -> "ShapeSignature":
        """Extract the signature from an image's foreground mask."""
        return ShapeSignature(hu_invariants(foreground_mask(image)))

    @staticmethod
    def of_mask(mask: np.ndarray) -> "ShapeSignature":
        """Extract the signature from an explicit boolean mask."""
        return ShapeSignature(hu_invariants(np.asarray(mask, dtype=bool)))

    def __repr__(self) -> str:
        h1, h2 = self.invariants[:2]
        return f"ShapeSignature(h1={h1:.4g}, h2={h2:.4g}, ...)"


def shape_distance(a: ShapeSignature, b: ShapeSignature) -> float:
    """L1 over log-compressed Hu invariants (Hu's matching metric)."""
    return float(
        np.abs(_log_compress(a.invariants) - _log_compress(b.invariants)).sum()
    )
