"""Texture features: local binary pattern (LBP) histograms.

§6: "it will be necessary to develop approaches for other common features
besides color, such as texture and shape."  This module provides the
texture half as a classical rotation-agnostic LBP-histogram feature:

* each interior pixel's 8 neighbors are thresholded against it,
  producing an 8-bit pattern;
* patterns are optionally folded to *uniform* codes (at most two 0/1
  transitions around the circle), the standard 59-bin variant;
* the feature is the normalized pattern histogram, compared with L1.

Like BIC, texture features are exact for binary images and require
instantiation for edit-sequence images (deriving texture bounds from the
Table 1 rules is open — the future work the paper names).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HistogramError
from repro.images.raster import Image

#: Neighbor offsets in LBP bit order (clockwise from top-left).
_OFFSETS = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, 1), (1, 1), (1, 0),
    (1, -1), (0, -1),
)


def luminance(image: Image) -> np.ndarray:
    """Rec. 601 luma of an RGB image as float64."""
    pixels = image.pixels.astype(np.float64)
    return 0.299 * pixels[..., 0] + 0.587 * pixels[..., 1] + 0.114 * pixels[..., 2]


def _transition_count(pattern: int) -> int:
    """Number of 0/1 transitions in the circular 8-bit pattern."""
    bits = [(pattern >> bit) & 1 for bit in range(8)]
    return sum(bits[i] != bits[(i + 1) % 8] for i in range(8))


def _uniform_code_table() -> np.ndarray:
    """Map each 8-bit pattern to its uniform-LBP bin (58 uniform + 1 rest)."""
    table = np.zeros(256, dtype=np.int64)
    next_code = 0
    for pattern in range(256):
        if _transition_count(pattern) <= 2:
            table[pattern] = next_code
            next_code += 1
        else:
            table[pattern] = -1
    table[table == -1] = next_code  # the shared non-uniform bin
    return table


_UNIFORM_TABLE = _uniform_code_table()
#: Bin count of the uniform-LBP histogram (58 uniform patterns + 1 rest).
UNIFORM_BINS = int(_UNIFORM_TABLE.max()) + 1


def lbp_codes(image: Image) -> np.ndarray:
    """Raw 8-bit LBP code per interior pixel (shape ``(h-2, w-2)``).

    Images smaller than 3x3 have no interior and raise
    :class:`HistogramError`.
    """
    if image.height < 3 or image.width < 3:
        raise HistogramError(
            f"LBP needs at least 3x3 pixels, got {image.height}x{image.width}"
        )
    luma = luminance(image)
    center = luma[1:-1, 1:-1]
    codes = np.zeros(center.shape, dtype=np.int64)
    for bit, (dx, dy) in enumerate(_OFFSETS):
        neighbor = luma[1 + dx:image.height - 1 + dx, 1 + dy:image.width - 1 + dy]
        codes |= (neighbor >= center).astype(np.int64) << bit
    return codes


@dataclass(frozen=True)
class TextureSignature:
    """A normalized uniform-LBP histogram."""

    counts: np.ndarray
    total: int

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.shape != (UNIFORM_BINS,):
            raise HistogramError(
                f"expected {UNIFORM_BINS} LBP bins, got shape {counts.shape}"
            )
        if (counts < 0).any():
            raise HistogramError("negative LBP count")
        if int(counts.sum()) != self.total or self.total <= 0:
            raise HistogramError("LBP counts must sum to a positive total")
        counts.setflags(write=False)
        object.__setattr__(self, "counts", counts)

    @staticmethod
    def of_image(image: Image) -> "TextureSignature":
        """Extract the uniform-LBP histogram of ``image``."""
        codes = _UNIFORM_TABLE[lbp_codes(image)]
        counts = np.bincount(codes.reshape(-1), minlength=UNIFORM_BINS)
        return TextureSignature(counts.astype(np.int64), int(counts.sum()))

    def fractions(self) -> np.ndarray:
        """The normalized histogram (sums to 1)."""
        return self.counts / float(self.total)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TextureSignature):
            return NotImplemented
        return self.total == other.total and bool(
            np.array_equal(self.counts, other.counts)
        )

    def __repr__(self) -> str:
        occupied = int(np.count_nonzero(self.counts))
        return f"TextureSignature(total={self.total}, occupied={occupied})"


def texture_distance(a: TextureSignature, b: TextureSignature) -> float:
    """L1 distance between normalized LBP histograms (in ``[0, 2]``)."""
    return float(np.abs(a.fractions() - b.fractions()).sum())
